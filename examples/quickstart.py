#!/usr/bin/env python3
"""Quickstart: augment a graph, route greedily, estimate the greedy diameter.

This walks through the three central objects of the paper on a ring network:

1. an *augmentation scheme* ``φ`` assigns every node one random long-range
   link (we compare the uniform scheme, Kleinberg's harmonic scheme, the
   Theorem-2 (M, L) scheme and the Theorem-4 ball scheme),
2. *greedy routing* forwards a message to the neighbour (local or long-range)
   closest to the target in the underlying graph,
3. the *greedy diameter* ``max_{s,t} E[steps]`` is estimated by Monte Carlo.

Run:  python examples/quickstart.py
"""

from repro import (
    BallScheme,
    Theorem2Scheme,
    UniformScheme,
    estimate_greedy_diameter,
    generators,
    greedy_route,
)
from repro.analysis.tables import format_table
from repro.core.base import AugmentedGraph
from repro.core.kleinberg import DistancePowerScheme
from repro.graphs.distances import bfs_distances


def single_route_demo() -> None:
    """Route one message across a ring with and without long-range links."""
    print("=== one greedy route on a 512-node ring ===")
    ring = generators.cycle_graph(512)
    source, target = 0, 256  # antipodal pair: graph distance 256

    # Without augmentation greedy routing just walks the ring.
    dist_to_target = bfs_distances(ring, target)
    plain = greedy_route(ring, dist_to_target, source, target, lambda u: None)
    print(f"no long-range links : {plain.steps} steps (pure walk)")

    # With the Theorem-4 ball scheme most of the distance is covered by jumps.
    scheme = BallScheme(ring, seed=1)
    augmented = AugmentedGraph.from_scheme(scheme, rng=2)
    routed = greedy_route(ring, dist_to_target, source, target, augmented.contact)
    print(
        f"ball scheme         : {routed.steps} steps "
        f"({routed.long_links_used} long-range jumps)"
    )
    print()


def greedy_diameter_comparison() -> None:
    """Estimate the greedy diameter of every scheme on the same ring."""
    print("=== greedy diameter on a 1024-node ring (paper's asymptotics) ===")
    ring = generators.cycle_graph(1024)
    schemes = [
        ("no augmentation (graph diameter)", None),
        ("uniform  ~ sqrt(n)        [Peleg]", UniformScheme(ring, seed=1)),
        ("harmonic r=1 (Kleinberg 1-D)", DistancePowerScheme(ring, 1.0, seed=1)),
        ("theorem2 (M,L) ~ min(ps log^2 n, sqrt n)", Theorem2Scheme(ring, seed=1)),
        ("ball     ~ n^(1/3)        [Theorem 4]", BallScheme(ring, seed=1)),
    ]
    rows = []
    for name, scheme in schemes:
        if scheme is None:
            rows.append([name, 512])
            continue
        estimate = estimate_greedy_diameter(ring, scheme, num_pairs=6, trials=8, seed=3)
        rows.append([name, round(estimate.diameter, 1)])
    print(format_table(rows, headers=["scheme", "estimated greedy diameter (steps)"]))
    print()
    print(
        "A single long-range link per node collapses the 512-step diameter to a few\n"
        "dozen greedy steps.  At this size the augmented schemes are close to each\n"
        "other; the asymptotic separation the paper proves (n^(1/3) for the ball\n"
        "scheme vs sqrt(n) for the uniform scheme) shows up in the growth exponents\n"
        "of the scaling study - run examples/p2p_overlay_design.py to see it."
    )


def main() -> None:
    single_route_demo()
    greedy_diameter_comparison()


if __name__ == "__main__":
    main()
