#!/usr/bin/env python3
"""Designing shortcut links for a peer-to-peer overlay (a network-design view).

A classic systems reading of the paper: you operate an overlay network whose
base topology you do *not* control (a ring of peers, a tree of proxies, a
lollipop-shaped backbone with a long access chain, …).  You may give every
peer exactly **one** extra "finger" link, and lookups are greedy: each peer
forwards to whichever of its links is closest to the key's owner.

Which finger-placement policy should you ship?

* ``uniform``  — point the finger at a uniformly random peer (no topology
  knowledge needed).  Peleg's bound: lookups take O(√n) hops on any topology.
* ``theorem2`` — the (M, L) policy built from a path decomposition of the
  topology: polylog hops when the topology is path-like, never worse than
  ~2x uniform otherwise.
* ``ball``     — the Theorem-4 policy (pick a random radius scale, point the
  finger at a random peer within that radius): Õ(n^{1/3}) hops on *every*
  topology — the universal winner.

The script sweeps overlay sizes, prints the hop counts and fits the growth
exponents so the asymptotic claims are visible directly.

Run:  python examples/p2p_overlay_design.py
"""

from repro import estimate_greedy_diameter, generators, make_scheme
from repro.analysis.scaling import fit_power_law
from repro.analysis.tables import format_table


TOPOLOGIES = {
    "ring backbone": lambda n: generators.cycle_graph(n),
    "proxy tree": lambda n: generators.random_tree(n, seed=5),
    "lollipop (cluster + access chain)": lambda n: generators.lollipop_graph(
        max(4, n // 8), n - max(4, n // 8)
    ),
}

POLICIES = ("uniform", "theorem2", "ball")
SIZES = (256, 512, 1024, 2048)


def main() -> None:
    print("One finger link per peer - greedy lookups - worst sampled pair\n")
    for topology_name, factory in TOPOLOGIES.items():
        rows = []
        series = {policy: [] for policy in POLICIES}
        for n in SIZES:
            graph = factory(n)
            row = [n]
            for policy in POLICIES:
                scheme = make_scheme(policy, graph, seed=1)
                estimate = estimate_greedy_diameter(
                    graph, scheme, num_pairs=5, trials=8, seed=n
                )
                series[policy].append(estimate.diameter)
                row.append(round(estimate.diameter, 1))
            rows.append(row)
        exponent_row = ["growth exponent"]
        for policy in POLICIES:
            fit = fit_power_law(SIZES, series[policy])
            exponent_row.append(f"n^{fit.exponent:.2f}")
        rows.append(exponent_row)
        print(f"--- {topology_name} ---")
        print(format_table(rows, headers=["peers", *POLICIES]))
        print()
    print(
        "Reading the exponent rows: the uniform policy sits near n^0.5 on the\n"
        "ring and lollipop (the sqrt(n) barrier), while the ball policy stays\n"
        "near n^(1/3) everywhere - the paper's universal improvement. The (M,L)\n"
        "policy tracks uniform within a factor ~2 and pulls ahead on path-like\n"
        "topologies as n grows."
    )


if __name__ == "__main__":
    main()
