#!/usr/bin/env python3
"""Inside Theorem 2: path decompositions, pathshape and the dyadic labeling.

This example opens up the machinery behind the (M, L) scheme:

1. compute path decompositions and the *pathshape* upper bound for several
   graph classes (paths, caterpillars, trees, interval graphs, a torus),
2. derive the Theorem-2 labeling ``L`` from the decomposition and show the
   dyadic ancestor structure on which the matrix ``A`` places its jumps,
3. route with the ancestor component alone to see the landmarks in action.

Run:  python examples/pathshape_and_labels.py
"""

from repro import Theorem2Scheme, estimate_greedy_diameter, estimate_pathshape, generators
from repro.analysis.tables import format_table
from repro.decomposition.exact import path_decomposition_of_interval_graph
from repro.decomposition.labeling import integer_ancestors, integer_level


def pathshape_portfolio() -> None:
    print("=== pathshape upper bounds witnessed by the decomposition portfolio ===")
    instances = {
        "path(512)": generators.path_graph(512),
        "caterpillar(256 spine)": generators.caterpillar_graph(256, 1),
        "binary tree(511)": generators.binary_tree(511),
        "random tree(512)": generators.random_tree(512, seed=3),
        "torus 16x16": generators.torus_graph([16, 16]),
    }
    rows = []
    for name, graph in instances.items():
        estimate = estimate_pathshape(graph)
        rows.append(
            [name, graph.num_nodes, estimate.shape, estimate.width, estimate.strategy]
        )
    graph, intervals = generators.random_interval_graph(512, seed=9)
    exact = path_decomposition_of_interval_graph(intervals)
    estimate = estimate_pathshape(graph, compute_length=True, external={"interval": exact})
    rows.append(["random interval(512)", graph.num_nodes, estimate.shape, estimate.width, estimate.strategy])
    print(
        format_table(
            rows, headers=["graph", "n", "pathshape <=", "pathwidth <=", "winning strategy"]
        )
    )
    print(
        "\nSmall pathshape (paths, caterpillars, trees, interval graphs) is what\n"
        "Theorem 2 converts into polylogarithmic greedy routing; the torus row\n"
        "shows a family where the pathshape is polynomially large and the (M,L)\n"
        "scheme falls back on its uniform component.\n"
    )


def labeling_demo() -> None:
    print("=== the dyadic labeling L on a 32-node path ===")
    graph = generators.path_graph(32)
    scheme = Theorem2Scheme(graph, seed=0)
    labels = scheme.labels
    rows = []
    for node in (0, 7, 15, 16, 23, 31):
        label = int(labels[node])
        ancestors = integer_ancestors(label, max_value=32)
        rows.append(
            [node, label, integer_level(label), " -> ".join(str(a) for a in ancestors)]
        )
    print(format_table(rows, headers=["node", "label L(u)", "level", "ancestor chain (jump targets)"]))
    print(
        "\nA node's long-range link (ancestor component of M) targets a uniformly\n"
        "chosen label on its ancestor chain; the chain climbs the dyadic hierarchy,\n"
        "so jumps reach the middle of exponentially growing regions of the path —\n"
        "this is what replaces Kleinberg's harmonic distances in a universal way.\n"
    )


def routing_with_ancestors_only() -> None:
    print("=== routing with the ancestor component only (mixture = 0) ===")
    rows = []
    for n in (256, 512, 1024, 2048):
        graph = generators.path_graph(n)
        ancestor_only = Theorem2Scheme(graph, uniform_mixture=0.0, seed=1)
        full = Theorem2Scheme(graph, seed=1)
        est_anc = estimate_greedy_diameter(graph, ancestor_only, num_pairs=5, trials=8, seed=n)
        est_full = estimate_greedy_diameter(graph, full, num_pairs=5, trials=8, seed=n)
        rows.append([n, n - 1, round(est_anc.diameter, 1), round(est_full.diameter, 1)])
    print(
        format_table(
            rows,
            headers=["n", "graph diameter", "ancestor-only steps", "full (M,L) steps"],
        )
    )
    print(
        "\nThe ancestor jumps alone already collapse the path's Theta(n) diameter to\n"
        "a slowly growing number of steps (the ps(G)·log² n branch of Theorem 2);\n"
        "mixing the uniform matrix back in costs about a factor two but restores\n"
        "the sqrt(n) guarantee on graphs whose pathshape is large."
    )


def main() -> None:
    pathshape_portfolio()
    labeling_demo()
    routing_with_ancestors_only()


if __name__ == "__main__":
    main()
