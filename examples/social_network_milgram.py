#!/usr/bin/env python3
"""Milgram-style decentralised search in a social-network model.

The paper's motivation is the "six degrees of separation" experiment: people
forward a letter to the acquaintance they believe is closest to the target,
using only local knowledge.  Augmented graphs model exactly this — a local
acquaintance structure (the underlying graph) plus one long-range
acquaintance per person (the augmentation), searched greedily.

This example builds two "societies":

* a *geographic* society — a Watts–Strogatz ring lattice where everybody
  knows their neighbours plus a few shortcuts, and
* a *corporate* society — a shallow hierarchy (a tree) of teams.

and measures how quickly letters reach their targets under the different
universal augmentation schemes.  The punchline mirrors the paper: an
organiser who can only add *uniformly random* acquaintances gets √n-step
searches, while the structure-aware ball scheme of Theorem 4 gets the same
society searchable in ~n^(1/3) steps — without assuming anything about the
society's shape.

Run:  python examples/social_network_milgram.py
"""

from repro import BallScheme, Theorem2Scheme, UniformScheme, estimate_greedy_diameter, generators
from repro.analysis.tables import format_table


def build_societies(num_people: int):
    """Two social substrates with very different structure."""
    geographic = generators.watts_strogatz_graph(num_people, 4, 0.05, seed=11)
    corporate = generators.random_tree(num_people, seed=13)
    return {
        "geographic (Watts-Strogatz ring)": geographic,
        "corporate hierarchy (random tree)": corporate,
    }


def main() -> None:
    num_people = 1024
    print(f"Milgram-style search among {num_people} people")
    print("(expected number of forwarding steps, worst sampled source/target pair)\n")

    societies = build_societies(num_people)
    rows = []
    for society_name, graph in societies.items():
        schemes = {
            "uniform acquaintances": UniformScheme(graph, seed=1),
            "(M,L) scheme (Thm 2)": Theorem2Scheme(graph, seed=1),
            "ball scheme (Thm 4)": BallScheme(graph, seed=1),
        }
        for scheme_name, scheme in schemes.items():
            estimate = estimate_greedy_diameter(
                graph, scheme, num_pairs=6, trials=8, seed=17
            )
            rows.append(
                [
                    society_name,
                    scheme_name,
                    round(estimate.diameter, 1),
                    round(estimate.mean, 1),
                    f"{100 * estimate.long_link_fraction:.0f}%",
                ]
            )
    print(
        format_table(
            rows,
            headers=["society", "augmentation", "worst pair", "average", "steps via long links"],
        )
    )
    print(
        "\nBoth societies become searchable in a handful of steps once every person\n"
        "gets a single well-chosen long-range acquaintance — and the ball scheme\n"
        "achieves this without knowing whether the society is a ring or a tree,\n"
        "which is precisely the 'universal augmentation' message of the paper."
    )


if __name__ == "__main__":
    main()
