"""Legacy setup shim so `pip install -e .` works without the wheel package.

The only packaging metadata that matters here is the ``compiled`` extra:
``pip install .[compiled]`` pulls in numba for the optional compiled kernel
backend (see ``src/repro/graphs/kernels/``).  The library itself depends on
numpy alone and runs pure-python when the extra is absent.
"""
from setuptools import find_packages, setup

setup(
    name="repro-navigability",
    version="0.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        # Optional compiled kernel backend; repro.graphs.kernels degrades to
        # the numpy reference kernels (one logged warning) when absent.
        "compiled": ["numba>=0.57"],
    },
)
