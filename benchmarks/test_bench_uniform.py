"""Benchmark for EXP-1 — the uniform scheme's O(√n) universal bound.

Regenerates the "uniform scheme scaling" series of EXPERIMENTS.md at the
quick configuration and asserts the qualitative claim (fitted exponents stay
in the √n regime).
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_uniform


@pytest.mark.benchmark(group="EXP-1")
def test_exp1_uniform_scheme(benchmark, bench_config):
    result = benchmark.pedantic(exp_uniform.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    for series in result.series:
        fit = series.power_law()
        assert fit is not None
        # O(sqrt(n)) bound: exponents must not exceed ~0.5 by more than noise.
        assert fit.exponent <= 0.75, f"{series.name} grows faster than sqrt(n): {fit.summary()}"
