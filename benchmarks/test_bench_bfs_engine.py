"""Benchmark: vectorized frontier BFS engine vs. the legacy deque BFS.

Measures the batched multi-row sweep (``bfs_distances_many``) against the
equivalent sequence of legacy pure-Python BFS calls on a mid-size grid, and
asserts both the correctness contract (bitwise-identical distance blocks) and
the performance contract (the engine must win by a wide margin — the issue's
acceptance bar is 10x on an n=50k grid; the smaller benchmark size here keeps
the suite fast while still exercising the same code paths).

``test_high_diameter_direction_optimized`` adds the ring/path rows the
direction-optimizing engine targets: batched sweeps on high-diameter
instances, measured against both the legacy BFS (recorded to
``BENCH_routing.json`` under the ``bfs_engine_highdiam`` kind;
``tools/check_bench_trend.py`` trend-gates the kind's ``engine_seconds``,
the speedup ratio is informational) and the pre-direction-
optimizing engine (the CSR top-down kernel, still in the code as the
hub-graph fallback), with a >= 2x acceptance gate on the latter.

Run the acceptance-scale comparison manually with::

    PYTHONPATH=src python benchmarks/test_bench_bfs_engine.py
"""

import os
import time

import numpy as np
import pytest

from bench_recording import append_record
from repro.graphs import frontier as frontier_module
from repro.graphs import generators, kernels
from repro.graphs.distances import legacy_bfs_distances
from repro.graphs.frontier import bfs_distances_many

#: Benchmark-size graph: large enough that the vectorized sweep dominates,
#: small enough for the default test run.  (~10k nodes)
_DIMS = [100, 100]
_NUM_SOURCES = 32


def _sources(graph):
    step = max(1, graph.num_nodes // _NUM_SOURCES)
    return list(range(0, graph.num_nodes, step))[:_NUM_SOURCES]


@pytest.fixture(scope="module")
def bench_graph():
    return generators.grid_graph(_DIMS)


@pytest.mark.benchmark(group="bfs-engine")
def test_frontier_engine_batched(benchmark, bench_graph):
    sources = _sources(bench_graph)
    block = benchmark.pedantic(
        bfs_distances_many, args=(bench_graph, sources), iterations=1, rounds=3
    )
    assert block.shape == (len(sources), bench_graph.num_nodes)


@pytest.mark.benchmark(group="bfs-engine")
def test_legacy_deque_reference(benchmark, bench_graph):
    sources = _sources(bench_graph)

    def run_legacy():
        return [legacy_bfs_distances(bench_graph, s) for s in sources]

    legacy = benchmark.pedantic(run_legacy, iterations=1, rounds=1)
    # Correctness contract: the engine's block is bitwise identical.
    block = bfs_distances_many(bench_graph, sources)
    for row, arr in enumerate(legacy):
        np.testing.assert_array_equal(block[row], arr)


def test_engine_beats_legacy(bench_graph):
    """The batched engine must beat the legacy loop by a wide margin."""
    import time

    sources = _sources(bench_graph)
    t0 = time.perf_counter()
    block = bfs_distances_many(bench_graph, sources)
    t_engine = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy = [legacy_bfs_distances(bench_graph, s) for s in sources]
    t_legacy = time.perf_counter() - t0
    for row, arr in enumerate(legacy):
        np.testing.assert_array_equal(block[row], arr)
    # 10x is the acceptance bar at n=50k; at this size the margin is smaller
    # but must still be decisive.
    assert t_engine * 5 < t_legacy, (
        f"frontier engine {t_engine:.3f}s not clearly faster than legacy {t_legacy:.3f}s"
    )


#: High-diameter instances: (family, n, batched sources).  Smoke keeps CI
#: fast; BENCH_ROUTING_FULL=1 runs the ROADMAP-scale 25k instances.
_HIGHDIAM_SMOKE = [("ring", 8192, 32), ("path", 8191, 32)]
_HIGHDIAM_FULL = [("ring", 8192, 32), ("path", 8191, 32), ("ring", 25000, 64), ("path", 24999, 64)]


def _highdiam_graph(family: str, n: int):
    return generators.cycle_graph(n) if family == "ring" else generators.path_graph(n)


def _pre_direction_optimized(graph, sources):
    """The committed pre-PR engine: CSR top-down only, no direction switch.

    The CSR gather kernel is still in the engine as the hub-graph fallback;
    forcing the knobs (on a fresh graph, so no memoised pad leaks in) runs
    exactly the old per-level pass, giving an in-process baseline that is
    robust to machine speed.
    """
    saved = {
        name: getattr(frontier_module, name)
        for name in ("_PAD_SLOT_BLOWUP", "_BOTTOM_UP_RATIO", "_SPARSE_FRONTIER_PADDED")
    }
    frontier_module._PAD_SLOT_BLOWUP = -1.0
    frontier_module._BOTTOM_UP_RATIO = 0
    frontier_module._SPARSE_FRONTIER_PADDED = frontier_module._SPARSE_FRONTIER
    try:
        return bfs_distances_many(graph, sources)
    finally:
        for name, value in saved.items():
            setattr(frontier_module, name, value)


def test_high_diameter_direction_optimized():
    """Ring/path batched BFS: record vs legacy, gate >= 2x vs the old engine.

    Pinned to the numpy kernel backend: this is a *generational* comparison
    (direction-optimizing numpy engine vs the pre-PR numpy engine), and its
    ``bfs_engine_highdiam`` trend rows were all measured on numpy.  A
    compiled backend would speed up the engine side only, turning the gate
    into a backend comparison — that comparison has its own rows and gates
    in ``test_bench_kernel_backend.py``.
    """
    with kernels.use_backend("numpy"):
        _run_high_diameter_cases()


def _run_high_diameter_cases():
    cases = (
        _HIGHDIAM_FULL
        if os.environ.get("BENCH_ROUTING_FULL", "") == "1"
        else _HIGHDIAM_SMOKE
    )
    results = []
    for family, n, num_sources in cases:
        sources = list(range(0, n, max(1, n // num_sources)))[:num_sources]
        engine_best = baseline_best = float("inf")
        engine_block = baseline_block = None
        # Best of 5: on a single-core VM one slow round is common, and the
        # trend gate compares engine_seconds against the committed-epoch
        # median, so the measurement must reach the machine's floor
        # reliably, not by luck.
        for _ in range(5):
            graph = _highdiam_graph(family, n)  # fresh: no memoised pad
            t0 = time.perf_counter()
            baseline_block = _pre_direction_optimized(graph, sources)
            baseline_best = min(baseline_best, time.perf_counter() - t0)
            graph.derived_cache().clear()
            t0 = time.perf_counter()
            engine_block = bfs_distances_many(graph, sources)
            engine_best = min(engine_best, time.perf_counter() - t0)
        np.testing.assert_array_equal(engine_block, baseline_block)
        # Legacy comparator: best of 3 passes over an 8-source sample, scaled
        # to the full batch.  A single pass makes the recorded speedup ratio
        # hostage to comparator noise (the trend gate itself watches
        # engine_seconds, not this ratio).
        legacy_best = float("inf")
        legacy = None
        for _ in range(3):
            t0 = time.perf_counter()
            legacy = [legacy_bfs_distances(graph, s) for s in sources[:8]]
            legacy_best = min(legacy_best, time.perf_counter() - t0)
        legacy_seconds = legacy_best * (len(sources) / 8)
        for row, arr in enumerate(legacy):
            np.testing.assert_array_equal(engine_block[row], arr)
        baseline_speedup = baseline_best / engine_best
        results.append(
            {
                "n": n,
                "family": family,
                "sources": len(sources),
                "engine_seconds": round(engine_best, 4),
                "baseline_seconds": round(baseline_best, 4),
                "baseline_speedup": round(baseline_speedup, 2),
                "legacy_seconds": round(legacy_seconds, 4),
                "speedup": round(legacy_seconds / engine_best, 2),
            }
        )
        print(
            f"\nbatched BFS on {family} n={n} ({len(sources)} sources): "
            f"engine {engine_best:.4f}s, pre-PR engine {baseline_best:.4f}s "
            f"({baseline_speedup:.2f}x), legacy ~{legacy_seconds:.3f}s "
            f"({legacy_seconds / engine_best:.1f}x)"
        )
    append_record(
        results,
        benchmark="bfs_engine_highdiam",
        mode="full" if os.environ.get("BENCH_ROUTING_FULL", "") == "1" else "smoke",
        config={"families": "ring/path", "note": "batched sweep, best of 5"},
    )
    # The issue's acceptance bar: the direction-optimizing engine must beat
    # the committed pre-PR engine by >= 2x on every high-diameter instance.
    for row in results:
        assert row["baseline_speedup"] >= 2.0, results


def main():  # pragma: no cover - manual acceptance run
    import time

    graph = generators.grid_graph([224, 224])  # n = 50176
    sources = list(range(0, graph.num_nodes, graph.num_nodes // 64))[:64]
    t0 = time.perf_counter()
    block = bfs_distances_many(graph, sources)
    t_engine = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy = [legacy_bfs_distances(graph, s) for s in sources]
    t_legacy = time.perf_counter() - t0
    identical = all(np.array_equal(block[i], arr) for i, arr in enumerate(legacy))
    print(
        f"n={graph.num_nodes} sources={len(sources)}: engine {t_engine:.3f}s, "
        f"legacy {t_legacy:.3f}s, speedup {t_legacy / t_engine:.1f}x, identical={identical}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
