"""Benchmark: vectorized frontier BFS engine vs. the legacy deque BFS.

Measures the batched multi-row sweep (``bfs_distances_many``) against the
equivalent sequence of legacy pure-Python BFS calls on a mid-size grid, and
asserts both the correctness contract (bitwise-identical distance blocks) and
the performance contract (the engine must win by a wide margin — the issue's
acceptance bar is 10x on an n=50k grid; the smaller benchmark size here keeps
the suite fast while still exercising the same code paths).

Run the acceptance-scale comparison manually with::

    PYTHONPATH=src python benchmarks/test_bench_bfs_engine.py
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.distances import legacy_bfs_distances
from repro.graphs.frontier import bfs_distances_many

#: Benchmark-size graph: large enough that the vectorized sweep dominates,
#: small enough for the default test run.  (~10k nodes)
_DIMS = [100, 100]
_NUM_SOURCES = 32


def _sources(graph):
    step = max(1, graph.num_nodes // _NUM_SOURCES)
    return list(range(0, graph.num_nodes, step))[:_NUM_SOURCES]


@pytest.fixture(scope="module")
def bench_graph():
    return generators.grid_graph(_DIMS)


@pytest.mark.benchmark(group="bfs-engine")
def test_frontier_engine_batched(benchmark, bench_graph):
    sources = _sources(bench_graph)
    block = benchmark.pedantic(
        bfs_distances_many, args=(bench_graph, sources), iterations=1, rounds=3
    )
    assert block.shape == (len(sources), bench_graph.num_nodes)


@pytest.mark.benchmark(group="bfs-engine")
def test_legacy_deque_reference(benchmark, bench_graph):
    sources = _sources(bench_graph)

    def run_legacy():
        return [legacy_bfs_distances(bench_graph, s) for s in sources]

    legacy = benchmark.pedantic(run_legacy, iterations=1, rounds=1)
    # Correctness contract: the engine's block is bitwise identical.
    block = bfs_distances_many(bench_graph, sources)
    for row, arr in enumerate(legacy):
        np.testing.assert_array_equal(block[row], arr)


def test_engine_beats_legacy(bench_graph):
    """The batched engine must beat the legacy loop by a wide margin."""
    import time

    sources = _sources(bench_graph)
    t0 = time.perf_counter()
    block = bfs_distances_many(bench_graph, sources)
    t_engine = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy = [legacy_bfs_distances(bench_graph, s) for s in sources]
    t_legacy = time.perf_counter() - t0
    for row, arr in enumerate(legacy):
        np.testing.assert_array_equal(block[row], arr)
    # 10x is the acceptance bar at n=50k; at this size the margin is smaller
    # but must still be decisive.
    assert t_engine * 5 < t_legacy, (
        f"frontier engine {t_engine:.3f}s not clearly faster than legacy {t_legacy:.3f}s"
    )


def main():  # pragma: no cover - manual acceptance run
    import time

    graph = generators.grid_graph([224, 224])  # n = 50176
    sources = list(range(0, graph.num_nodes, graph.num_nodes // 64))[:64]
    t0 = time.perf_counter()
    block = bfs_distances_many(graph, sources)
    t_engine = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy = [legacy_bfs_distances(graph, s) for s in sources]
    t_legacy = time.perf_counter() - t0
    identical = all(np.array_equal(block[i], arr) for i, arr in enumerate(legacy))
    print(
        f"n={graph.num_nodes} sources={len(sources)}: engine {t_engine:.3f}s, "
        f"legacy {t_legacy:.3f}s, speedup {t_legacy / t_engine:.1f}x, identical={identical}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
