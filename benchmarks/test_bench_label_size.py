"""Benchmark for EXP-5 — Theorem 3: small label spaces force polynomial greedy diameter."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_label_size


@pytest.mark.benchmark(group="EXP-5")
def test_exp5_label_size_lower_bound(benchmark, bench_config):
    result = benchmark.pedantic(exp_label_size.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    for eps in exp_label_size.EPSILONS:
        series = result.get_series(f"eps={eps:g}")
        fit = series.power_law()
        assert fit is not None
        # Theorem 3 floor: exponent at least (1 - eps)/3 (generous noise margin).
        floor = (1.0 - eps) / 3.0
        assert fit.exponent >= floor - 0.15, (
            f"eps={eps}: measured exponent {fit.exponent:.3f} violates the (1-eps)/3 floor"
        )
