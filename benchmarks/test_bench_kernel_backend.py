"""Benchmark: compiled (numba) kernels vs the numpy reference kernels.

The direct backend-vs-backend comparison the compiled-kernel work is gated
on: ring/path batched BFS level throughput and the warm batched
``next_local_to_many`` build, each measured under ``use_backend("numpy")``
and ``use_backend("numba")`` on the same inputs, with bitwise equality
asserted before any timing is trusted.

Rows are appended to ``BENCH_routing.json`` under two new kinds —
``bfs_kernel_compiled`` and ``next_local_compiled`` — whose
``engine_seconds`` (the compiled path's own wall time, lower is better) is
trend-gated by ``tools/check_bench_trend.py``.  The numpy-relative speedup
is gated *here* (absolute bar), not in the trend: it divides two timers, and
the trend gate deliberately avoids comparator-noise ratios.

The whole module skips when numba is not importable (the pure-python
checkout this repo must support); CI's numba leg installs the ``.[compiled]``
extra and runs it.  ``BENCH_ROUTING_FULL=1`` adds the acceptance-scale
instances (25k ring/path, 50k grid) where the issue's >= 3x bar applies.

Run the acceptance-scale comparison manually with::

    BENCH_ROUTING_FULL=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_kernel_backend.py -q -s
"""

import os
import time

import numpy as np
import pytest

from bench_recording import append_record
from repro.graphs import generators, kernels
from repro.graphs.frontier import bfs_distances_many
from repro.graphs.oracle import DistanceOracle

pytestmark = pytest.mark.skipif(
    "numba" not in kernels.available_backends(),
    reason="numba not installed (pip install .[compiled]); compiled-kernel benchmarks skipped",
)


def _full_mode() -> bool:
    return os.environ.get("BENCH_ROUTING_FULL", "") == "1"


def _best_of(fn, rounds: int):
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


#: (family, n, sources): smoke keeps CI fast, full adds the ROADMAP-scale
#: 25k instances the acceptance criterion speaks about.
_BFS_SMOKE = [("ring", 8192, 32), ("path", 8191, 32)]
_BFS_FULL = _BFS_SMOKE + [("ring", 25000, 64), ("path", 24999, 64)]

#: The compiled BFS step must beat the numpy per-level pipeline >= 3x on
#: high-diameter instances at every size: the numpy path pays ~10 numpy-call
#: fixed costs per level and these sweeps are thousands of levels of tiny
#: frontiers, which is exactly the regime a typed loop erases.
_BFS_GATE = 3.0

#: Warm next_local build: >= 3x at the acceptance-scale 50k grid (full
#: mode), a softer 1.5x at the 2k smoke grid where the absolute times are a
#: few hundred microseconds and fixed costs blur the ratio.
_NL_GATE_FULL = 3.0
_NL_GATE_SMOKE = 1.5


def test_bfs_levels_compiled_vs_numpy():
    """Ring/path batched BFS: numba vs numpy backends, bitwise + >= 3x."""
    kernels.get_backend("numba").warmup()  # JIT outside every timed region
    cases = _BFS_FULL if _full_mode() else _BFS_SMOKE
    results = []
    for family, n, num_sources in cases:
        graph = (
            generators.cycle_graph(n) if family == "ring" else generators.path_graph(n)
        )
        sources = list(range(0, n, max(1, n // num_sources)))[:num_sources]
        with kernels.use_backend("numpy"):
            numpy_seconds, numpy_block = _best_of(
                lambda: bfs_distances_many(graph, sources), rounds=3
            )
        with kernels.use_backend("numba"):
            numba_seconds, numba_block = _best_of(
                lambda: bfs_distances_many(graph, sources), rounds=5
            )
        np.testing.assert_array_equal(numba_block, numpy_block)
        speedup = numpy_seconds / numba_seconds if numba_seconds > 0 else float("inf")
        results.append(
            {
                "n": n,
                "family": family,
                "sources": len(sources),
                "engine_seconds": round(numba_seconds, 4),
                "numpy_seconds": round(numpy_seconds, 4),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"\ncompiled BFS on {family} n={n} ({len(sources)} sources): "
            f"numba {numba_seconds:.4f}s vs numpy {numpy_seconds:.4f}s "
            f"({speedup:.2f}x)"
        )
    with kernels.use_backend("numba"):  # stamp the backend the rows measured
        append_record(
            results,
            benchmark="bfs_kernel_compiled",
            mode="full" if _full_mode() else "smoke",
            config={
                "families": "ring/path",
                "note": "numba vs numpy backend, best of 5/3",
                "jit_warmup_seconds": round(kernels.get_backend("numba").warmup(), 3),
            },
        )
    for row in results:
        assert row["speedup"] >= _BFS_GATE, (_BFS_GATE, results)


def test_next_local_compiled_vs_numpy():
    """Warm batched next_local build: numba vs numpy backends on grids."""
    kernels.get_backend("numba").warmup()
    sides = [45, 224] if _full_mode() else [45]  # 224^2 = 50176: acceptance scale
    results = []
    for side in sides:
        graph = generators.grid_graph([side, side])
        n = graph.num_nodes
        rng = np.random.default_rng(1234)
        targets = sorted(rng.choice(n, size=min(64, n), replace=False).tolist())

        def _warm_oracle():
            oracle = DistanceOracle(graph)
            oracle.prefetch(targets)
            return oracle

        def _timed(backend):
            # Fresh warm oracle per round (the build is memoised); only the
            # hop-table derivation below runs under the forced backend, so
            # the timing isolates next_local_pointers_many.
            best = float("inf")
            block = None
            for _ in range(3 if backend == "numpy" else 5):
                oracle = _warm_oracle()
                with kernels.use_backend(backend):
                    t0 = time.perf_counter()
                    block = oracle.next_local_to_many(targets)
                    best = min(best, time.perf_counter() - t0)
            return best, block

        _warm_oracle().next_local_to_many(targets)  # untimed allocator warm-up
        numpy_seconds, numpy_block = _timed("numpy")
        numba_seconds, numba_block = _timed("numba")
        np.testing.assert_array_equal(numba_block, numpy_block)
        speedup = numpy_seconds / numba_seconds if numba_seconds > 0 else float("inf")
        results.append(
            {
                "n": n,
                "grid": [side, side],
                "targets": len(targets),
                "engine_seconds": round(numba_seconds, 4),
                "numpy_seconds": round(numpy_seconds, 4),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"\ncompiled next_local at n={n} ({len(targets)} targets): "
            f"numba {numba_seconds*1000:.2f}ms vs numpy {numpy_seconds*1000:.2f}ms "
            f"({speedup:.2f}x)"
        )
    with kernels.use_backend("numba"):
        append_record(
            results,
            benchmark="next_local_compiled",
            mode="full" if _full_mode() else "smoke",
            config={
                "targets": "64 seeded-random targets",
                "note": "warm batched build, numba vs numpy backend",
                "jit_warmup_seconds": round(kernels.get_backend("numba").warmup(), 3),
            },
        )
    assert results[0]["speedup"] >= _NL_GATE_SMOKE, (_NL_GATE_SMOKE, results)
    if _full_mode():
        biggest = results[-1]
        assert biggest["n"] >= 50_000
        assert biggest["speedup"] >= _NL_GATE_FULL, (_NL_GATE_FULL, results)
