"""Benchmark: landmark sketch warmup cost and stretch (``approx_distance``).

Builds a ring-graph :class:`~repro.graphs.landmark.LandmarkOracle`, times the
one-off landmark warmup (the L pivot BFS sweeps — the *only* full-graph BFS
work landmark mode ever pays for bulk queries), then measures the sketch's
per-query quality against the ring's closed-form distances
``min((i - s) % n, (s - i) % n)``.  The closed form makes both contracts
checkable at ``n = 10**6`` without running a single exact BFS:

* **admissibility**: every sketch estimate upper-bounds the true distance
  (``est(u, t) = min_l d(u, l) + d(l, t)`` rides real shortest paths), and
* **stretch**: the mean ratio ``est / exact`` over sampled query rows stays
  small — farthest-point pivots on a cycle land nearly evenly spaced, so the
  additive error is bounded by the inter-pivot gap.

Each run appends an ``approx_distance`` record to ``BENCH_routing.json``;
``tools/check_bench_trend.py`` gates ``warmup_seconds`` and ``mean_stretch``
with lower-is-better ceilings so a slower warmup or a worse sketch fails CI.

The default run measures the 50k smoke size.  ``BENCH_ROUTING_FULL=1`` adds
the ISSUE acceptance point — a million-node ring sketched by 16 pivots::

    BENCH_ROUTING_FULL=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_approx_distance.py -q -s
"""

import os
import time

import numpy as np
import pytest

from bench_recording import append_record
from repro.graphs import generators
from repro.graphs.landmark import LandmarkOracle

#: Measured ring sizes.
_SMOKE_POINTS = [50_000]
_FULL_POINTS = [50_000, 1_000_000]

_LANDMARKS = 16
_QUERY_ROWS = 8  # sketch rows sampled for the stretch measurement
_SAMPLES_PER_ROW = 512  # target entries sampled per row


def _full() -> bool:
    return os.environ.get("BENCH_ROUTING_FULL", "") == "1"


def _ring_reference_row(n: int, source: int) -> np.ndarray:
    """Closed-form single-source distances on the n-cycle."""
    idx = np.arange(n, dtype=np.int64)
    forward = (idx - source) % n
    return np.minimum(forward, n - forward)


def _measure_point(n: int) -> dict:
    graph = generators.cycle_graph(n)
    oracle = LandmarkOracle(graph, num_landmarks=_LANDMARKS, seed=n)

    started = time.perf_counter()
    pivots = oracle.landmarks  # forces the L pivot BFS sweeps
    warmup_seconds = time.perf_counter() - started
    assert len(pivots) == _LANDMARKS

    rng = np.random.default_rng(n + 1)
    ratios = []
    query_started = time.perf_counter()
    for source in rng.integers(0, n, size=_QUERY_ROWS):
        source = int(source)
        est = np.asarray(oracle.query_distances_from(source), dtype=np.int64)
        exact = _ring_reference_row(n, source)
        targets = rng.integers(0, n, size=_SAMPLES_PER_ROW)
        targets = targets[exact[targets] > 0]
        assert (est[targets] >= exact[targets]).all(), (
            f"n={n}: sketch under-estimated a distance from {source} "
            "(admissibility violated)"
        )
        ratios.append(float(np.mean(est[targets] / exact[targets])))
    query_seconds = time.perf_counter() - query_started

    mean_stretch = float(np.mean(ratios))
    # Evenly spread pivots keep the cycle's mean multiplicative stretch small;
    # 4.0 is a loose absolute sanity bar — the trend gate guards regressions.
    assert mean_stretch >= 1.0
    assert mean_stretch < 4.0, f"n={n}: mean stretch {mean_stretch:.3f} blew up"

    stats = oracle.distance_stats()
    assert stats["landmark_sweeps"] == _LANDMARKS  # warmup is exactly L BFS
    print(
        f"  approx_distance n={n}: {_LANDMARKS} pivots warmed in "
        f"{warmup_seconds:.2f}s, {len(ratios)} query rows in "
        f"{query_seconds:.2f}s, mean stretch {mean_stretch:.3f}"
    )
    return {
        "n": n,
        "warmup_seconds": round(warmup_seconds, 4),
        "mean_stretch": round(mean_stretch, 4),
        "query_seconds": round(query_seconds, 4),
        "landmarks": _LANDMARKS,
        "query_rows": len(ratios),
    }


def test_landmark_warmup_and_stretch():
    """Warmup stays L BFS sweeps; sketch rows stay admissible + low-stretch."""
    points = _FULL_POINTS if _full() else _SMOKE_POINTS
    results = [_measure_point(n) for n in points]
    append_record(
        results,
        benchmark="approx_distance",
        mode="full" if _full() else "smoke",
        config={
            "family": "ring",
            "landmarks": _LANDMARKS,
            "query_rows": _QUERY_ROWS,
            "points": list(points),
        },
    )


@pytest.mark.skipif(not _full(), reason="BENCH_ROUTING_FULL=1 runs the 10^6 acceptance point")
def test_million_node_sketch_acceptance():
    """The ISSUE acceptance bar: n=10^6 sketch warmup + bounded stretch."""
    result = _measure_point(1_000_000)
    assert result["mean_stretch"] < 4.0


if __name__ == "__main__":  # manual acceptance-scale run
    os.environ["BENCH_ROUTING_FULL"] = "1"
    test_landmark_warmup_and_stretch()
