"""Benchmark: the ``repro serve`` daemon under closed-loop load.

Boots the real daemon (``python -m repro serve``) as a subprocess on a ring
of n = 50k with the uniform scheme and a 32-target warmed routing-block
pool, then drives it with the closed-loop generator
(:mod:`serve_loadgen`):

* **smoke** — 200 concurrent queries over 2 pipelined connections must all
  succeed (zero errors) with a sane p99;
* **throughput** — a 1024-wide closed loop must sustain the issue's
  acceptance gate of >= 5000 queries/second (one retry absorbs a noisy
  machine);
* **identity** — a spot-check that the daemon's batched answers (steps and
  lane seed) are exactly what a local :func:`repro.open_session` session
  produces for the same (source, target) under the same seed policy.

Both load runs append ``serve_qps`` / ``serve_latency`` records to
``BENCH_routing.json`` so ``tools/check_bench_trend.py`` gates the serving
trajectory like every other perf kind.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from bench_recording import append_record
from serve_loadgen import run_load

_FAMILY = "ring"
_N = 50_000
_SCHEME = "uniform"
_SEED = 20070610
_WARM_TARGETS = 32
_QPS_GATE = 5000.0

_LISTENING = re.compile(r"repro serve: listening on ([\d.]+):(\d+)")


@pytest.fixture(scope="module")
def daemon():
    """A live ``repro serve`` subprocess; yields ``(host, port)``."""
    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            _FAMILY,
            "-n",
            str(_N),
            "--seed",
            str(_SEED),
            "--scheme",
            _SCHEME,
            "--port",
            "0",
            "--warm-targets",
            str(_WARM_TARGETS),
        ],
        cwd=root,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120.0
        line = ""
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line and process.poll() is not None:
                raise RuntimeError(f"daemon exited early (rc={process.returncode})")
            match = _LISTENING.search(line)
            if match:
                break
        else:
            raise RuntimeError("daemon never printed its listening line")
        yield match.group(1), int(match.group(2))
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)


def test_serve_smoke_concurrent_queries(daemon):
    host, port = daemon
    report = run_load(
        host, port, num_queries=200, concurrency=200, connections=2, seed=_SEED
    )
    print()
    print(
        f"serve smoke: {report.queries} queries, {report.errors} errors, "
        f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms"
    )
    assert report.queries == 200
    assert report.errors == 0
    # Generous bound: a 1 ms batching window plus one lane sweep per batch
    # should answer in tens of ms even on a loaded CI box.
    assert report.p99_ms < 2000.0
    append_record(
        [{**report.to_results(), "n": _N}],
        benchmark="serve_latency",
        mode="smoke",
        config={
            "family": _FAMILY,
            "n": _N,
            "scheme": _SCHEME,
            "seed": _SEED,
            "concurrency": 200,
            "connections": 2,
        },
    )


def test_serve_throughput_gate(daemon):
    host, port = daemon
    report = None
    for attempt in range(2):  # one retry absorbs a noisy machine
        report = run_load(
            host, port, num_queries=16_000, concurrency=1024, connections=8, seed=_SEED
        )
        print()
        print(
            f"serve throughput (attempt {attempt + 1}): "
            f"{report.qps:.0f} qps, {report.errors} errors, "
            f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms"
        )
        if report.errors == 0 and report.qps >= _QPS_GATE:
            break
    assert report.errors == 0
    assert report.qps >= _QPS_GATE, (
        f"daemon sustained {report.qps:.0f} qps, below the {_QPS_GATE:.0f} gate"
    )
    append_record(
        [{**report.to_results(), "n": _N}],
        benchmark="serve_qps",
        mode="closed-loop",
        config={
            "family": _FAMILY,
            "n": _N,
            "scheme": _SCHEME,
            "seed": _SEED,
            "concurrency": 1024,
            "connections": 8,
        },
    )


def test_serve_results_match_local_session(daemon):
    from repro import open_session
    from repro.serve.client import RouteServiceClient

    host, port = daemon
    with RouteServiceClient(host, port) as client:
        warmed = client.info()["warmed_targets"]
        pairs = [(13 + 97 * i, warmed[i % len(warmed)]) for i in range(8)]
        served = client.route_many(pairs)
    with open_session(_FAMILY, _N, seed=_SEED, scheme=_SCHEME) as session:
        for (source, target), response in zip(pairs, served):
            assert response["ok"], response
            local = session.route(source, target)
            assert local.ok
            assert response["seed"] == local.seed
            assert response["steps"] == local.steps
            assert response["success"] == local.success
            assert response["long_links"] == local.long_links
            assert response["distance"] == local.graph_distance
