"""Closed-loop load generator for the ``repro serve`` daemon.

Drives a running daemon with a fixed number of in-flight route queries
(*closed loop*: each worker issues its next query only after the previous
response arrives, so the measured throughput is the daemon's, not the
generator's ability to flood a socket).  Workers share a small pool of
pipelined connections (:class:`repro.serve.client.AsyncRouteClient`), query
targets are drawn from the daemon's warmed routing-block pool (reported by
``info``) so the steady-state rate is measured rather than BFS warm-up, and
sources are uniform over the graph.

Produces a :class:`LoadReport` with queries-per-second and p50/p99 response
latency — the numbers ``benchmarks/test_bench_serve.py`` records as
``serve_qps`` / ``serve_latency`` rows in ``BENCH_routing.json``.

Standalone use::

    PYTHONPATH=src python -m repro serve ring -n 50000 --port 8642 &
    PYTHONPATH=src:benchmarks python benchmarks/serve_loadgen.py \
        127.0.0.1 8642 --queries 20000 --concurrency 512
"""

from __future__ import annotations

import argparse
import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.client import AsyncRouteClient

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """One closed-loop run: volume, error count and the latency distribution."""

    queries: int
    errors: int
    seconds: float
    qps: float
    p50_ms: float
    p99_ms: float

    def to_results(self) -> dict:
        """The dict recorded into ``BENCH_routing.json``."""
        return {
            "queries": self.queries,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


async def _run_load_async(
    host: str,
    port: int,
    *,
    num_queries: int,
    concurrency: int,
    connections: int,
    seed: int,
    pairs: Optional[Sequence[Tuple[int, int]]],
) -> LoadReport:
    connections = max(1, min(connections, concurrency))
    clients = [await AsyncRouteClient().connect(host, port) for _ in range(connections)]
    try:
        if pairs is None:
            info = await clients[0].info()
            n = int(info["n"])
            warmed = [int(t) for t in info.get("warmed_targets") or []]
            rng = np.random.default_rng(seed)
            sources = rng.integers(0, n, size=num_queries)
            if warmed:
                targets = rng.choice(np.asarray(warmed, dtype=np.int64), size=num_queries)
            else:
                targets = rng.integers(0, n, size=num_queries)
            pairs = [
                (int(s), int(t)) for s, t in zip(sources, targets)
            ]
        queue = iter(list(pairs)[:num_queries])
        latencies: List[float] = []
        errors = 0

        async def worker(worker_id: int) -> None:
            nonlocal errors
            client = clients[worker_id % connections]
            # One event loop: plain next() on the shared iterator is race-free.
            for source, target in queue:
                started = time.perf_counter()
                try:
                    response = await client.route(source, target)
                except ConnectionError:
                    errors += 1
                    return
                latencies.append(time.perf_counter() - started)
                if not response.get("ok"):
                    errors += 1

        started = time.perf_counter()
        await asyncio.gather(*(worker(i) for i in range(concurrency)))
        elapsed = time.perf_counter() - started
    finally:
        for client in clients:
            await client.close()

    done = len(latencies)
    lat_ms = np.asarray(latencies) * 1000.0 if done else np.zeros(1)
    return LoadReport(
        queries=done,
        errors=errors,
        seconds=elapsed,
        qps=done / elapsed if elapsed > 0 else 0.0,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
    )


def run_load(
    host: str,
    port: int,
    *,
    num_queries: int = 10_000,
    concurrency: int = 256,
    connections: int = 4,
    seed: int = 0,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> LoadReport:
    """Run one closed-loop load against a daemon and return its report.

    ``concurrency`` is the closed-loop width (in-flight queries), fanned over
    ``connections`` pipelined sockets.  ``pairs`` overrides the generated
    (source, target) stream — used by the bench's identity spot-check.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be at least 1")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    return asyncio.run(
        _run_load_async(
            host,
            port,
            num_queries=num_queries,
            concurrency=concurrency,
            connections=connections,
            seed=seed,
            pairs=pairs,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="closed-loop load for repro serve")
    parser.add_argument("host")
    parser.add_argument("port", type=int)
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument("--concurrency", type=int, default=256)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = run_load(
        args.host,
        args.port,
        num_queries=args.queries,
        concurrency=args.concurrency,
        connections=args.connections,
        seed=args.seed,
    )
    print(
        f"{report.queries} queries ({report.errors} errors) in "
        f"{report.seconds:.2f}s -> {report.qps:.0f} qps, "
        f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms"
    )
    return 0 if report.errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
