"""Benchmark for EXP-6 — Theorem 4: the ball scheme's Õ(n^{1/3}) greedy diameter.

This is the paper's headline result (the √n-barrier is beaten); the assertion
checks the who-wins ordering — the ball scheme must not lose to the uniform
scheme on the √n-hard families — while the full-size exponent comparison is
recorded in EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_ball_scheme


@pytest.mark.benchmark(group="EXP-6")
def test_exp6_ball_scheme_beats_sqrt_barrier(benchmark, bench_config):
    result = benchmark.pedantic(exp_ball_scheme.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    for family in ("ring", "path"):
        ball = result.get_series(f"ball/{family}")
        uniform = result.get_series(f"uniform/{family}")
        # At the largest benchmarked size the ball scheme must be at least
        # competitive with the uniform scheme (it wins clearly at full size).
        assert ball.values[-1] <= 1.3 * uniform.values[-1], (
            f"ball scheme lost to uniform on {family}: {ball.values[-1]:.1f} vs {uniform.values[-1]:.1f}"
        )
