"""Benchmark for EXP-4 — Corollary 1: trees and AT-free graphs under (M, L)."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_trees_atfree


@pytest.mark.benchmark(group="EXP-4")
def test_exp4_trees_and_atfree(benchmark, bench_config):
    result = benchmark.pedantic(exp_trees_atfree.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    # On every family the ancestor-driven scheme must actually shortcut:
    # the measured greedy diameter is far below the graph diameter (which is
    # Theta(n) for these path-like instances).
    for series in result.series:
        if not series.name.startswith("ancestor_only/"):
            continue
        for n, value in zip(series.sizes, series.values):
            assert value < 0.6 * n, f"{series.name} does not shortcut at n={n}"
