"""Benchmark: oracle resident memory under a byte budget (``oracle_memory``).

Warms a ring-graph :class:`~repro.graphs.oracle.DistanceOracle` with more
distance rows than its ``max_bytes`` budget can hold resident, so the tiered
cache must spill cold rows to its memory-mapped backing file, then asserts
the two contracts the million-node sweep depends on:

* **memory**: ``resident_bytes()`` never exceeds the budget, and
* **correctness**: every cached row still matches the ring's closed-form
  distance ``min((i - s) % n, (s - i) % n)`` — spilling and promotion must
  not corrupt a single value (the closed form makes this checkable at
  ``n = 10**6`` without re-running BFS).

Each measured size appends a ``bytes_per_node`` record to
``BENCH_routing.json`` under the ``oracle_memory`` kind;
``tools/check_bench_trend.py`` gates it with a lower-is-better ceiling.

The default run measures the 50k smoke size.  ``BENCH_ROUTING_FULL=1`` adds
the ISSUE acceptance point — a million-node ring warmed past a 512 MiB
budget::

    BENCH_ROUTING_FULL=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_oracle_memory.py -q -s
"""

import os

import numpy as np
import pytest

from bench_recording import append_record
from repro.graphs import generators
from repro.graphs.oracle import DistanceOracle

_MIB = 1024 * 1024

#: Measured (n, max_bytes) points.  Budgets are sized well below the warmed
#: working set so the cold tier genuinely engages.
_SMOKE_POINTS = [(50_000, 8 * _MIB)]
_FULL_POINTS = [(50_000, 8 * _MIB), (1_000_000, 512 * _MIB)]


def _full() -> bool:
    return os.environ.get("BENCH_ROUTING_FULL", "") == "1"


def _ring_reference_row(n: int, source: int) -> np.ndarray:
    """Closed-form single-source distances on the n-cycle."""
    idx = np.arange(n, dtype=np.int64)
    forward = (idx - source) % n
    return np.minimum(forward, n - forward)


def _measure_point(n: int, budget: int) -> dict:
    graph = generators.cycle_graph(n)
    oracle = DistanceOracle(graph, max_bytes=budget)
    row_nbytes = oracle._dtype.itemsize * n
    # ~15% more rows than fit resident: the cold tier must absorb the rest.
    warm = int(budget // row_nbytes * 1.15) + 4
    step = max(1, n // warm)
    sources = list(range(0, n, step))[:warm]
    oracle.prefetch(sources)

    assert oracle.resident_bytes() <= budget, (
        f"n={n}: resident {oracle.resident_bytes()} bytes exceeds the "
        f"{budget}-byte budget"
    )
    assert oracle.cold_spills > 0, f"n={n}: budget never engaged the cold tier"

    # Re-reading promotes rows back and forth across the tiers; values must
    # stay exact and the budget must keep holding throughout.
    for source in sources[:: max(1, len(sources) // 8)]:
        np.testing.assert_array_equal(
            np.asarray(oracle.distances_from(source), dtype=np.int64),
            _ring_reference_row(n, source),
        )
        assert oracle.resident_bytes() <= budget

    stats = oracle.memory_stats()
    bytes_per_node = stats["resident_bytes"] / n
    print(
        f"  oracle_memory n={n}: {len(sources)} rows warmed, "
        f"{stats['resident_bytes']} resident / {budget} budget bytes "
        f"({bytes_per_node:.1f} bytes/node), {stats['cold_entries']} cold, "
        f"{oracle.cold_spills} spill(s), {oracle.cold_promotions} promotion(s)"
    )
    return {
        "n": n,
        "bytes_per_node": round(bytes_per_node, 3),
        "budget_bytes": budget,
        "resident_bytes": stats["resident_bytes"],
        "rows_warmed": len(sources),
        "cold_spills": oracle.cold_spills,
    }


def test_oracle_memory_under_budget():
    """Resident memory stays under ``max_bytes`` while values stay exact."""
    points = _FULL_POINTS if _full() else _SMOKE_POINTS
    results = [_measure_point(n, budget) for n, budget in points]
    append_record(
        results,
        benchmark="oracle_memory",
        mode="full" if _full() else "smoke",
        config={"family": "ring", "points": [list(p) for p in points]},
    )


@pytest.mark.skipif(not _full(), reason="BENCH_ROUTING_FULL=1 runs the 10^6 acceptance point")
def test_million_node_acceptance_budget():
    """The ISSUE acceptance bar: n=10^6 under a 512 MiB oracle budget."""
    result = _measure_point(1_000_000, 512 * _MIB)
    assert result["resident_bytes"] <= 512 * _MIB


if __name__ == "__main__":  # manual acceptance-scale run
    os.environ["BENCH_ROUTING_FULL"] = "1"
    test_oracle_memory_under_budget()
