"""Benchmark for EXP-7 — Kleinberg harmonic-scheme calibration on the 2-D torus."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_kleinberg


@pytest.mark.benchmark(group="EXP-7")
def test_exp7_kleinberg_calibration(benchmark, bench_config):
    result = benchmark.pedantic(exp_kleinberg.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    sweep = result.series[0]
    # The greedy diameter at the critical exponent r=2 must not exceed the
    # r=4 (too-local links) value: the U-shape has its minimum in the middle.
    by_exponent = sweep.metadata
    assert by_exponent["r=2"] <= by_exponent["r=4"] * 1.1
