"""Benchmark for EXP-8 — ablation of the ball scheme's level mixture (extension)."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_ball_ablation


@pytest.mark.benchmark(group="EXP-8")
def test_exp8_ball_level_ablation(benchmark, bench_config):
    result = benchmark.pedantic(exp_ball_ablation.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    paper = result.get_series("uniform levels (paper)")
    smallest = result.get_series("smallest level only")
    # Dropping the large scales must hurt: the smallest-level variant needs
    # far more steps than the paper's mixture at the largest benchmarked size.
    assert smallest.values[-1] > 2.0 * paper.values[-1]
