"""Shared configuration for the benchmark harness.

Each benchmark file regenerates one experiment of DESIGN.md's index (the
paper has no numbered tables/figures; its claims are the theorems).  The
benchmarked callable runs the experiment at the ``quick`` configuration so
``pytest benchmarks/ --benchmark-only`` finishes in minutes; the printed
report contains the same series/rows that the full-size run in EXPERIMENTS.md
records.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Configuration used by every benchmark (small but non-trivial sizes)."""
    return ExperimentConfig(sizes=[128, 256, 512], num_pairs=4, trials=6, seed=20070610)


def report(result) -> None:
    """Print the experiment report so it appears in the benchmark output."""
    print()
    print(result.to_text())
