"""Benchmark for EXP-3 — Theorem 2's (M, L) scheme: O(min{ps(G)·log² n, √n})."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_matrix_label


@pytest.mark.benchmark(group="EXP-3")
def test_exp3_matrix_label_scheme(benchmark, bench_config):
    result = benchmark.pedantic(exp_matrix_label.run, args=(bench_config,), iterations=1, rounds=1)
    report(result)
    # The uniform component preserves the universal fallback: the full (M, L)
    # scheme stays within a small factor of the plain uniform scheme.
    for family in ("path", "caterpillar", "spider", "torus2d"):
        t2 = result.get_series(f"theorem2/{family}")
        uni = result.get_series(f"uniform/{family}")
        for v_t2, v_uni in zip(t2.values, uni.values):
            assert v_t2 <= 4.0 * v_uni + 10.0, f"(M,L) lost the sqrt(n) fallback on {family}"
