"""Benchmark: lane-vectorized routing engine vs. the scalar reference loop.

Measures the Monte-Carlo routing phase (64 pairs x 16 trials, uniform scheme)
on square grids at n ~ {2k, 10k, 50k} under both engines.  Per engine and
size, two rounds run against a BFS-prewarmed oracle:

* **cold** — the first estimate, which for the lane engine includes building
  the per-target ``next_local`` hop tables and stacked routing blocks
  (``DistanceOracle.routing_blocks``);
* **warm** — the steady-state estimate with those oracle caches populated.

Warm is the figure the sweep pipeline actually pays per scheme: every
experiment cell routes several schemes (and repeated trial batches) over the
*same* seeded pairs and shared oracle, so the table construction is a
once-per-cell cost while each scheme's routing phase runs at the warm rate.
The speedup gates therefore apply to the warm numbers; cold numbers are
recorded alongside for transparency.

Every run appends a record to ``BENCH_routing.json`` at the repository root,
so the routing-perf trajectory accumulates across runs/commits; CI uploads
the file as a workflow artifact.

Modes
-----
* default (smoke, what CI and the tier-1 suite run): n ~ 2k only, with a
  modest 2x warm-speedup gate and the lane-vs-scalar divergence gate (shared
  contact table => identical step counts, lane by lane).
* ``BENCH_ROUTING_FULL=1``: all three sizes, and the issue's acceptance gate
  of >= 10x at n ~ 50k.

Run the acceptance-scale comparison with::

    BENCH_ROUTING_FULL=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_routing_engine.py -q -s
"""

import os
import time

import numpy as np

from bench_recording import append_record
from repro.core.base import NO_CONTACT
from repro.core.uniform import UniformScheme
from repro.graphs import generators, kernels
from repro.graphs.oracle import DistanceOracle
from repro.routing.engine import materialize_contact_table, route_lanes
from repro.routing.greedy import greedy_route
from repro.routing.simulator import estimate_expected_steps

_NUM_PAIRS = 64
_TRIALS = 16
_SEED = 20070610
#: Grid sides for the sweep: 45^2 ~ 2k, 100^2 = 10k, 224^2 ~ 50k nodes.
_SMOKE_SIDES = [45]
_FULL_SIDES = [45, 100, 224]


def _full_mode() -> bool:
    return os.environ.get("BENCH_ROUTING_FULL", "") == "1"


def _pairs(n: int):
    step = max(1, n // (_NUM_PAIRS + 1))
    pairs = []
    for i in range(_NUM_PAIRS):
        s = (i * step) % n
        t = (n - 1 - i * step) % n
        if s != t:
            pairs.append((s, t))
    return pairs


def _measure_engine(graph, pairs, engine: str):
    """Return ``(cold_seconds, warm_seconds)`` for one engine at one size."""
    scheme = UniformScheme(graph, seed=_SEED)
    oracle = DistanceOracle(graph)
    oracle.prefetch(t for (_, t) in pairs)  # BFS warm-up is not routing time
    timings = []
    for round_seed in (_SEED, _SEED + 1):
        t0 = time.perf_counter()
        estimate_expected_steps(
            graph, scheme, pairs, trials=_TRIALS, seed=round_seed,
            oracle=oracle, engine=engine,
        )
        timings.append(time.perf_counter() - t0)
    return timings[0], timings[1]


def _append_record(results, benchmark: str = "routing_engine", config: dict = None) -> None:
    append_record(
        results,
        benchmark=benchmark,
        mode="full" if _full_mode() else "smoke",
        config=config
        if config is not None
        else {"num_pairs": _NUM_PAIRS, "trials": _TRIALS, "scheme": "uniform"},
    )


def test_lane_matches_scalar_on_smoke_config():
    """Divergence gate: identical trajectories under a shared contact table."""
    graph = generators.grid_graph([24, 24])
    pairs = _pairs(graph.num_nodes)[:8]
    trials = 4
    scheme = UniformScheme(graph, seed=_SEED)
    oracle = DistanceOracle(graph)
    table = materialize_contact_table(scheme, len(pairs) * trials, rng=_SEED)
    batch = route_lanes(
        graph, scheme, pairs, trials=trials, seed=1, oracle=oracle, contact_table=table
    )
    for lane in range(len(pairs) * trials):
        s, t = pairs[lane // trials]
        result = greedy_route(
            graph,
            oracle.distances_to(t),
            s,
            t,
            lambda u, lane=lane: (
                None if table[lane, u] == NO_CONTACT else int(table[lane, u])
            ),
        )
        assert result.success and bool(batch.success[lane])
        assert int(batch.steps[lane]) == result.steps
        assert int(batch.long_links[lane]) == result.long_links_used


def test_lane_engine_speedup():
    """Measure lane vs scalar per size, accumulate BENCH_routing.json, gate."""
    sides = _FULL_SIDES if _full_mode() else _SMOKE_SIDES
    results = []
    for side in sides:
        graph = generators.grid_graph([side, side])
        n = graph.num_nodes
        pairs = _pairs(n)
        scalar_cold, scalar_warm = _measure_engine(graph, pairs, "scalar")
        lane_cold, lane_warm = _measure_engine(graph, pairs, "lane")
        speedup = scalar_warm / lane_warm if lane_warm > 0 else float("inf")
        results.append(
            {
                "n": n,
                "grid": [side, side],
                "scalar_seconds": round(scalar_warm, 4),
                "lane_seconds": round(lane_warm, 4),
                "speedup": round(speedup, 2),
                "scalar_cold_seconds": round(scalar_cold, 4),
                "lane_cold_seconds": round(lane_cold, 4),
                "cold_speedup": round(
                    scalar_cold / lane_cold if lane_cold > 0 else float("inf"), 2
                ),
            }
        )
        print(
            f"\nrouting engines at n={n}: scalar {scalar_warm:.3f}s, "
            f"lane {lane_warm:.3f}s warm ({lane_cold:.3f}s cold), "
            f"speedup {speedup:.1f}x"
        )
    _append_record(results)
    # Smoke gate: decisively faster even at 2k.  Acceptance gate: >= 10x on
    # the 50k grid (full mode, the issue's bar).
    assert results[0]["speedup"] >= 2.0, results
    if _full_mode():
        biggest = results[-1]
        assert biggest["n"] >= 50_000
        assert biggest["speedup"] >= 10.0, results


#: Ring sizes for the high-diameter lane-engine rows (EXP-2/EXP-5 territory:
#: the families whose BFS phase the direction-optimizing engine targets).
_SMOKE_RING = [2048]
_FULL_RING = [2048, 8192]


def test_lane_engine_high_diameter_speedup():
    """Lane vs scalar on *rings* — the high-diameter family EXP-2/EXP-5 sweep.

    Grid rows alone let a ring-only regression hide (the ROADMAP's last open
    perf item was exactly that gap), so the ring rows are recorded under
    their own ``routing_engine_highdiam`` kind and trend-gated like the grid
    rows.  The warm-speedup structure mirrors :func:`test_lane_engine_speedup`.
    """
    sizes = _FULL_RING if _full_mode() else _SMOKE_RING
    results = []
    for n in sizes:
        graph = generators.cycle_graph(n)
        pairs = _pairs(n)
        scalar_cold, scalar_warm = _measure_engine(graph, pairs, "scalar")
        lane_cold, lane_warm = _measure_engine(graph, pairs, "lane")
        speedup = scalar_warm / lane_warm if lane_warm > 0 else float("inf")
        results.append(
            {
                "n": n,
                "family": "ring",
                "scalar_seconds": round(scalar_warm, 4),
                "lane_seconds": round(lane_warm, 4),
                "speedup": round(speedup, 2),
                "scalar_cold_seconds": round(scalar_cold, 4),
                "lane_cold_seconds": round(lane_cold, 4),
                "cold_speedup": round(
                    scalar_cold / lane_cold if lane_cold > 0 else float("inf"), 2
                ),
            }
        )
        print(
            f"\nrouting engines on ring n={n}: scalar {scalar_warm:.3f}s, "
            f"lane {lane_warm:.3f}s warm ({lane_cold:.3f}s cold), "
            f"speedup {speedup:.1f}x"
        )
    _append_record(
        results,
        benchmark="routing_engine_highdiam",
        config={"num_pairs": _NUM_PAIRS, "trials": _TRIALS, "scheme": "uniform", "family": "ring"},
    )
    assert results[0]["speedup"] >= 2.0, results


def test_next_local_many_speedup():
    """Batched multi-target hop-table builder vs the per-target loop.

    Measures building the ``num_pairs``-target ``next_local`` block on grids
    under both APIs, starting from oracles whose *distance* rows are already
    warm — the exact state ``routing_blocks`` sees after the pair sampler has
    run, and the state the per-target loop historically ran in (its argmin
    pass reused ``distances_to_many`` blocks).  Cold (fresh-oracle) timings
    are recorded alongside for transparency: there the batched call also
    swallows one batched BFS where the loop pays ``k`` single sweeps.

    Exact equality of the tables is asserted here as well — a speedup from a
    wrong table would be worthless.
    """
    sides = _FULL_SIDES if _full_mode() else _SMOKE_SIDES
    results = []
    for side in sides:
        graph = generators.grid_graph([side, side])
        n = graph.num_nodes
        targets = sorted({t for (_, t) in _pairs(n)})

        def _warm_oracle():
            oracle = DistanceOracle(graph)
            oracle.prefetch(targets)
            oracle.distances_to_many(targets)
            return oracle

        # Untimed allocator warm-up: the first batched pass on a fresh
        # process faults in tens of MB of fresh pages (block stacks, the
        # transposed composite buffers), which is a one-off cost the sweep
        # pipeline never pays per estimate.  Both timed paths below then
        # measure the steady state.
        _warm_oracle().next_local_to_many(targets)

        # Best-of-3 on fresh warm oracles: the build is memoised, so each
        # repetition needs its own oracle, and min() sheds allocator noise.
        loop_warm = float("inf")
        loop_tables = None
        for _ in range(3):
            oracle = _warm_oracle()
            t0 = time.perf_counter()
            tables = [oracle.next_local_to(t) for t in targets]
            loop_warm = min(loop_warm, time.perf_counter() - t0)
            loop_tables = tables
        many_warm = float("inf")
        many_block = None
        for _ in range(3):
            oracle = _warm_oracle()
            t0 = time.perf_counter()
            block = oracle.next_local_to_many(targets)
            many_warm = min(many_warm, time.perf_counter() - t0)
            many_block = block

        for row, table in enumerate(loop_tables):
            assert np.array_equal(many_block[row], table), f"table mismatch at n={n}"

        t0 = time.perf_counter()
        cold_loop_oracle = DistanceOracle(graph)
        for t in targets:
            cold_loop_oracle.next_local_to(t)
        loop_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        DistanceOracle(graph).next_local_to_many(targets)
        many_cold = time.perf_counter() - t0

        speedup = loop_warm / many_warm if many_warm > 0 else float("inf")
        results.append(
            {
                "n": n,
                "grid": [side, side],
                "targets": len(targets),
                "loop_seconds": round(loop_warm, 4),
                "many_seconds": round(many_warm, 4),
                "speedup": round(speedup, 2),
                "loop_cold_seconds": round(loop_cold, 4),
                "many_cold_seconds": round(many_cold, 4),
                "cold_speedup": round(
                    loop_cold / many_cold if many_cold > 0 else float("inf"), 2
                ),
            }
        )
        print(
            f"\nnext_local builders at n={n} ({len(targets)} targets): "
            f"loop {loop_warm*1000:.2f}ms, batched {many_warm*1000:.2f}ms, "
            f"speedup {speedup:.2f}x (cold {loop_cold*1000:.1f}ms vs {many_cold*1000:.1f}ms)"
        )
    _append_record(
        results,
        benchmark="next_local_many",
        config={"targets": "distinct pair targets", "scheme": "n/a"},
    )
    # Smoke gate (2k grid): the batched builder must be decisively faster.
    assert results[0]["speedup"] >= 1.8, results
    if _full_mode():
        biggest = results[-1]
        assert biggest["n"] >= 50_000
        # At 50k the numpy batched pass sits at the fancy-index floor and its
        # measurement is dominated by allocator/page-fault state, swinging
        # ~1.4-2.0x run to run on the same code — hence the relaxed 1.3x
        # guard against the batched path outright *losing* to the loop.  The
        # compiled backend is not allocator-bound (one typed pass, no
        # temporaries), so where it is active the gate returns to the
        # original 1.5x bar; tools/check_bench_trend.py watches the
        # trajectory for drift either way.
        gate = 1.5 if kernels.active_backend().compiled else 1.3
        assert biggest["speedup"] >= gate, (gate, results)
