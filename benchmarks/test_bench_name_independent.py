"""Benchmark for EXP-2 — Theorem 1's Ω(√n) lower bound for name-independent schemes."""

import pytest

from benchmarks.conftest import report
from repro.experiments import exp_name_independent


@pytest.mark.benchmark(group="EXP-2")
def test_exp2_name_independent_lower_bound(benchmark, bench_config):
    result = benchmark.pedantic(
        exp_name_independent.run, args=(bench_config,), iterations=1, rounds=1
    )
    report(result)
    for series in result.series:
        if not series.name.startswith("adversarial/"):
            continue
        fit = series.power_law()
        assert fit is not None
        # The adversarial labeling must keep every candidate matrix in the
        # polynomial regime (no polylog escape below the sqrt(n) barrier).
        assert fit.exponent >= 0.3, f"{series.name} escaped the barrier: {fit.summary()}"
