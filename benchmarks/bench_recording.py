"""Shared BENCH_routing.json recorder for the benchmark suite.

Every perf benchmark (routing engines, batched ``next_local`` builders, the
BFS engine's high-diameter rows) appends its measurements to the same
append-only ``BENCH_routing.json`` at the repository root, keyed by a
``benchmark`` kind, so ``tools/check_bench_trend.py`` can gate each kind's
speedup trajectory against the committed baseline and CI can upload one
artifact with the whole perf history.

Each record also stamps the *active kernel backend*
(:func:`repro.graphs.kernels.backend_stats`): results are backend-invariant
but wall-clock is not, so a trajectory mixing numpy- and numba-measured rows
must say which is which for the trend to be interpretable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.graphs import kernels

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_routing.json"


def append_record(results, *, benchmark: str, mode: str, config: dict) -> None:
    """Append one benchmark record, preserving the existing trajectory."""
    data = {"schema_version": 1, "runs": []}
    if RESULTS_PATH.exists():
        try:
            loaded = json.loads(RESULTS_PATH.read_text())
            if isinstance(loaded, dict) and loaded.get("schema_version") == 1:
                data = loaded
        except json.JSONDecodeError:
            pass  # corrupt file: start a fresh trajectory rather than crash
    data["runs"].append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "benchmark": benchmark,
            "mode": mode,
            "kernel_backend": kernels.backend_stats()["active"],
            "config": config,
            "results": results,
        }
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
