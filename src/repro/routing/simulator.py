"""Monte-Carlo estimation of ``E(φ, s, t)`` and of the greedy diameter.

For a fixed (source, target) pair the expected number of greedy steps is over
the randomness of the long-range links only (greedy routing itself is
deterministic).  The estimator therefore:

1. obtains ``dist_G(·, target)`` once per target from a shared
   :class:`~repro.graphs.oracle.DistanceOracle` (one vectorized BFS, memoised
   across pairs, trials and — when the caller passes its own oracle — across
   the whole experiment run),
2. samples long-range links only where routes actually travel: a node's
   contact is drawn when a route visits it — statistically identical to
   sampling all ``n`` links upfront because the links are independent,
3. averages the step counts over trials, and per experiment aggregates over a
   set of pairs (mean = average-case cost, max = greedy-diameter estimate).

Two interchangeable engines drive step 2:

* ``engine="lane"`` (default) — the step-synchronous lane engine of
  :mod:`repro.routing.engine`: every (pair, trial) is a lane in flat numpy
  state arrays and each iteration advances all active lanes at once, with
  contacts drawn in one batched
  :meth:`~repro.core.base.AugmentationScheme.sample_contacts` call per step.
* ``engine="scalar"`` — the historical per-route Python loop over
  :func:`~repro.routing.greedy.greedy_route`, kept as the readable reference
  implementation and for the equivalence tests.

The engines walk identical trajectories when fed the same materialized
contact table (see :func:`repro.routing.engine.materialize_contact_table`;
asserted per lane for every registered scheme) and are statistically
equivalent — not bitwise, their generator streams differ — on the default
lazy-sampling path.

Truncated trials (routes that hit ``max_steps`` before reaching the target)
are *excluded* from the step averages and counted in
``RoutingEstimate.failed_trials`` instead — averaging them in would bias the
mean downward, since a truncated route reports fewer steps than the route
actually needed.  Without a ``max_steps`` budget a failed route can only mean
inconsistent inputs, so it raises ``RuntimeError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.graph import Graph
from repro.graphs.oracle import FAR_DISTANCE, DistanceOracle
from repro.graphs.provider import DistanceProvider
from repro.routing.engine import route_lanes
from repro.routing.greedy import greedy_route
from repro.routing.sampling import extremal_pairs, uniform_pairs
from repro.routing.statistics import SummaryStats, summarize
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive_int

__all__ = [
    "PairEstimate",
    "QueryOutcome",
    "RoutingEstimate",
    "ROUTING_ENGINES",
    "estimate_expected_steps",
    "estimate_greedy_diameter",
    "route_queries",
]

#: Engines accepted by the ``engine=`` keyword (and the CLI ``--engine``).
ROUTING_ENGINES: Tuple[str, ...] = ("lane", "scalar")


@dataclass(frozen=True)
class PairEstimate:
    """Monte-Carlo estimate of ``E(φ, s, t)`` for one pair.

    ``stats`` summarises the *successful* trials only; ``failed_trials``
    counts routes truncated by the ``max_steps`` budget.
    """

    source: int
    target: int
    graph_distance: int
    stats: SummaryStats
    failed_trials: int = 0

    @property
    def mean(self) -> float:
        """Estimated expected number of greedy steps for this pair."""
        return self.stats.mean


@dataclass(frozen=True)
class RoutingEstimate:
    """Aggregate routing estimate over a set of pairs.

    Attributes
    ----------
    pairs:
        Per-pair estimates.
    mean:
        Mean number of steps over every *successful* (pair, trial) sample —
        the average-case routing cost.
    diameter:
        Maximum per-pair mean — the Monte-Carlo estimate of the greedy
        diameter ``max_{s,t} E(φ, s, t)`` restricted to the sampled pairs.
    trials:
        Trials per pair.
    long_link_fraction:
        Fraction of traversed edges that were long-range links (diagnostic).
    failed_trials:
        Total number of trials truncated by ``max_steps`` (0 when no budget
        is set; such trials are excluded from ``mean`` and ``diameter``).
    """

    pairs: List[PairEstimate] = field(default_factory=list)
    mean: float = 0.0
    diameter: float = 0.0
    trials: int = 0
    long_link_fraction: float = 0.0
    failed_trials: int = 0

    @property
    def max_pair(self) -> Optional[PairEstimate]:
        """The pair achieving the diameter estimate."""
        if not self.pairs:
            return None
        return max(self.pairs, key=lambda p: p.mean)

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "diameter": self.diameter,
            "trials": self.trials,
            "num_pairs": len(self.pairs),
            "long_link_fraction": self.long_link_fraction,
            "failed_trials": self.failed_trials,
        }


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one served ``(source, target, seed)`` route query.

    The trajectory behind ``steps``/``success``/``long_links`` is a pure
    function of ``(graph, scheme, seed)`` — counter-based lane sampling, see
    :func:`repro.routing.engine.route_lanes`'s ``lane_seeds`` mode — so the
    same query returns the same outcome no matter how it was batched.
    Malformed or unroutable queries set ``error`` instead of raising: a
    service must answer every query it accepted.
    """

    source: int
    target: int
    seed: int
    steps: int = 0
    success: bool = False
    long_links: int = 0
    graph_distance: int = -1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the query was routable (``error`` is ``None``)."""
        return self.error is None


def route_queries(
    graph: Graph,
    scheme: AugmentationScheme,
    queries: Sequence[Tuple[int, int, int]],
    *,
    oracle: Optional[DistanceProvider] = None,
    max_steps: Optional[int] = None,
    blocks: Optional[tuple] = None,
) -> List[QueryOutcome]:
    """Route a batch of ``(source, target, seed)`` queries, one trial each.

    The serve layer's workhorse: every query becomes one lane with its own
    counter-based seed, the whole batch advances in a single step-synchronous
    sweep, and each outcome is **identical to routing that query alone** with
    the same seed (the trajectory-identity contract).

    Per-query failures (out-of-range indices, unreachable targets) come back
    as :class:`QueryOutcome.error` strings rather than exceptions, so one bad
    query cannot poison a batch.  ``max_steps`` defaults to ``n`` — greedy
    routing strictly decreases the distance each step, so no consistent
    instance can exhaust that budget.

    *blocks* optionally supplies pre-pinned routing blocks as
    ``(dist_block, next_local_block, {target: row})`` — the
    :class:`repro.session.RoutingSession` path; by default the blocks are
    pulled from *oracle* (deduplicated by target).
    """
    if scheme.graph is not graph and not scheme.graph.same_structure(graph):
        raise ValueError("scheme was built for a different graph")
    n = graph.num_nodes
    queries = [(int(s), int(t), int(q)) for (s, t, q) in queries]
    outcomes: List[Optional[QueryOutcome]] = [None] * len(queries)
    valid: List[int] = []
    for i, (s, t, q) in enumerate(queries):
        if not (0 <= s < n):
            outcomes[i] = QueryOutcome(s, t, q, error="source index out of range")
        elif not (0 <= t < n):
            outcomes[i] = QueryOutcome(s, t, q, error="target index out of range")
        else:
            valid.append(i)
    if valid:
        if blocks is None:
            if oracle is None:
                oracle = DistanceOracle(graph)
            uniq, inverse = np.unique(
                np.asarray([queries[i][1] for i in valid], dtype=np.int64),
                return_inverse=True,
            )
            dist_block, next_local_block = oracle.routing_blocks(uniq)
            rows = {i: int(inverse[j]) for j, i in enumerate(valid)}
        else:
            dist_block, next_local_block, row_of = blocks
            rows = {i: int(row_of[queries[i][1]]) for i in valid}
        routable: List[int] = []
        for i in valid:
            s, t, q = queries[i]
            if dist_block[rows[i], s] == FAR_DISTANCE:
                outcomes[i] = QueryOutcome(
                    s, t, q, error="target is not reachable from source"
                )
            else:
                routable.append(i)
        if routable:
            pairs = [(queries[i][0], queries[i][1]) for i in routable]
            lane_seeds = np.asarray(
                [queries[i][2] for i in routable], dtype=np.uint64
            )
            pair_rows = np.asarray([rows[i] for i in routable], dtype=np.int64)
            batch = route_lanes(
                graph,
                scheme,
                pairs,
                trials=1,
                max_steps=n if max_steps is None else max_steps,
                oracle=oracle,
                lane_seeds=lane_seeds,
                blocks=(dist_block, next_local_block, pair_rows),
            )
            for lane, i in enumerate(routable):
                s, t, q = queries[i]
                outcomes[i] = QueryOutcome(
                    source=s,
                    target=t,
                    seed=q,
                    steps=int(batch.steps[lane]),
                    success=bool(batch.success[lane]),
                    long_links=int(batch.long_links[lane]),
                    graph_distance=int(dist_block[rows[i], s]),
                )
    return outcomes  # type: ignore[return-value]


def _route_trials(
    graph: Graph,
    scheme: AugmentationScheme,
    source: int,
    target: int,
    dist_to_target: np.ndarray,
    trials: int,
    rng: np.random.Generator,
    max_steps: Optional[int],
) -> Tuple[List[int], int, int, int]:
    """Run *trials* independent routes for one pair (the scalar engine).

    Returns ``(successful step counts, failed trials, long links, total links)``.

    Contact memoisation is hoisted out of the trial loop into two reusable
    arrays keyed by (trial, node): ``contact_stamp[u]`` records the last trial
    that sampled ``u`` (so no per-trial dict or closure is allocated, and no
    O(n) reset is paid between trials) and ``contact_cache[u]`` holds that
    trial's draw.
    """
    steps: List[int] = []
    failures = 0
    long_links = 0
    total_links = 0
    n = graph.num_nodes
    contact_stamp = np.zeros(n, dtype=np.int64)  # 0 = never sampled
    contact_cache = np.full(n, NO_CONTACT, dtype=np.int64)
    trial_id = 0

    def contact_of(u: int) -> Optional[int]:
        if contact_stamp[u] != trial_id:
            contact_stamp[u] = trial_id
            sampled = scheme.sample_contact(u, rng)
            contact_cache[u] = NO_CONTACT if sampled is None else sampled
        cached = contact_cache[u]
        return None if cached == NO_CONTACT else int(cached)

    for trial_id in range(1, trials + 1):
        result = greedy_route(
            graph,
            dist_to_target,
            source,
            target,
            contact_of,
            max_steps=max_steps,
        )
        if result.success:
            steps.append(result.steps)
        else:
            if max_steps is None:
                raise RuntimeError(
                    f"greedy route {source}->{target} failed without a max_steps budget; "
                    "the distance array and graph are inconsistent"
                )
            failures += 1
        long_links += result.long_links_used
        total_links += result.steps
    return steps, failures, long_links, total_links


def estimate_expected_steps(
    graph: Graph,
    scheme: AugmentationScheme,
    pairs: Sequence[Tuple[int, int]],
    *,
    trials: int = 16,
    seed: RngLike = None,
    max_steps: Optional[int] = None,
    oracle: Optional[DistanceProvider] = None,
    engine: str = "lane",
) -> RoutingEstimate:
    """Estimate ``E(φ, s, t)`` for every pair in *pairs* and aggregate.

    Parameters
    ----------
    graph, scheme:
        The augmented-graph model ``(G, φ)``.
    pairs:
        Ordered (source, target) pairs to route.
    trials:
        Independent long-link samplings per pair.
    seed:
        Experiment-level seed.  The scalar engine derives one stream per pair;
        the lane engine consumes a single stream with batched draws — both
        deterministic given the seed, but not bitwise identical to each other.
    max_steps:
        Safety bound forwarded to :func:`greedy_route`.  Trials that exhaust
        it are counted in ``failed_trials`` and excluded from the means; a
        pair whose trials *all* fail raises ``ValueError`` (its expected cost
        cannot be estimated from the budget).
    oracle:
        Optional shared :class:`~repro.graphs.provider.DistanceProvider`
        serving the per-target distance arrays (always from the exact tier —
        trajectories need genuine BFS rows).  Pass one provider across calls
        (and to :class:`~repro.core.ball_scheme.BallScheme`) to reuse BFS
        work for an entire experiment; by default a private exact oracle is
        created per call.
    engine:
        ``"lane"`` (default, the vectorized step-synchronous engine of
        :mod:`repro.routing.engine`) or ``"scalar"`` (the per-route Python
        reference loop).
    """
    if engine not in ROUTING_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {', '.join(ROUTING_ENGINES)}"
        )
    if scheme.graph is not graph and not scheme.graph.same_structure(graph):
        raise ValueError("scheme was built for a different graph")
    trials = check_positive_int(trials, "trials")
    pairs = list(pairs)
    if not pairs:
        raise ValueError("need at least one (source, target) pair")
    if oracle is None:
        oracle = DistanceOracle(graph)
    elif oracle.graph is not graph and not oracle.graph.same_structure(graph):
        raise ValueError("oracle was built for a different graph")
    if engine == "lane":
        return _estimate_lane(graph, scheme, pairs, trials, seed, max_steps, oracle)
    return _estimate_scalar(graph, scheme, pairs, trials, seed, max_steps, oracle)


def _estimate_scalar(
    graph: Graph,
    scheme: AugmentationScheme,
    pairs: List[Tuple[int, int]],
    trials: int,
    seed: RngLike,
    max_steps: Optional[int],
    oracle: DistanceProvider,
) -> RoutingEstimate:
    """The historical per-route loop (``engine="scalar"``)."""
    rngs = spawn_rngs(seed, len(pairs))
    oracle.prefetch(target for (_, target) in pairs)
    estimates: List[PairEstimate] = []
    all_steps: List[int] = []
    failed_trials = 0
    long_links = 0
    total_links = 0
    for (source, target), rng in zip(pairs, rngs):
        dist_to_target = oracle.distances_to(target)
        steps, pair_failures, pair_long, pair_total = _route_trials(
            graph, scheme, source, target, dist_to_target, trials, rng, max_steps
        )
        if not steps:
            raise ValueError(
                f"all {trials} trials for pair ({source}, {target}) exceeded "
                f"max_steps={max_steps}; raise the budget to estimate this pair"
            )
        estimates.append(
            PairEstimate(
                source=source,
                target=target,
                graph_distance=int(dist_to_target[source]),
                stats=summarize(steps),
                failed_trials=pair_failures,
            )
        )
        all_steps.extend(steps)
        failed_trials += pair_failures
        long_links += pair_long
        total_links += pair_total
    overall = summarize(all_steps)
    return RoutingEstimate(
        pairs=estimates,
        mean=overall.mean,
        diameter=max(p.mean for p in estimates),
        trials=trials,
        long_link_fraction=(long_links / total_links) if total_links else 0.0,
        failed_trials=failed_trials,
    )


def _estimate_lane(
    graph: Graph,
    scheme: AugmentationScheme,
    pairs: List[Tuple[int, int]],
    trials: int,
    seed: RngLike,
    max_steps: Optional[int],
    oracle: DistanceProvider,
) -> RoutingEstimate:
    """Fold one lane-engine batch into the per-pair estimate structure."""
    batch = route_lanes(
        graph,
        scheme,
        pairs,
        trials=trials,
        seed=seed,
        max_steps=max_steps,
        oracle=oracle,
    )
    estimates: List[PairEstimate] = []
    all_steps: List[int] = []
    for i, (source, target) in enumerate(pairs):
        lanes = batch.pair_lanes(i)
        ok = batch.success[lanes]
        steps = batch.steps[lanes][ok].tolist()
        pair_failures = int(np.count_nonzero(~ok))
        if not steps:
            raise ValueError(
                f"all {trials} trials for pair ({source}, {target}) exceeded "
                f"max_steps={max_steps}; raise the budget to estimate this pair"
            )
        estimates.append(
            PairEstimate(
                source=source,
                target=target,
                graph_distance=int(oracle.distances_to(target)[source]),
                stats=summarize(steps),
                failed_trials=pair_failures,
            )
        )
        all_steps.extend(steps)
    overall = summarize(all_steps)
    total_links = int(batch.steps.sum())
    return RoutingEstimate(
        pairs=estimates,
        mean=overall.mean,
        diameter=max(p.mean for p in estimates),
        trials=trials,
        long_link_fraction=(int(batch.long_links.sum()) / total_links) if total_links else 0.0,
        failed_trials=int(np.count_nonzero(~batch.success)),
    )


def estimate_greedy_diameter(
    graph: Graph,
    scheme: AugmentationScheme,
    *,
    num_pairs: int = 16,
    trials: int = 16,
    seed: RngLike = None,
    pair_strategy: str = "extremal",
    max_steps: Optional[int] = None,
    oracle: Optional[DistanceProvider] = None,
    engine: str = "lane",
    pair_seed: Optional[int] = None,
) -> RoutingEstimate:
    """Estimate the greedy diameter ``diam(G, φ)`` by sampling hard pairs.

    ``pair_strategy`` is ``"extremal"`` (default, diameter-biased pairs) or
    ``"uniform"``.  Because only a sample of pairs is routed the result is a
    lower estimate of the true maximum, which is the standard Monte-Carlo
    treatment for greedy diameters; the scaling exponents reported by the
    experiments are unaffected.  *oracle* is forwarded both to
    :func:`estimate_expected_steps` and to the extremal pair sampler, whose
    per-source BFS sweeps then double as the routing phase's target arrays.

    ``pair_seed`` pins the pair-sampling stream independently of the
    Monte-Carlo *seed*: callers that route several schemes — or several
    *experiments* — over one graph instance pass the same ``pair_seed`` so
    every estimate walks the identical pair set (turning its BFS sweeps into
    cache hits across the whole batch) while the trial randomness still
    varies with *seed*.  Left ``None``, both streams derive from *seed* as
    before.
    """
    rng = ensure_rng(seed)
    derived_pair_seed = int(rng.integers(0, 2**31 - 1))
    routing_seed = int(rng.integers(0, 2**31 - 1))
    if pair_seed is None:
        pair_seed = derived_pair_seed
    pair_seed = int(pair_seed)
    if pair_strategy == "extremal":
        if oracle is not None and oracle.graph is not graph and not oracle.graph.same_structure(graph):
            raise ValueError("oracle was built for a different graph")
        pairs = extremal_pairs(graph, num_pairs, seed=pair_seed, oracle=oracle)
    elif pair_strategy == "uniform":
        pairs = uniform_pairs(graph, num_pairs, seed=pair_seed)
    else:
        raise ValueError(f"unknown pair_strategy {pair_strategy!r}")
    return estimate_expected_steps(
        graph,
        scheme,
        pairs,
        trials=trials,
        seed=routing_seed,
        max_steps=max_steps,
        oracle=oracle,
        engine=engine,
    )
