"""Greedy routing engine and Monte-Carlo estimation of the greedy diameter.

Greedy routing (Kleinberg's decentralised search, as defined in Section 1 of
the paper) forwards a message at node ``u`` to the neighbour — among the local
neighbours of ``u`` *and* ``u``'s long-range contact — that is closest to the
target according to the distance in the underlying graph ``G``.

``E(φ, s, t)`` is the expected number of steps over the random long-range
links and ``diam(G, φ) = max_{s,t} E(φ, s, t)`` is the greedy diameter; the
simulator estimates both by Monte-Carlo over sampled pairs and trials, with
the long-range links re-sampled lazily per trial.
"""

from repro.routing.greedy import greedy_route, RouteResult
from repro.routing.engine import LaneBatchResult, materialize_contact_table, route_lanes
from repro.routing.simulator import (
    estimate_expected_steps,
    estimate_greedy_diameter,
    PairEstimate,
    RoutingEstimate,
    ROUTING_ENGINES,
)
from repro.routing.sampling import uniform_pairs, extremal_pairs, all_pairs
from repro.routing.statistics import summarize, SummaryStats

__all__ = [
    "greedy_route",
    "RouteResult",
    "LaneBatchResult",
    "route_lanes",
    "materialize_contact_table",
    "estimate_expected_steps",
    "estimate_greedy_diameter",
    "PairEstimate",
    "RoutingEstimate",
    "ROUTING_ENGINES",
    "uniform_pairs",
    "extremal_pairs",
    "all_pairs",
    "summarize",
    "SummaryStats",
]
