"""Source/target pair samplers.

The greedy diameter is a maximum over all pairs; estimating it well means
including *hard* pairs.  Three samplers are provided:

* :func:`uniform_pairs` — uniform random distinct pairs (estimates the
  average-case routing cost),
* :func:`extremal_pairs` — pairs biased towards large distances: the
  double-sweep pseudo-peripheral pair plus pairs of far-apart random nodes
  (estimates the greedy *diameter*, the quantity the theorems bound),
* :func:`all_pairs` — every ordered pair (tiny graphs / exact tests only).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.distances import bfs_distances, double_sweep_diameter_lower_bound
from repro.graphs.graph import Graph
from repro.graphs.provider import DistanceProvider
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["uniform_pairs", "extremal_pairs", "all_pairs"]


def uniform_pairs(graph: Graph, count: int, seed: RngLike = None) -> List[Tuple[int, int]]:
    """*count* uniformly random ordered pairs of distinct nodes."""
    count = check_positive_int(count, "count")
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes to sample pairs")
    rng = ensure_rng(seed)
    pairs: List[Tuple[int, int]] = []
    while len(pairs) < count:
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s != t:
            pairs.append((s, t))
    return pairs


def extremal_pairs(
    graph: Graph,
    count: int,
    seed: RngLike = None,
    *,
    oracle: Optional[DistanceProvider] = None,
) -> List[Tuple[int, int]]:
    """*count* pairs biased towards the diameter of the graph.

    The first pair is the double-sweep pseudo-peripheral pair (exact diameter
    endpoints on trees); the remaining pairs take a random source and a node
    at maximal distance from it.

    On disconnected graphs the sampler stays within components: a draw whose
    farthest node is the source itself (an isolated node, or a singleton
    component) is rejected, in *both* the forward and the reverse direction —
    no ``(s, s)`` self-pair is ever emitted.  A graph with no edges admits no
    valid pair and raises ``ValueError``.

    *oracle* routes the per-source sweeps through a shared
    :class:`~repro.graphs.provider.DistanceProvider`'s **query tier**
    (:meth:`~repro.graphs.provider.DistanceProvider.query_distances_from`) —
    including the initial double sweep.  On an exact provider that is the
    accounted BFS cache: a warmed oracle serves the whole sampling pass
    without a single fresh BFS, the sampled sources become routing *targets*
    of the pairs it emits (each ``(s, t)`` is mirrored as ``(t, s)``), so the
    same arrays are cache hits during simulation, and a later
    identically-seeded sampling run (another experiment over the same
    instance) is pure hits.  On a landmark provider the whole pass rides the
    sketch — no per-source BFS at all; a draw whose sketch row offers no
    positive-distance partner is rejected the same way a self-pair is.
    """
    count = check_positive_int(count, "count")
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes to sample pairs")
    if graph.num_edges == 0:
        raise ValueError("graph has no edges; every pair would be a self-pair")
    rng = ensure_rng(seed)
    pairs: List[Tuple[int, int]] = []
    start = int(rng.integers(0, n))
    if oracle is not None:
        # Provider-backed double sweep: same argmax tie-breaking as
        # double_sweep_diameter_lower_bound, but both rows come from the
        # query tier (exact: cached BFS; landmark: the sketch).
        a = int(np.argmax(oracle.query_distances_from(start)))
        b = int(np.argmax(oracle.query_distances_from(a)))
    else:
        a, b, _ = double_sweep_diameter_lower_bound(graph, start=start)
    if a != b:
        pairs.append((a, b))
    while len(pairs) < count:
        s = int(rng.integers(0, n))
        dist = (
            oracle.query_distances_from(s) if oracle is not None else bfs_distances(graph, s)
        )
        t = int(np.argmax(dist))
        if t == s or dist[t] <= 0:
            # s is isolated (or a singleton component): no valid partner.
            # The <= 0 guard additionally rejects sketch rows whose best
            # entry is UNREACHABLE (a component no pivot covers); on exact
            # rows it never fires beyond the t == s case.
            continue
        pairs.append((s, t))
        if len(pairs) < count:
            # Also include the reverse direction: greedy routing is not symmetric.
            pairs.append((t, s))
    return pairs[:count]


def all_pairs(graph: Graph) -> List[Tuple[int, int]]:
    """Every ordered pair of distinct nodes (use only on small graphs)."""
    n = graph.num_nodes
    return [(s, t) for s in range(n) for t in range(n) if s != t]
