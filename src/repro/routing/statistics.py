"""Summary statistics for Monte-Carlo routing estimates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["SummaryStats", "summarize", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of a sample of route lengths."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int
    ci95_low: float
    ci95_high: float

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": self.count,
            "ci95_low": self.ci95_low,
            "ci95_high": self.ci95_high,
        }


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Summary of *samples* with a normal-approximation 95% CI on the mean."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = 1.96 * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return SummaryStats(
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
        ci95_low=mean - half,
        ci95_high=mean + half,
    )


def bootstrap_mean_ci(
    samples: Sequence[float],
    *,
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: RngLike = None,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for the mean of *samples*."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    rng = ensure_rng(seed)
    means = np.empty(num_resamples)
    for i in range(num_resamples):
        resample = rng.choice(arr, size=arr.size, replace=True)
        means[i] = resample.mean()
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))
