"""Summary statistics for Monte-Carlo routing estimates.

The 95% confidence interval in :func:`summarize` uses the **Student-t**
quantile for the sample's actual degrees of freedom, not the asymptotic
z-value 1.96: at the sweep pipeline's default ``trials=16`` the correct
multiplier is ``t_{0.975, 15} ≈ 2.131``, so the old normal approximation made
every reported interval ~8% too narrow (and much worse for the quick-sweep
configs with a handful of trials).  The quantile is computed in pure
numpy/python — a bisection on the regularized incomplete beta function — so
the library keeps its numpy-only dependency footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["SummaryStats", "summarize", "bootstrap_mean_ci", "student_t_quantile"]


def _beta_cont_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's algorithm)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` (numpy-only)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # Use the continued fraction on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cont_fraction(a, b, x) / a
    return 1.0 - front * _beta_cont_fraction(b, a, 1.0 - x) / b


@lru_cache(maxsize=None)
def student_t_quantile(p: float, df: int) -> float:
    """Two-sided-friendly Student-t quantile ``t`` with ``P(T <= t) = p``.

    Pure numpy/python inversion of the t CDF (regularized incomplete beta +
    bisection), accurate to ~1e-10 — e.g. ``student_t_quantile(0.975, 15)``
    is 2.1314, the multiplier :func:`summarize` needs at ``trials = 16``.
    Only ``p >= 0.5`` is supported (confidence-interval use).
    """
    if not 0.5 <= p < 1.0:
        raise ValueError("p must lie in [0.5, 1)")
    df = int(df)
    if df < 1:
        raise ValueError("df must be at least 1")
    if p == 0.5:
        return 0.0

    def cdf(t: float) -> float:
        # P(T <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0.
        return 1.0 - 0.5 * _betainc(df / 2.0, 0.5, df / (df + t * t))

    lo, hi = 0.0, 2.0
    while cdf(hi) < p:  # bracket the quantile (heavy tails at df=1 need room)
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of a sample of route lengths."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int
    ci95_low: float
    ci95_high: float

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": self.count,
            "ci95_low": self.ci95_low,
            "ci95_high": self.ci95_high,
        }


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Summary of *samples* with a Student-t 95% CI on the mean.

    The half-width is ``t_{0.975, n-1} * std / sqrt(n)`` — the exact small-n
    interval under the normality approximation, converging to the familiar
    ``1.96`` multiplier as ``n`` grows.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    if arr.size > 1:
        half = student_t_quantile(0.975, int(arr.size) - 1) * std / math.sqrt(arr.size)
    else:
        half = 0.0
    return SummaryStats(
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
        ci95_low=mean - half,
        ci95_high=mean + half,
    )


#: Cap on the ``num_resamples × n`` index matrix one batched bootstrap draw
#: materialises; larger problems fall back to chunked draws (same stream).
_BOOTSTRAP_BATCH_ELEMENTS: int = 8_000_000


def bootstrap_mean_ci(
    samples: Sequence[float],
    *,
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: RngLike = None,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for the mean of *samples*.

    The resampling runs as one batched draw — a single
    ``(num_resamples, n)`` integer matrix and one vectorized row-mean —
    instead of a Python loop of ``num_resamples`` generator round-trips
    (~30x fewer numpy calls at the default 1000 resamples).  Chunked when the
    index matrix would be unreasonably large; the generator stream is
    consumed identically either way, so results are seed-deterministic.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    rng = ensure_rng(seed)
    chunk = max(1, _BOOTSTRAP_BATCH_ELEMENTS // max(1, int(arr.size)))
    means = np.empty(num_resamples)
    for start in range(0, num_resamples, chunk):
        stop = min(start + chunk, num_resamples)
        idx = rng.integers(0, arr.size, size=(stop - start, arr.size))
        means[start:stop] = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))
