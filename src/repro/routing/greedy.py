"""A single greedy route through an augmented graph.

The routing decision at the current node ``u`` (Section 1 of the paper):

1. consider every local neighbour of ``u`` in ``G`` plus ``u``'s long-range
   contact (if any),
2. forward to the candidate closest to the target ``t`` according to
   ``dist_G(·, t)``.

Nodes know the distances of the *underlying* graph only; they are unaware of
other nodes' long-range links.  Because ``G`` is connected, some local
neighbour is strictly closer to ``t`` than ``u``, so the distance to the
target strictly decreases every step and the route always terminates within
``dist_G(s, t) ≤ n`` steps — the long-range links can only shorten it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graphs.distances import UNREACHABLE
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = ["RouteResult", "greedy_route", "ContactProvider"]

#: Callable returning the long-range contact of a node for the current trial
#: (or ``None`` when the node has no long-range link).
ContactProvider = Callable[[int], Optional[int]]


@dataclass
class RouteResult:
    """Outcome of one greedy route.

    Attributes
    ----------
    source, target:
        Endpoints of the route.
    steps:
        Number of edges traversed (local or long-range).
    path:
        The sequence of visited nodes, starting at *source* and ending at
        *target* when the route succeeded.
    long_links_used:
        How many steps used a long-range link.
    success:
        Whether the target was reached within the step budget.
    """

    source: int
    target: int
    steps: int
    path: List[int] = field(default_factory=list)
    long_links_used: int = 0
    success: bool = True

    @property
    def local_links_used(self) -> int:
        """Number of steps that used an edge of the underlying graph."""
        return self.steps - self.long_links_used


def greedy_route(
    graph: Graph,
    dist_to_target: np.ndarray,
    source: int,
    target: int,
    contact_of: ContactProvider,
    *,
    max_steps: Optional[int] = None,
    record_path: bool = False,
) -> RouteResult:
    """Route greedily from *source* to *target*.

    Parameters
    ----------
    graph:
        Underlying graph ``G``.
    dist_to_target:
        Distance array ``dist_G(·, target)`` (one BFS from the target),
        shared across every route towards the same target.
    source, target:
        Endpoints; *target* must be reachable from *source*.
    contact_of:
        Provider of long-range contacts for this trial (typically a memoising
        closure around ``scheme.sample_contact``).
    max_steps:
        Safety bound (default ``n``); exceeded only if the inputs are
        inconsistent.
    record_path:
        When true, the visited nodes are recorded in the result.
    """
    n = graph.num_nodes
    source = check_node_index(source, n, "source")
    target = check_node_index(target, n, "target")
    dist_to_target = np.asarray(dist_to_target)
    if dist_to_target.shape != (n,):
        raise ValueError("dist_to_target must have one entry per node")
    if dist_to_target[source] == UNREACHABLE:
        raise ValueError("target is not reachable from source")
    if max_steps is None:
        max_steps = n
    indptr = graph.indptr
    indices = graph.indices

    current = source
    steps = 0
    long_used = 0
    path: List[int] = [source] if record_path else []
    while current != target:
        if steps >= max_steps:
            return RouteResult(
                source=source,
                target=target,
                steps=steps,
                path=path,
                long_links_used=long_used,
                success=False,
            )
        current_dist = dist_to_target[current]
        best_node = -1
        best_dist = current_dist
        # Local neighbours.
        for v in indices[indptr[current]: indptr[current + 1]]:
            dv = dist_to_target[v]
            if dv != UNREACHABLE and dv < best_dist:
                best_dist = dv
                best_node = int(v)
        # Long-range contact: preferred on ties with the best local candidate
        # (at equal distance it makes no difference to the step count), but it
        # must still bring us strictly closer than the current node.
        contact = contact_of(current)
        used_long = False
        if contact is not None and contact != current:
            dc = dist_to_target[contact]
            if dc != UNREACHABLE and dc < current_dist and dc <= best_dist:
                best_dist = dc
                best_node = int(contact)
                used_long = True
        if best_node < 0:
            # Cannot make progress: only possible on inconsistent inputs.
            return RouteResult(
                source=source,
                target=target,
                steps=steps,
                path=path,
                long_links_used=long_used,
                success=False,
            )
        current = best_node
        steps += 1
        if used_long:
            long_used += 1
        if record_path:
            path.append(current)
    return RouteResult(
        source=source,
        target=target,
        steps=steps,
        path=path,
        long_links_used=long_used,
        success=True,
    )
