"""Step-synchronous lane engine for Monte-Carlo greedy routing.

The scalar estimator advances one (pair, trial) route one step at a time
through Python (`greedy_route`), which made the routing phase the last
scalar hot path after the frontier-BFS PR vectorized every distance
computation.  This module applies the same level-synchronous trick to the
routes themselves: every (pair, trial) combination is a **lane** in flat
numpy state arrays, and one iteration of the engine advances *all* active
lanes by one greedy step.

What makes the greedy step fully vectorizable is that, given the distance
array ``dist_G(·, t)``, the best *local* next hop of every node is
deterministic — it does not depend on the trial's random long-range links.
The per-target pointer table ``next_local[u]`` (first CSR-order neighbour of
``u`` at minimum distance, exactly the candidate ``greedy_route`` scans to)
is precomputed for *all* of a batch's targets in one transposed
composite-key pass (:meth:`DistanceOracle.next_local_to_many`, via
``routing_blocks``) and cached on the shared
:class:`~repro.graphs.oracle.DistanceOracle` — with the
:class:`~repro.graphs.store.GraphStore` threading one oracle through every
experiment that sweeps the instance, the tables are built once per graph,
not once per (experiment, scheme).  A lane step then reduces to elementwise
numpy arithmetic across thousands of lanes:

1. gather each active lane's current distance and precomputed local hop,
2. draw every lane's long-range contact in one *batched* call
   (:meth:`~repro.core.base.AugmentationScheme.sample_contacts`),
3. compare the contact's distance against the local hop's (the long link is
   preferred on ties but must strictly improve on the current node — the same
   rule ``greedy_route`` documents),
4. advance, stamp arrivals, retire exhausted lanes.

Sampling correctness
--------------------
The scalar engine memoises each trial's contacts lazily (a node's link is
drawn on first visit and reused on revisits).  Greedy routing strictly
decreases the distance to the target at every step, so **a route can never
revisit a node** — within one trial each node's contact is drawn at most
once, and drawing a fresh contact per (lane, step) is *exactly* the same
distribution.  The memoisation table therefore only matters when the caller
wants reproducible trajectories across engines: :func:`materialize_contact_table`
builds the lane-indexed table ``contacts[lane, node]`` up front, and both
engines consume it verbatim — the equivalence tests assert identical step
counts, long-link counts and success flags per lane, for every registered
scheme.

Randomness: the engine consumes one generator for the whole batch (one
batched draw per step), so its stream differs from the scalar engine's
per-pair streams.  Given the same seed the engine is deterministic;
against the scalar engine it is statistically equivalent, not bitwise
(the seeded parity tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.graph import Graph
from repro.graphs.oracle import FAR_DISTANCE, DistanceOracle
from repro.graphs.provider import DistanceProvider
from repro.utils.counterrng import lane_step_uniforms
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["LaneBatchResult", "route_lanes", "materialize_contact_table"]

#: The oracle's unreachable sentinel (larger than any real distance); the
#: routing blocks arrive already masked with it.
_FAR: int = FAR_DISTANCE


@dataclass(frozen=True)
class LaneBatchResult:
    """Outcome of one lane-engine batch: ``num_pairs x trials`` routes.

    Lane ``l`` is trial ``l % trials`` of pair ``l // trials``.  ``steps``
    counts edges traversed (partial for failed lanes, exactly like the scalar
    ``RouteResult``), ``long_links`` how many of them used the long-range
    contact.
    """

    steps: np.ndarray
    success: np.ndarray
    long_links: np.ndarray
    pair_index: np.ndarray
    trials: int

    @property
    def num_lanes(self) -> int:
        return int(self.steps.size)

    def pair_lanes(self, pair: int) -> slice:
        """Slice selecting the lanes of *pair* (its trials, in order)."""
        return slice(pair * self.trials, (pair + 1) * self.trials)


def materialize_contact_table(
    scheme: AugmentationScheme, num_lanes: int, rng: RngLike = None
) -> np.ndarray:
    """Eagerly sample a full ``(num_lanes, n)`` lane-indexed contact table.

    Row ``l`` is one independent draw of every node's long-range link — the
    links trial ``l`` would reveal lazily.  Feeding the same table to the lane
    engine and to the scalar reference makes their trajectories identical,
    which is how the equivalence tests pin the engines to each other.  (At
    ``O(num_lanes * n)`` memory this is for tests and small graphs; the
    engine's default lazy path samples only the nodes routes actually visit.)
    """
    num_lanes = check_positive_int(num_lanes, "num_lanes")
    generator = ensure_rng(rng)
    n = scheme.graph.num_nodes
    nodes = np.broadcast_to(np.arange(n, dtype=np.int64), (num_lanes, n))
    return scheme.sample_contacts(nodes, generator)


def _as_pair_arrays(
    graph: Graph, pairs: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    sources = np.asarray([p[0] for p in pairs], dtype=np.int64)
    targets = np.asarray([p[1] for p in pairs], dtype=np.int64)
    for arr, what in ((sources, "source"), (targets, "target")):
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError(f"{what} index out of range")
    return sources, targets


def route_lanes(
    graph: Graph,
    scheme: AugmentationScheme,
    pairs: Sequence[Tuple[int, int]],
    *,
    trials: int,
    seed: RngLike = None,
    max_steps: Optional[int] = None,
    oracle: Optional[DistanceProvider] = None,
    contact_table: Optional[np.ndarray] = None,
    lane_seeds: Optional[np.ndarray] = None,
    blocks: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
) -> LaneBatchResult:
    """Route ``len(pairs) * trials`` greedy lanes step-synchronously.

    Parameters
    ----------
    graph, scheme:
        The augmented-graph model ``(G, φ)``.
    pairs:
        Ordered (source, target) pairs; lane ``l`` routes pair
        ``l // trials``.
    trials:
        Independent long-link samplings per pair (lanes per pair).
    seed:
        Seed / generator for the whole batch (one stream, batched draws).
    max_steps:
        Per-route step budget, as in :func:`~repro.routing.greedy.greedy_route`
        (default ``n``).  Without an explicit budget a failed lane means
        inconsistent inputs and raises ``RuntimeError``.
    oracle:
        Shared :class:`~repro.graphs.provider.DistanceProvider`; the engine
        pulls one distance row and one ``next_local`` table per pair through
        its *exact tier* — greedy's strict-``<`` comparisons need genuine BFS
        rows in every ``distance_mode`` (a private exact oracle is created
        when omitted).
    contact_table:
        Optional materialized ``(num_lanes, n)`` table from
        :func:`materialize_contact_table`; lane ``l`` at node ``u`` then uses
        ``contact_table[l, u]`` instead of drawing fresh contacts — the
        reproducible-trajectory mode of the equivalence contract.
    lane_seeds:
        Optional ``uint64`` array of ``num_lanes`` per-lane seeds switching
        the engine to **counter-based sampling**: the contacts lane ``l``
        draws at step ``s`` are a pure hash of ``(lane_seeds[l], s)``
        (:func:`repro.utils.counterrng.lane_step_uniforms` feeding
        :meth:`~repro.core.base.AugmentationScheme.sample_contacts_from_uniforms`),
        so the lane's trajectory depends only on ``(graph, scheme, seed)`` —
        **not** on which other lanes share the batch.  This is the serve
        layer's trajectory-identity mode; mutually exclusive with
        ``contact_table`` (and ``seed`` is then unused).
    blocks:
        Optional pre-resolved ``(dist_block, next_local_block, pair_rows)``
        triple: ``pair_rows[i]`` is the block row holding pair ``i``'s
        target, letting sessions that pin long-lived blocks bypass the
        oracle's single-slot cache.  By default the engine deduplicates the
        batch's targets and pulls one block row per *distinct* target from
        the oracle.
    """
    if scheme.graph is not graph and not scheme.graph.same_structure(graph):
        raise ValueError("scheme was built for a different graph")
    trials = check_positive_int(trials, "trials")
    pairs = list(pairs)
    if not pairs:
        raise ValueError("need at least one (source, target) pair")
    if oracle is None:
        oracle = DistanceOracle(graph)
    elif oracle.graph is not graph and not oracle.graph.same_structure(graph):
        raise ValueError("oracle was built for a different graph")
    n = graph.num_nodes
    num_pairs = len(pairs)
    num_lanes = num_pairs * trials
    sources, targets = _as_pair_arrays(graph, pairs)
    if contact_table is not None:
        if lane_seeds is not None:
            raise ValueError("contact_table and lane_seeds are mutually exclusive")
        contact_table = np.asarray(contact_table, dtype=np.int64)
        if contact_table.shape != (num_lanes, n):
            raise ValueError(
                f"contact_table must have shape (num_lanes, n) = ({num_lanes}, {n})"
            )
    if lane_seeds is not None:
        lane_seeds = np.ascontiguousarray(lane_seeds, dtype=np.uint64)
        if lane_seeds.shape != (num_lanes,):
            raise ValueError(
                f"lane_seeds must have shape (num_lanes,) = ({num_lanes},)"
            )
        uniform_rows = max(1, int(type(scheme).uniforms_per_contact))

    # Per-pair distance rows (sentinel-masked) and local-hop tables, all
    # through the shared oracle: one batched frontier sweep for the missing
    # targets, one cached argmin pass per distinct target, and a single-slot
    # block cache so repeated estimates over the same targets (e.g. every
    # scheme of an experiment cell) skip the stacking entirely.  The batch's
    # targets are deduplicated first — one block row per *distinct* target —
    # so serve batches full of repeated targets don't refill k near-identical
    # rows.  The blocks are consumed through flat ``row * n + node`` keys,
    # like the frontier engine's batched BFS.
    if blocks is None:
        uniq_targets, pair_rows = np.unique(targets, return_inverse=True)
        dist_block, next_local_block = oracle.routing_blocks(uniq_targets)
    else:
        dist_block, next_local_block, pair_rows = blocks
        pair_rows = np.ascontiguousarray(pair_rows, dtype=np.int64)
        if pair_rows.shape != (num_pairs,):
            raise ValueError(f"pair_rows must have shape (num_pairs,) = ({num_pairs},)")
        if dist_block.ndim != 2 or dist_block.shape[1] != n or (
            next_local_block.shape != dist_block.shape
        ):
            raise ValueError("blocks must be (k, n) dist/next_local stacks")
        if pair_rows.size and (
            pair_rows.min() < 0 or pair_rows.max() >= dist_block.shape[0]
        ):
            raise ValueError("pair_rows index out of range for the supplied blocks")
    flat_dist = np.ascontiguousarray(dist_block).reshape(-1)
    flat_local = np.ascontiguousarray(next_local_block).reshape(-1)
    unreachable = dist_block[pair_rows, sources] == _FAR
    if np.any(unreachable):
        bad = int(np.nonzero(unreachable)[0][0])
        raise ValueError(
            f"target is not reachable from source for pair {tuple(pairs[bad])}"
        )

    # Flat lane state.  Lane l = trial l % trials of pair l // trials.  The
    # loop keeps only *active* lanes (ids/base/cur/spent compacted in lock
    # step) and scatters results into the full-size arrays as lanes retire.
    steps = np.zeros(num_lanes, dtype=np.int64)
    long_links = np.zeros(num_lanes, dtype=np.int64)
    success = np.zeros(num_lanes, dtype=bool)
    ids = np.arange(num_lanes, dtype=np.int64)
    base = np.repeat(np.asarray(pair_rows, dtype=np.int64) * n, trials)
    cur = np.repeat(sources, trials)
    tgt = np.repeat(targets, trials)
    spent = np.zeros(num_lanes, dtype=np.int64)
    used = np.zeros(num_lanes, dtype=np.int64)
    seeds = lane_seeds  # compacted alongside the lane state (or None)
    arrived = cur == tgt  # degenerate (s == t) lanes arrive in 0 steps
    if np.any(arrived):
        success[ids[arrived]] = True
        keep = ~arrived
        ids, base, cur, tgt, spent, used = (
            a[keep] for a in (ids, base, cur, tgt, spent, used)
        )
        if seeds is not None:
            seeds = seeds[keep]
    generator = ensure_rng(seed)
    budget = n if max_steps is None else int(max_steps)

    while ids.size:
        # Budget check first, as in greedy_route: a lane that has spent its
        # whole budget without arriving fails *before* taking another step.
        over = spent >= budget
        if np.any(over):
            failed = over  # success stays False; steps/long were scattered
            steps[ids[failed]] = spent[failed]
            long_links[ids[failed]] = used[failed]
            keep = ~failed
            ids, base, cur, tgt, spent, used = (
                a[keep] for a in (ids, base, cur, tgt, spent, used)
            )
            if seeds is not None:
                seeds = seeds[keep]
            if not ids.size:
                break
        keys = base + cur
        dist_cur = flat_dist.take(keys)
        local_hop = flat_local.take(keys)
        if contact_table is not None:
            contacts = contact_table[ids, cur]
        elif seeds is not None:
            uniforms = lane_step_uniforms(seeds, spent, uniform_rows)
            contacts = scheme.sample_contacts_from_uniforms(cur, uniforms)
        else:
            contacts = scheme.sample_contacts(cur, generator)
        valid = (contacts != NO_CONTACT) & (contacts != cur)
        has_local = local_hop >= 0
        dist_local = np.where(
            has_local, flat_dist.take(base + np.where(has_local, local_hop, 0)), _FAR
        )
        dist_contact = np.where(
            valid, flat_dist.take(base + np.where(valid, contacts, 0)), _FAR
        )
        # greedy_route's rule: the long link must strictly improve on the
        # current node and is preferred on ties with the best local hop.
        use_long = valid & (dist_contact < dist_cur) & (
            dist_contact <= np.minimum(dist_local, dist_cur)
        )
        hop = np.where(use_long, contacts, local_hop)
        moved = hop >= 0
        if not np.all(moved):
            # No improving hop can only mean inconsistent inputs; terminate
            # unsuccessfully exactly like greedy_route's best_node < 0.
            stuck = ~moved
            steps[ids[stuck]] = spent[stuck]
            long_links[ids[stuck]] = used[stuck]
            ids, base, cur, tgt, spent, used, hop, use_long = (
                a[moved] for a in (ids, base, cur, tgt, spent, used, hop, use_long)
            )
            if seeds is not None:
                seeds = seeds[moved]
        cur = hop
        spent = spent + 1
        used = used + use_long
        at_target = cur == tgt
        if np.any(at_target):
            done = ids[at_target]
            success[done] = True
            steps[done] = spent[at_target]
            long_links[done] = used[at_target]
            keep = ~at_target
            ids, base, cur, tgt, spent, used = (
                a[keep] for a in (ids, base, cur, tgt, spent, used)
            )
            if seeds is not None:
                seeds = seeds[keep]

    if max_steps is None and not np.all(success):
        bad_lane = int(np.nonzero(~success)[0][0])
        s, t = pairs[bad_lane // trials]
        raise RuntimeError(
            f"greedy route {s}->{t} failed without a max_steps budget; "
            "the distance array and graph are inconsistent"
        )
    return LaneBatchResult(
        steps=steps,
        success=success,
        long_links=long_links,
        pair_index=np.repeat(np.arange(num_pairs, dtype=np.int64), trials),
        trials=trials,
    )
