"""Command-line interface.

Four subcommands cover the library's day-to-day uses without writing Python:

* ``repro graph``      — generate a graph and print its basic statistics,
* ``repro pathshape``  — estimate the pathshape of a generated graph,
* ``repro route``      — estimate the greedy diameter of a (graph, scheme) pair,
* ``repro experiment`` — run one or all of the paper's experiments
  (``--jobs`` fans the sweep's cells out over processes, ``--out`` persists
  per-cell JSON artifacts, ``--resume`` skips already-computed cells,
  ``--shard`` drains ``--out`` as one worker of a lease-coordinated
  multi-process queue, ``--graph-cache`` spills the GraphStore's BFS arrays
  so graph instances are shared across workers and runs,
  ``--oracle-max-bytes`` byte-budgets the distance oracles' resident memory,
  ``--kernel-backend`` selects the compiled BFS/hop-table kernels,
  ``--stats`` reports hit rates, memory use and which kernel backend served
  each cell).

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from typing import Callable, Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.registry import available_schemes, make_scheme
from repro.decomposition.pathshape import estimate_pathshape
from repro.experiments.config import ExperimentConfig
from repro.experiments.lease import DEFAULT_LEASE_TTL
from repro.experiments.runner import EXPERIMENT_MODULES, render_markdown, run_all
from repro.graphs import generators, kernels
from repro.graphs.distances import diameter
from repro.graphs.graph import Graph
from repro.routing.simulator import ROUTING_ENGINES, estimate_greedy_diameter

__all__ = ["main", "build_parser", "GRAPH_FAMILIES"]

#: CLI-exposed graph families: name -> factory(n, seed) -> Graph.
GRAPH_FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "path": lambda n, seed: generators.path_graph(n),
    "ring": lambda n, seed: generators.cycle_graph(n),
    "grid2d": lambda n, seed: generators.grid_graph([max(2, int(round(n ** 0.5)))] * 2),
    "torus2d": lambda n, seed: generators.torus_graph([max(3, int(round(n ** 0.5)))] * 2),
    "tree": lambda n, seed: generators.random_tree(n, seed=seed),
    "caterpillar": lambda n, seed: generators.caterpillar_graph(max(2, n // 2), 1),
    "spider": lambda n, seed: generators.spider_graph(4, max(1, (n - 1) // 4)),
    "interval": lambda n, seed: generators.random_interval_graph(n, seed=seed)[0],
    "permutation": lambda n, seed: generators.random_permutation_graph(n, seed=seed)[0],
    "lollipop": lambda n, seed: generators.lollipop_graph(max(4, n // 8), n - max(4, n // 8)),
    "watts-strogatz": lambda n, seed: generators.watts_strogatz_graph(max(8, n), 4, 0.1, seed=seed),
    "erdos-renyi": lambda n, seed: generators.erdos_renyi_graph(n, min(1.0, 4.0 / max(1, n)), seed=seed),
}


#: Multipliers for ``--oracle-max-bytes`` size suffixes (binary units).
_SIZE_SUFFIXES = {"": 1, "B": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_byte_size(text: str) -> int:
    """Parse a byte-budget string: plain bytes or K/M/G binary suffixes.

    Accepts ``"536870912"``, ``"512M"``, ``"1G"``, ``"64K"`` (optionally with
    a trailing ``B``, any case).  Raises ``argparse.ArgumentTypeError`` so
    argparse renders a clean usage error instead of a traceback.
    """
    match = re.fullmatch(r"\s*(\d+)\s*([KkMmGg]?)[Bb]?\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {text!r} (expected e.g. 536870912, 64K, 512M or 1G)"
        )
    value = int(match.group(1)) * _SIZE_SUFFIXES[match.group(2).upper()]
    if value < 1:
        raise argparse.ArgumentTypeError(f"byte size must be positive, got {text!r}")
    return value


def _ensure_writable_dir(path: str, flag: str) -> Optional[str]:
    """Create *path* if needed and prove it is writable; error string or None.

    The probe creates (and removes) a real temporary file: permission bits
    via ``os.access`` lie for privileged users and say nothing about
    read-only mounts, while an actual ``open`` cannot be argued with.
    """
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        return f"cannot create {flag} directory {path!r}: {exc}"
    try:
        with tempfile.NamedTemporaryFile(dir=path, prefix=".writable-"):
            pass
    except OSError as exc:
        return f"{flag} directory {path!r} is not writable: {exc}"
    return None


def _make_graph(family: str, size: int, seed: int) -> Graph:
    try:
        factory = GRAPH_FAMILIES[family]
    except KeyError as exc:
        raise SystemExit(
            f"unknown graph family {family!r}; choose from {', '.join(sorted(GRAPH_FAMILIES))}"
        ) from exc
    return factory(size, seed)


# --------------------------------------------------------------------------- #
# Subcommand handlers
# --------------------------------------------------------------------------- #

def _cmd_graph(args: argparse.Namespace) -> int:
    graph = _make_graph(args.family, args.size, args.seed)
    rows = [
        ["name", graph.name],
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["min degree", int(graph.degrees().min())],
        ["max degree", int(graph.degrees().max())],
        ["avg degree", round(float(graph.degrees().mean()), 3)],
    ]
    if args.diameter:
        rows.append(["diameter", diameter(graph, exact=graph.num_nodes <= 2048)])
    print(format_table(rows, headers=["property", "value"]))
    return 0


def _cmd_pathshape(args: argparse.Namespace) -> int:
    graph = _make_graph(args.family, args.size, args.seed)
    estimate = estimate_pathshape(graph, compute_length=args.lengths)
    rows = [
        ["graph", graph.name],
        ["pathshape <=", estimate.shape],
        ["pathwidth <=", estimate.width],
        ["bags", estimate.decomposition.num_bags],
        ["winning strategy", estimate.strategy],
    ]
    print(format_table(rows, headers=["property", "value"]))
    print()
    print(format_table(sorted(estimate.candidates.items()), headers=["strategy", "witnessed shape"]))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    if args.kernel_backend:
        kernels.set_backend(args.kernel_backend)
        kernels.warmup_active()
    graph = _make_graph(args.family, args.size, args.seed)
    rows = []
    for scheme_name in args.schemes:
        scheme = make_scheme(scheme_name, graph, seed=args.seed)
        estimate = estimate_greedy_diameter(
            graph,
            scheme,
            num_pairs=args.pairs,
            trials=args.trials,
            seed=args.seed,
            engine=args.engine,
        )
        rows.append(
            [
                scheme_name,
                round(estimate.diameter, 2),
                round(estimate.mean, 2),
                f"{100 * estimate.long_link_fraction:.0f}%",
            ]
        )
    print(f"graph: {graph.name} (n={graph.num_nodes}, m={graph.num_edges})")
    print(
        format_table(
            rows, headers=["scheme", "greedy diameter", "mean steps", "long-link share"]
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.kernel_backend:
        # Recorded in the environment (so --jobs/--shard workers inherit it),
        # NOT in the config fingerprint: the backend cannot change results
        # (asserted by the parity tests), so artifacts stay interchangeable.
        kernels.set_backend(args.kernel_backend)
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    config = config.scaled(engine=args.engine)
    if args.sizes:
        config = config.scaled(sizes=list(args.sizes))
    only = args.only if args.only else None
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 1
    if args.resume and not args.out:
        print("--resume requires --out (the artifact directory to resume from)", file=sys.stderr)
        return 1
    if args.shard and not args.out:
        print("--shard requires --out (the artifact directory to drain)", file=sys.stderr)
        return 1
    for path, flag in ((args.out, "--out"), (args.graph_cache, "--graph-cache")):
        if path:
            error = _ensure_writable_dir(path, flag)
            if error is not None:
                print(error, file=sys.stderr)
                return 1
    stats: dict = {}
    try:
        results = run_all(
            config,
            only=only,
            verbose=not args.markdown,
            jobs=args.jobs,
            artifacts_dir=args.out,
            resume=args.resume,
            graph_cache=args.graph_cache,
            stats=stats,
            shard=args.shard,
            lease_ttl=args.lease_ttl,
            oracle_max_bytes=args.oracle_max_bytes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.markdown:
        print(render_markdown(results))
    else:
        executed, skipped = len(stats["executed"]), len(stats["skipped"])
        note = f"sweep: {executed} cell(s) computed"
        if skipped:
            note += f", {skipped} loaded from artifacts"
        if args.out:
            note += f"; artifacts in {args.out}"
        print(note)
    if args.stats:
        # Cache-hit counters go to stderr so --markdown output stays a clean
        # report.  With --jobs the serial-path store sits idle (workers keep
        # their own); the spill files under --graph-cache are the evidence.
        store = stats.get("store", {})
        print(
            "graph store: "
            f"{store.get('graph_builds', 0)} build(s), "
            f"{store.get('graph_hits', 0)} hit(s), "
            f"{store.get('bfs_misses', 0)} BFS run, "
            f"{store.get('bfs_hits', 0)} BFS served from cache, "
            f"{store.get('bfs_preloaded', 0)} BFS loaded from spill; "
            f"spill: {store.get('spill_saves', 0)} saved, "
            f"{store.get('spill_loads', 0)} loaded, "
            f"{store.get('spill_rejected', 0)} rejected",
            file=sys.stderr,
        )
        resident = int(store.get("oracle_resident_bytes", 0))
        nodes = int(store.get("oracle_nodes", 0))
        per_node = resident / nodes if nodes else 0.0
        memory = (
            f"oracle memory: {resident} resident byte(s) over {nodes} node(s) "
            f"({per_node:.1f} bytes/node)"
        )
        try:
            import resource
        except ImportError:  # pragma: no cover - resource is POSIX-only
            pass
        else:
            # ru_maxrss is KiB on Linux.
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
            memory += f"; peak RSS: {peak} byte(s)"
        print(memory, file=sys.stderr)
        # Which kernel backend actually served each computed cell.  A cell
        # served by numpy under a numba request is a *silent fallback*
        # (worker host missing the extra) — surfacing it here is what keeps
        # shard/nightly logs honest about what was measured.
        backends = stats.get("kernel_backends", {})
        requested = kernels.requested_backend()
        served: Dict[str, int] = {}
        warmup = 0.0
        for info in backends.values():
            served[info["active"]] = served.get(info["active"], 0) + 1
            warmup = max(warmup, float(info.get("jit_warmup_seconds") or 0.0))
        cells = ", ".join(f"{name}={count}" for name, count in sorted(served.items()))
        line = f"kernel backend: requested {requested}"
        line += f"; cells served: {cells if cells else 'none computed'}"
        if warmup:
            line += f"; JIT warmup: {warmup:.3f}s"
        print(line, file=sys.stderr)
        if requested == "numba" and served.get("numpy"):
            fallen = [
                f"{cell.experiment_id}/{cell.family}/n={cell.n}"
                for cell, info in backends.items()
                if info["active"] == "numpy"
            ]
            shown = ", ".join(fallen[:8]) + (" ..." if len(fallen) > 8 else "")
            print(
                f"WARNING: {len(fallen)} cell(s) fell back to numpy kernels: {shown}",
                file=sys.stderr,
            )
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Universal augmentation schemes for network navigability (SPAA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_graph = sub.add_parser("graph", help="generate a graph and print statistics")
    p_graph.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_graph.add_argument("--size", "-n", type=int, default=256)
    p_graph.add_argument("--seed", type=int, default=0)
    p_graph.add_argument("--diameter", action="store_true", help="also compute the diameter")
    p_graph.set_defaults(handler=_cmd_graph)

    p_shape = sub.add_parser("pathshape", help="estimate the pathshape of a graph")
    p_shape.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_shape.add_argument("--size", "-n", type=int, default=256)
    p_shape.add_argument("--seed", type=int, default=0)
    p_shape.add_argument("--lengths", action="store_true", help="evaluate bag lengths (slower, tighter)")
    p_shape.set_defaults(handler=_cmd_pathshape)

    p_route = sub.add_parser("route", help="estimate the greedy diameter under one or more schemes")
    p_route.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_route.add_argument("--size", "-n", type=int, default=512)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument("--pairs", type=int, default=8)
    p_route.add_argument("--trials", type=int, default=8)
    p_route.add_argument(
        "--schemes",
        nargs="+",
        default=["uniform", "ball"],
        help=f"schemes to compare (available: {', '.join(available_schemes())})",
    )
    p_route.add_argument(
        "--engine",
        choices=ROUTING_ENGINES,
        default="lane",
        help="Monte-Carlo routing engine (lane = vectorized, scalar = reference loop)",
    )
    p_route.add_argument(
        "--kernel-backend",
        choices=kernels.BACKEND_CHOICES,
        help=(
            "BFS/hop-table kernel backend (auto = numba when installed; "
            "results are backend-invariant)"
        ),
    )
    p_route.set_defaults(handler=_cmd_route)

    p_exp = sub.add_parser("experiment", help="run the paper's experiments")
    p_exp.add_argument(
        "--only",
        nargs="*",
        help=f"experiment ids to run (available: {', '.join(m.EXPERIMENT_ID for m in EXPERIMENT_MODULES)})",
    )
    p_exp.add_argument("--quick", action="store_true", help="use the small benchmark configuration")
    p_exp.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    p_exp.add_argument("--jobs", type=int, default=1, help="worker processes for the cell sweep")
    p_exp.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        help="override the configuration's graph sizes (e.g. --sizes 50000 1000000)",
    )
    p_exp.add_argument("--out", help="directory to persist per-cell JSON artifacts in")
    p_exp.add_argument(
        "--resume",
        action="store_true",
        help="skip cells whose artifact already exists in --out (same config only)",
    )
    p_exp.add_argument(
        "--shard",
        action="store_true",
        help=(
            "drain --out as one worker of a multi-process queue: cells are "
            "claimed via atomic .lease files, so independently started shard "
            "processes split the sweep and each assembles the full report"
        ),
    )
    p_exp.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="age after which another shard may take over an untouched lease",
    )
    p_exp.add_argument(
        "--graph-cache",
        help=(
            "directory for the GraphStore's fingerprint-checked raw .spill "
            "files (memory-mapped on reload; shares graph instances across "
            "--jobs workers, --shard processes and across runs)"
        ),
    )
    p_exp.add_argument(
        "--oracle-max-bytes",
        type=parse_byte_size,
        metavar="BYTES",
        help=(
            "byte budget for each distance oracle's resident memory "
            "(e.g. 512M or 1G); colder rows spill to a memory-mapped file"
        ),
    )
    p_exp.add_argument(
        "--stats",
        action="store_true",
        help="print GraphStore cache-hit and memory statistics to stderr after the sweep",
    )
    p_exp.add_argument(
        "--engine",
        choices=ROUTING_ENGINES,
        default="lane",
        help="Monte-Carlo routing engine (part of the artifact fingerprint)",
    )
    p_exp.add_argument(
        "--kernel-backend",
        choices=kernels.BACKEND_CHOICES,
        help=(
            "BFS/hop-table kernel backend, exported via REPRO_KERNEL_BACKEND "
            "so --jobs/--shard workers inherit it (NOT part of the artifact "
            "fingerprint: results are backend-invariant)"
        ),
    )
    p_exp.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
