"""Command-line interface.

Five subcommands cover the library's day-to-day uses without writing Python:

* ``repro graph``      — generate a graph and print its basic statistics,
* ``repro pathshape``  — estimate the pathshape of a generated graph,
* ``repro route``      — estimate the greedy diameter of a (graph, scheme) pair,
* ``repro serve``      — run the long-lived micro-batching route daemon
  (NDJSON over TCP; see :mod:`repro.serve`),
* ``repro experiment`` — run one or all of the paper's experiments
  (``--jobs`` fans the sweep's cells out over processes, ``--out`` persists
  per-cell JSON artifacts, ``--resume`` skips already-computed cells,
  ``--shard`` drains ``--out`` as one worker of a lease-coordinated
  multi-process queue, ``--graph-cache`` spills the GraphStore's BFS arrays
  so graph instances are shared across workers and runs,
  ``--oracle-max-bytes`` byte-budgets the distance oracles' resident memory,
  ``--distance-mode landmark --landmarks L`` swaps bulk distance queries onto
  a pivot sketch (exact BFS kept for routing trajectories),
  ``--kernel-backend`` selects the compiled BFS/hop-table kernels,
  ``--stats`` reports hit rates, memory use and which kernel backend served
  each cell).

The flags every subcommand repeats (``--size/-n``, ``--seed``, ``--engine``,
``--kernel-backend``, ``--jobs``) are defined once as argparse *parent
parsers* (:func:`_instance_flags` and friends) so their types, defaults and
help stay consistent across subcommands.  Invalid flag combinations raise
:class:`UsageError`, which ``main`` renders as a one-line message with exit
status 2 — never a traceback.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.registry import available_schemes, make_scheme
from repro.decomposition.pathshape import estimate_pathshape
from repro.experiments.config import ExperimentConfig
from repro.experiments.lease import DEFAULT_LEASE_TTL
from repro.experiments.runner import EXPERIMENT_MODULES, render_markdown, run_all
from repro.graphs import kernels
from repro.graphs.families import GRAPH_FAMILIES, build_family_graph
from repro.graphs.distances import diameter
from repro.graphs.graph import Graph
from repro.graphs.provider import DISTANCE_MODES, make_distance_provider
from repro.routing.simulator import ROUTING_ENGINES, estimate_greedy_diameter

__all__ = ["main", "build_parser", "GRAPH_FAMILIES", "UsageError"]


class UsageError(Exception):
    """An invalid flag combination or argument value.

    Raised by subcommand handlers; :func:`main` prints ``error: <message>``
    to stderr and exits with status 2 (argparse's own usage-error status), so
    misuse never surfaces as a traceback.
    """


#: Multipliers for ``--oracle-max-bytes`` size suffixes (binary units).
_SIZE_SUFFIXES = {"": 1, "B": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_byte_size(text: str) -> int:
    """Parse a byte-budget string: plain bytes or K/M/G binary suffixes.

    Accepts ``"536870912"``, ``"512M"``, ``"1G"``, ``"64K"`` (optionally with
    a trailing ``B``, any case).  Raises ``argparse.ArgumentTypeError`` so
    argparse renders a clean usage error instead of a traceback.
    """
    match = re.fullmatch(r"\s*(\d+)\s*([KkMmGg]?)[Bb]?\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {text!r} (expected e.g. 536870912, 64K, 512M or 1G)"
        )
    value = int(match.group(1)) * _SIZE_SUFFIXES[match.group(2).upper()]
    if value < 1:
        raise argparse.ArgumentTypeError(f"byte size must be positive, got {text!r}")
    return value


def _ensure_writable_dir(path: str, flag: str) -> Optional[str]:
    """Create *path* if needed and prove it is writable; error string or None.

    The probe creates (and removes) a real temporary file: permission bits
    via ``os.access`` lie for privileged users and say nothing about
    read-only mounts, while an actual ``open`` cannot be argued with.
    """
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        return f"cannot create {flag} directory {path!r}: {exc}"
    try:
        with tempfile.NamedTemporaryFile(dir=path, prefix=".writable-"):
            pass
    except OSError as exc:
        return f"{flag} directory {path!r} is not writable: {exc}"
    return None


def _make_graph(family: str, size: int, seed: int) -> Graph:
    try:
        return build_family_graph(family, size, seed)
    except ValueError as exc:
        raise UsageError(str(exc)) from exc


# --------------------------------------------------------------------------- #
# Shared flag groups (argparse parent parsers)
# --------------------------------------------------------------------------- #

def _instance_flags(default_size: int) -> argparse.ArgumentParser:
    """``--size/-n`` + ``--seed``: the (n, seed) of a generated instance."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--size", "-n", type=int, default=default_size,
                        help=f"number of nodes (default {default_size})")
    parent.add_argument("--seed", type=int, default=0,
                        help="master seed for the instance (default 0)")
    return parent


def _engine_flags(help_text: str) -> argparse.ArgumentParser:
    """``--engine``: the Monte-Carlo routing engine."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--engine", choices=ROUTING_ENGINES, default="lane", help=help_text)
    return parent


def _kernel_flags(help_text: str) -> argparse.ArgumentParser:
    """``--kernel-backend``: the BFS/hop-table kernel implementation."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--kernel-backend", choices=kernels.BACKEND_CHOICES, help=help_text)
    return parent


def _jobs_flags() -> argparse.ArgumentParser:
    """``--jobs``: worker-process fan-out."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cell sweep")
    return parent


def _distance_flags() -> argparse.ArgumentParser:
    """``--distance-mode`` + ``--landmarks`` + ``--oracle-max-bytes``.

    The distance-provider knobs, shared verbatim by ``route``, ``serve`` and
    ``experiment`` so a budgeted / landmark-backed oracle can be requested
    anywhere a session or sweep constructs one.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--distance-mode",
        choices=DISTANCE_MODES,
        default="exact",
        help=(
            "distance provider: 'exact' BFS rows everywhere (default), or "
            "'landmark' pivot-sketch estimates for bulk queries with exact "
            "BFS kept for routing trajectories"
        ),
    )
    parent.add_argument(
        "--landmarks",
        type=int,
        default=16,
        metavar="L",
        help="pivot count for --distance-mode landmark (default 16)",
    )
    parent.add_argument(
        "--oracle-max-bytes",
        type=parse_byte_size,
        metavar="BYTES",
        help=(
            "byte budget for each distance oracle's resident memory "
            "(e.g. 512M or 1G); colder rows spill to a memory-mapped file"
        ),
    )
    return parent


# --------------------------------------------------------------------------- #
# Subcommand handlers
# --------------------------------------------------------------------------- #

def _cmd_graph(args: argparse.Namespace) -> int:
    graph = _make_graph(args.family, args.size, args.seed)
    rows = [
        ["name", graph.name],
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["min degree", int(graph.degrees().min())],
        ["max degree", int(graph.degrees().max())],
        ["avg degree", round(float(graph.degrees().mean()), 3)],
    ]
    if args.diameter:
        rows.append(["diameter", diameter(graph, exact=graph.num_nodes <= 2048)])
    print(format_table(rows, headers=["property", "value"]))
    return 0


def _cmd_pathshape(args: argparse.Namespace) -> int:
    graph = _make_graph(args.family, args.size, args.seed)
    estimate = estimate_pathshape(graph, compute_length=args.lengths)
    rows = [
        ["graph", graph.name],
        ["pathshape <=", estimate.shape],
        ["pathwidth <=", estimate.width],
        ["bags", estimate.decomposition.num_bags],
        ["winning strategy", estimate.strategy],
    ]
    print(format_table(rows, headers=["property", "value"]))
    print()
    print(format_table(sorted(estimate.candidates.items()), headers=["strategy", "witnessed shape"]))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    if args.kernel_backend:
        kernels.set_backend(args.kernel_backend)
        kernels.warmup_active()
    graph = _make_graph(args.family, args.size, args.seed)
    # One provider shared across the compared schemes: BFS arrays pool, and
    # under --distance-mode landmark the pair sampling rides the sketch.
    oracle = make_distance_provider(
        graph,
        args.distance_mode,
        landmarks=args.landmarks,
        seed=args.seed,
        max_bytes=args.oracle_max_bytes,
    )
    rows = []
    for scheme_name in args.schemes:
        scheme = make_scheme(scheme_name, graph, seed=args.seed)
        estimate = estimate_greedy_diameter(
            graph,
            scheme,
            num_pairs=args.pairs,
            trials=args.trials,
            seed=args.seed,
            oracle=oracle,
            engine=args.engine,
        )
        rows.append(
            [
                scheme_name,
                round(estimate.diameter, 2),
                round(estimate.mean, 2),
                f"{100 * estimate.long_link_fraction:.0f}%",
            ]
        )
    print(f"graph: {graph.name} (n={graph.num_nodes}, m={graph.num_edges})")
    print(
        format_table(
            rows, headers=["scheme", "greedy diameter", "mean steps", "long-link share"]
        )
    )
    if args.distance_mode != "exact":
        print(_distance_stats_line(oracle.distance_stats()), file=sys.stderr)
    return 0


def _distance_stats_line(stats: dict) -> str:
    """One-line ``--stats``/route summary of a provider's distance_stats()."""
    stretch = stats.get("mean_stretch")
    stretch_text = f"{stretch:.4f}" if stretch is not None else "unmeasured"
    return (
        f"distance provider: mode={stats.get('mode', 'exact')}, "
        f"{stats.get('landmark_sweeps', 0)} landmark sweep(s), "
        f"{stats.get('sketch_queries', 0)} sketch query(ies), "
        f"mean stretch {stretch_text}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    import numpy as np

    from repro.serve.server import RouteServer
    from repro.session import open_session

    if args.engine != "lane":
        raise UsageError("repro serve batches queries as lanes; only --engine lane is supported")
    if args.max_batch < 1:
        raise UsageError("--max-batch must be at least 1")
    if args.window_ms < 0:
        raise UsageError("--window-ms must be non-negative")
    if args.warm_targets < 0:
        raise UsageError("--warm-targets must be non-negative")
    if not 0 <= args.port <= 65535:
        raise UsageError(f"--port must be in [0, 65535], got {args.port}")
    if args.scheme not in available_schemes():
        raise UsageError(
            f"unknown scheme {args.scheme!r} (available: {', '.join(available_schemes())})"
        )

    session = open_session(
        args.family,
        args.size,
        seed=args.seed,
        scheme=args.scheme,
        oracle_max_bytes=args.oracle_max_bytes,
        distance_mode=args.distance_mode,
        landmarks=args.landmarks,
        kernel_backend=args.kernel_backend,
    )
    n = session.graph.num_nodes
    warm = min(args.warm_targets, n)
    if warm:
        targets = np.random.default_rng(args.seed).choice(n, size=warm, replace=False)
        session.warm(targets)

    server = RouteServer(
        session,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        window=args.window_ms / 1000.0,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        # The parseable readiness line load generators and tests wait for.
        print(
            f"repro serve: listening on {server.host}:{server.port} "
            f"(family={args.family} n={n} scheme={args.scheme} seed={args.seed})",
            flush=True,
        )
        serving = asyncio.ensure_future(server.serve_forever())
        await stop_requested.wait()
        serving.cancel()
        await asyncio.gather(serving, return_exceptions=True)
        await server.stop()
        stats = server.batcher.stats
        print(
            f"repro serve: stopped after {stats['submitted']} queries "
            f"in {stats['batches']} batches",
            flush=True,
        )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler platforms cover this
        pass
    finally:
        session.close()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.kernel_backend:
        # Recorded in the environment (so --jobs/--shard workers inherit it),
        # NOT in the config fingerprint: the backend cannot change results
        # (asserted by the parity tests), so artifacts stay interchangeable.
        kernels.set_backend(args.kernel_backend)
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    config = config.scaled(
        engine=args.engine,
        distance_mode=args.distance_mode,
        landmarks=args.landmarks,
    )
    if args.sizes:
        config = config.scaled(sizes=list(args.sizes))
    only = args.only if args.only else None
    if args.jobs < 1:
        raise UsageError("--jobs must be at least 1")
    if args.resume and not args.out:
        raise UsageError("--resume requires --out (the artifact directory to resume from)")
    if args.shard and not args.out:
        raise UsageError("--shard requires --out (the artifact directory to drain)")
    for path, flag in ((args.out, "--out"), (args.graph_cache, "--graph-cache")):
        if path:
            error = _ensure_writable_dir(path, flag)
            if error is not None:
                raise UsageError(error)
    stats: dict = {}
    try:
        results = run_all(
            config,
            only=only,
            verbose=not args.markdown,
            jobs=args.jobs,
            artifacts_dir=args.out,
            resume=args.resume,
            graph_cache=args.graph_cache,
            stats=stats,
            shard=args.shard,
            lease_ttl=args.lease_ttl,
            oracle_max_bytes=args.oracle_max_bytes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.markdown:
        print(render_markdown(results))
    else:
        executed, skipped = len(stats["executed"]), len(stats["skipped"])
        note = f"sweep: {executed} cell(s) computed"
        if skipped:
            note += f", {skipped} loaded from artifacts"
        if args.out:
            note += f"; artifacts in {args.out}"
        print(note)
    if args.stats:
        # Cache-hit counters go to stderr so --markdown output stays a clean
        # report.  With --jobs the serial-path store sits idle (workers keep
        # their own); the spill files under --graph-cache are the evidence.
        store = stats.get("store", {})
        print(
            "graph store: "
            f"{store.get('graph_builds', 0)} build(s), "
            f"{store.get('graph_hits', 0)} hit(s), "
            f"{store.get('bfs_misses', 0)} BFS run, "
            f"{store.get('bfs_hits', 0)} BFS served from cache, "
            f"{store.get('bfs_preloaded', 0)} BFS loaded from spill; "
            f"spill: {store.get('spill_saves', 0)} saved, "
            f"{store.get('spill_loads', 0)} loaded, "
            f"{store.get('spill_rejected', 0)} rejected",
            file=sys.stderr,
        )
        resident = int(store.get("oracle_resident_bytes", 0))
        nodes = int(store.get("oracle_nodes", 0))
        per_node = resident / nodes if nodes else 0.0
        memory = (
            f"oracle memory: {resident} resident byte(s) over {nodes} node(s) "
            f"({per_node:.1f} bytes/node)"
        )
        try:
            import resource
        except ImportError:  # pragma: no cover - resource is POSIX-only
            pass
        else:
            # ru_maxrss is KiB on Linux.
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
            memory += f"; peak RSS: {peak} byte(s)"
        print(memory, file=sys.stderr)
        # Distance-provider summary (mode, sketch counters, measured stretch).
        print(_distance_stats_line({**store, "mode": store.get("distance_mode")}), file=sys.stderr)
        # Which kernel backend actually served each computed cell.  A cell
        # served by numpy under a numba request is a *silent fallback*
        # (worker host missing the extra) — surfacing it here is what keeps
        # shard/nightly logs honest about what was measured.
        backends = stats.get("kernel_backends", {})
        requested = kernels.requested_backend()
        served: Dict[str, int] = {}
        warmup = 0.0
        for info in backends.values():
            served[info["active"]] = served.get(info["active"], 0) + 1
            warmup = max(warmup, float(info.get("jit_warmup_seconds") or 0.0))
        cells = ", ".join(f"{name}={count}" for name, count in sorted(served.items()))
        line = f"kernel backend: requested {requested}"
        line += f"; cells served: {cells if cells else 'none computed'}"
        if warmup:
            line += f"; JIT warmup: {warmup:.3f}s"
        print(line, file=sys.stderr)
        if requested == "numba" and served.get("numpy"):
            fallen = [
                f"{cell.experiment_id}/{cell.family}/n={cell.n}"
                for cell, info in backends.items()
                if info["active"] == "numpy"
            ]
            shown = ", ".join(fallen[:8]) + (" ..." if len(fallen) > 8 else "")
            print(
                f"WARNING: {len(fallen)} cell(s) fell back to numpy kernels: {shown}",
                file=sys.stderr,
            )
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Universal augmentation schemes for network navigability (SPAA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_graph = sub.add_parser(
        "graph",
        help="generate a graph and print statistics",
        parents=[_instance_flags(256)],
    )
    p_graph.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_graph.add_argument("--diameter", action="store_true", help="also compute the diameter")
    p_graph.set_defaults(handler=_cmd_graph)

    p_shape = sub.add_parser(
        "pathshape",
        help="estimate the pathshape of a graph",
        parents=[_instance_flags(256)],
    )
    p_shape.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_shape.add_argument("--lengths", action="store_true", help="evaluate bag lengths (slower, tighter)")
    p_shape.set_defaults(handler=_cmd_pathshape)

    p_route = sub.add_parser(
        "route",
        help="estimate the greedy diameter under one or more schemes",
        parents=[
            _instance_flags(512),
            _engine_flags("Monte-Carlo routing engine (lane = vectorized, scalar = reference loop)"),
            _kernel_flags(
                "BFS/hop-table kernel backend (auto = numba when installed; "
                "results are backend-invariant)"
            ),
            _distance_flags(),
        ],
    )
    p_route.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_route.add_argument("--pairs", type=int, default=8)
    p_route.add_argument("--trials", type=int, default=8)
    p_route.add_argument(
        "--schemes",
        nargs="+",
        default=["uniform", "ball"],
        help=f"schemes to compare (available: {', '.join(available_schemes())})",
    )
    p_route.set_defaults(handler=_cmd_route)

    p_serve = sub.add_parser(
        "serve",
        help="run the micro-batching route daemon (NDJSON over TCP)",
        parents=[
            _instance_flags(4096),
            _engine_flags("routing engine (the daemon batches lanes; only 'lane' is supported)"),
            _kernel_flags("BFS/hop-table kernel backend warmed before the session opens"),
            _distance_flags(),
        ],
    )
    p_serve.add_argument("family", choices=sorted(GRAPH_FAMILIES))
    p_serve.add_argument(
        "--scheme",
        default="uniform",
        help=f"augmentation scheme to serve (available: {', '.join(available_schemes())})",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=0, help="TCP port; 0 lets the OS pick (default 0)"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=512,
        help="flush a micro-batch as soon as this many queries are pending (default 512)",
    )
    p_serve.add_argument(
        "--window-ms", type=float, default=1.0,
        help="flush a micro-batch this many ms after its first query (default 1.0)",
    )
    p_serve.add_argument(
        "--warm-targets", type=int, default=32,
        help="routing-block rows to precompute before accepting queries (default 32)",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_exp = sub.add_parser(
        "experiment",
        help="run the paper's experiments",
        parents=[
            _engine_flags("Monte-Carlo routing engine (part of the artifact fingerprint)"),
            _kernel_flags(
                "BFS/hop-table kernel backend, exported via REPRO_KERNEL_BACKEND "
                "so --jobs/--shard workers inherit it (NOT part of the artifact "
                "fingerprint: results are backend-invariant)"
            ),
            _jobs_flags(),
            _distance_flags(),
        ],
    )
    p_exp.add_argument(
        "--only",
        nargs="*",
        help=f"experiment ids to run (available: {', '.join(m.EXPERIMENT_ID for m in EXPERIMENT_MODULES)})",
    )
    p_exp.add_argument("--quick", action="store_true", help="use the small benchmark configuration")
    p_exp.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    p_exp.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        help="override the configuration's graph sizes (e.g. --sizes 50000 1000000)",
    )
    p_exp.add_argument("--out", help="directory to persist per-cell JSON artifacts in")
    p_exp.add_argument(
        "--resume",
        action="store_true",
        help="skip cells whose artifact already exists in --out (same config only)",
    )
    p_exp.add_argument(
        "--shard",
        action="store_true",
        help=(
            "drain --out as one worker of a multi-process queue: cells are "
            "claimed via atomic .lease files, so independently started shard "
            "processes split the sweep and each assembles the full report"
        ),
    )
    p_exp.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="age after which another shard may take over an untouched lease",
    )
    p_exp.add_argument(
        "--graph-cache",
        help=(
            "directory for the GraphStore's fingerprint-checked raw .spill "
            "files (memory-mapped on reload; shares graph instances across "
            "--jobs workers, --shard processes and across runs)"
        ),
    )
    p_exp.add_argument(
        "--stats",
        action="store_true",
        help="print GraphStore cache-hit and memory statistics to stderr after the sweep",
    )
    p_exp.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
