"""Plain-text and Markdown table formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(row: Iterable) -> List[str]:
    out = []
    for cell in row:
        if isinstance(cell, float):
            out.append(f"{cell:.3f}")
        else:
            out.append(str(cell))
    return out


def format_table(rows: Sequence[Sequence], headers: Sequence[str]) -> str:
    """Fixed-width plain-text table (used by the CLI-style example scripts)."""
    headers = [str(h) for h in headers]
    str_rows = [_stringify(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Sequence], headers: Sequence[str]) -> str:
    """GitHub-flavoured Markdown table (used by EXPERIMENTS.md generation)."""
    headers = [str(h) for h in headers]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row)) + " |")
    return "\n".join(lines)
