"""Scaling-law fits used to compare measurements against the theorems.

Every statement of the paper is asymptotic — ``O(√n)``, ``Õ(n^{1/3})``,
``O(ps(G)·log² n)``, ``Ω(n^β)`` — so the reproduction compares *fitted growth
exponents* rather than absolute step counts:

* :func:`fit_power_law` fits ``y ≈ c · n^α`` by least squares in log–log
  space and reports the exponent ``α`` with its standard error and ``R²``,
* :func:`fit_polylog` fits ``y ≈ c · (log n)^d`` for a given degree ``d``
  and reports the ratio spread (a bounded ratio indicates polylog growth),
* :func:`classify_growth` decides between "polylog" and "polynomial" by
  comparing the two fits, which is how EXP-3/EXP-4 check Corollary 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "PolylogFit", "fit_power_law", "fit_polylog", "classify_growth"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c · n^exponent`` in log–log space."""

    exponent: float
    prefactor: float
    stderr: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Fitted value at *n*."""
        return self.prefactor * float(n) ** self.exponent

    def summary(self) -> str:
        return (
            f"y ~ {self.prefactor:.3g} * n^{self.exponent:.3f} "
            f"(± {self.stderr:.3f}, R²={self.r_squared:.3f})"
        )


@dataclass(frozen=True)
class PolylogFit:
    """Fit of ``y = c · (log₂ n)^degree`` via the median ratio."""

    degree: float
    prefactor: float
    ratio_spread: float

    def predict(self, n: float) -> float:
        """Fitted value at *n*."""
        return self.prefactor * float(np.log2(n)) ** self.degree

    def summary(self) -> str:
        return (
            f"y ~ {self.prefactor:.3g} * (log n)^{self.degree:g} "
            f"(ratio spread {self.ratio_spread:.2f})"
        )


def fit_power_law(sizes: Sequence[float], values: Sequence[float]) -> PowerLawFit:
    """Fit ``values ≈ c · sizes^α`` by ordinary least squares on logs."""
    raw_x = np.asarray(list(sizes), dtype=float)
    raw_y = np.asarray(list(values), dtype=float)
    if raw_x.size != raw_y.size or raw_x.size < 2:
        raise ValueError("need at least two (size, value) points")
    if np.any(raw_x <= 0) or np.any(raw_y <= 0) or np.any(~np.isfinite(raw_x)) or np.any(~np.isfinite(raw_y)):
        raise ValueError("sizes and values must be positive and finite")
    x = np.log(raw_x)
    y = np.log(raw_y)
    design = np.vstack([x, np.ones_like(x)]).T
    coef, residuals, _, _ = np.linalg.lstsq(design, y, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    fitted = design @ coef
    ss_res = float(np.sum((y - fitted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    dof = max(1, x.size - 2)
    x_var = float(np.sum((x - x.mean()) ** 2))
    stderr = float(np.sqrt(ss_res / dof / x_var)) if x_var > 0 else float("inf")
    return PowerLawFit(
        exponent=slope,
        prefactor=float(np.exp(intercept)),
        stderr=stderr,
        r_squared=r_squared,
    )


def fit_polylog(sizes: Sequence[float], values: Sequence[float], degree: float) -> PolylogFit:
    """Fit ``values ≈ c · (log₂ sizes)^degree``.

    The prefactor is the median of ``value / (log n)^degree``; ``ratio_spread``
    is the max/min ratio of those normalised values — close to 1 means the
    polylog model explains the data well.
    """
    n = np.asarray(list(sizes), dtype=float)
    y = np.asarray(list(values), dtype=float)
    if n.size != y.size or n.size < 1:
        raise ValueError("need at least one (size, value) point")
    logs = np.log2(n)
    if np.any(logs <= 0):
        raise ValueError("sizes must be greater than 1")
    ratios = y / logs ** float(degree)
    spread = float(ratios.max() / ratios.min()) if np.all(ratios > 0) else float("inf")
    return PolylogFit(degree=float(degree), prefactor=float(np.median(ratios)), ratio_spread=spread)


def classify_growth(
    sizes: Sequence[float],
    values: Sequence[float],
    *,
    polylog_degree: float = 3.0,
    polynomial_threshold: float = 0.2,
) -> str:
    """Classify a growth curve as ``"polylog"`` or ``"polynomial"``.

    Over the narrow size ranges a simulation can reach, ``log^d n`` and
    ``n^α`` curves both look like straight-ish lines in log–log space, so a
    single exponent threshold cannot separate them.  Instead the two models
    are fitted head to head —

    * polynomial:  ``log y = a + α · log n``
    * polylog:     ``log y = a + d · log(log₂ n)``  (degree fitted freely)

    — and the model with the smaller residual sum of squares wins.  Exactly
    polylogarithmic data therefore classifies as ``"polylog"`` even when its
    apparent power-law exponent exceeds *polynomial_threshold*; curves whose
    fitted exponent is below *polynomial_threshold* (essentially flat) are
    classified polylog outright.
    """
    x = np.asarray(list(sizes), dtype=float)
    y = np.asarray(list(values), dtype=float)
    power = fit_power_law(x, y)
    if power.exponent < polynomial_threshold:
        return "polylog"
    log_y = np.log(y)
    log_n = np.log(x)
    log_log_n = np.log(np.log2(x))

    def residual(features: np.ndarray) -> float:
        design = np.vstack([features, np.ones_like(features)]).T
        coef, _, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
        return float(np.sum((log_y - design @ coef) ** 2))

    return "polynomial" if residual(log_n) <= residual(log_log_n) else "polylog"
