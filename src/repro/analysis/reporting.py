"""Structured experiment results.

Every experiment module returns an :class:`ExperimentResult`: a set of named
series (one per scheme / graph family), each mapping problem size ``n`` to a
measured quantity (usually the estimated greedy diameter), plus fitted
exponents and a free-form conclusion comparing measurement against the
paper's claim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.scaling import PowerLawFit, fit_power_law
from repro.analysis.tables import format_markdown_table, format_table

__all__ = ["SeriesResult", "ExperimentResult"]


@dataclass
class SeriesResult:
    """One measured curve: quantity vs problem size."""

    name: str
    sizes: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    metadata: Dict[str, float] = field(default_factory=dict)

    def add(self, size: int, value: float) -> None:
        """Append a measurement."""
        self.sizes.append(int(size))
        self.values.append(float(value))

    def power_law(self) -> Optional[PowerLawFit]:
        """Power-law fit of the series (``None`` with fewer than two points)."""
        if len(self.sizes) < 2:
            return None
        return fit_power_law(self.sizes, self.values)

    def as_dict(self) -> dict:
        fit = self.power_law()
        return {
            "name": self.name,
            "sizes": self.sizes,
            "values": self.values,
            "exponent": fit.exponent if fit else None,
            "r_squared": fit.r_squared if fit else None,
            "metadata": self.metadata,
        }


@dataclass
class ExperimentResult:
    """Full result of one experiment (one id of the DESIGN.md index)."""

    experiment_id: str
    title: str
    paper_claim: str
    series: List[SeriesResult] = field(default_factory=list)
    conclusion: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def add_series(self, series: SeriesResult) -> None:
        self.series.append(series)

    def get_series(self, name: str) -> SeriesResult:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r}")

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for s in self.series:
            fit = s.power_law()
            rows.append(
                [
                    s.name,
                    ", ".join(str(n) for n in s.sizes),
                    ", ".join(f"{v:.1f}" for v in s.values),
                    f"{fit.exponent:.3f}" if fit else "n/a",
                    f"{fit.r_squared:.3f}" if fit else "n/a",
                ]
            )
        return rows

    def to_text(self) -> str:
        """Plain-text report (printed by the example scripts and the benches)."""
        headers = ["series", "sizes", "values", "exponent", "R^2"]
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"paper claim: {self.paper_claim}",
            format_table(self.summary_rows(), headers),
        ]
        if self.conclusion:
            lines.append(f"conclusion: {self.conclusion}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown report (pasted into EXPERIMENTS.md)."""
        headers = ["series", "sizes", "values", "exponent", "R^2"]
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"*Paper claim*: {self.paper_claim}",
            "",
            format_markdown_table(self.summary_rows(), headers),
        ]
        if self.conclusion:
            parts.extend(["", f"*Conclusion*: {self.conclusion}"])
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable JSON dump."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "parameters": self.parameters,
                "series": [s.as_dict() for s in self.series],
                "conclusion": self.conclusion,
            },
            indent=2,
            default=str,
        )
