"""Structured experiment results and persisted sweep artifacts.

Every experiment module returns an :class:`ExperimentResult`: a set of named
series (one per scheme / graph family), each mapping problem size ``n`` to a
measured quantity (usually the estimated greedy diameter), plus fitted
exponents and a free-form conclusion comparing measurement against the
paper's claim.

The sweep pipeline additionally persists every computed *cell* — one
``(experiment, family, n)`` unit of work — as a :class:`CellArtifact` JSON
file, so long sweeps are resumable (``--resume`` skips cells whose artifact
already exists with a matching configuration) and reports can be regenerated
from artifacts alone without re-running any routing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.scaling import PowerLawFit, fit_power_law
from repro.analysis.tables import format_markdown_table, format_table
from repro.utils.text import slugify

__all__ = [
    "SeriesResult",
    "ExperimentResult",
    "CellArtifact",
    "ARTIFACT_SCHEMA_VERSION",
    "artifact_path",
    "write_cell_artifact",
    "load_cell_artifact",
    "iter_cell_artifacts",
]


@dataclass
class SeriesResult:
    """One measured curve: quantity vs problem size."""

    name: str
    sizes: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    metadata: Dict[str, float] = field(default_factory=dict)

    def add(self, size: int, value: float) -> None:
        """Append a measurement."""
        self.sizes.append(int(size))
        self.values.append(float(value))

    def power_law(self) -> Optional[PowerLawFit]:
        """Power-law fit of the series (``None`` with fewer than two points)."""
        if len(self.sizes) < 2:
            return None
        return fit_power_law(self.sizes, self.values)

    def as_dict(self) -> dict:
        fit = self.power_law()
        return {
            "name": self.name,
            "sizes": self.sizes,
            "values": self.values,
            "exponent": fit.exponent if fit else None,
            "r_squared": fit.r_squared if fit else None,
            "metadata": self.metadata,
        }


@dataclass
class ExperimentResult:
    """Full result of one experiment (one id of the DESIGN.md index)."""

    experiment_id: str
    title: str
    paper_claim: str
    series: List[SeriesResult] = field(default_factory=list)
    conclusion: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def add_series(self, series: SeriesResult) -> None:
        self.series.append(series)

    def get_series(self, name: str) -> SeriesResult:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r}")

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for s in self.series:
            fit = s.power_law()
            rows.append(
                [
                    s.name,
                    ", ".join(str(n) for n in s.sizes),
                    ", ".join(f"{v:.1f}" for v in s.values),
                    f"{fit.exponent:.3f}" if fit else "n/a",
                    f"{fit.r_squared:.3f}" if fit else "n/a",
                ]
            )
        return rows

    def to_text(self) -> str:
        """Plain-text report (printed by the example scripts and the benches)."""
        headers = ["series", "sizes", "values", "exponent", "R^2"]
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"paper claim: {self.paper_claim}",
            format_table(self.summary_rows(), headers),
        ]
        if self.conclusion:
            lines.append(f"conclusion: {self.conclusion}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown report (pasted into EXPERIMENTS.md)."""
        headers = ["series", "sizes", "values", "exponent", "R^2"]
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"*Paper claim*: {self.paper_claim}",
            "",
            format_markdown_table(self.summary_rows(), headers),
        ]
        if self.conclusion:
            parts.extend(["", f"*Conclusion*: {self.conclusion}"])
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable JSON dump."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "paper_claim": self.paper_claim,
                "parameters": self.parameters,
                "series": [s.as_dict() for s in self.series],
                "conclusion": self.conclusion,
            },
            indent=2,
            default=str,
        )


# --------------------------------------------------------------------------- #
# Persisted sweep artifacts
# --------------------------------------------------------------------------- #

#: Bump when the artifact layout changes; loaders reject newer/older versions.
#: Version 2: cell payloads record the per-instance seed and the graph's CSR
#: content fingerprint (GraphStore era), and graph generation / pair sampling
#: are instance-seeded rather than cell-seeded — version-1 artifacts measured
#: different pair sets, so resuming onto them would silently mix statistics.
ARTIFACT_SCHEMA_VERSION = 2


#: Filesystem-safe slug for artifact filenames — shared with the GraphStore's
#: spill filenames so the two naming schemes cannot drift apart.
_slugify = slugify


@dataclass
class CellArtifact:
    """Persisted result of one ``(experiment, family, n)`` sweep cell.

    Attributes
    ----------
    experiment_id, family, n:
        The cell key (exact, un-slugified strings — the filename is derived
        but the JSON body is authoritative).
    config:
        Fingerprint of the :class:`~repro.experiments.config.ExperimentConfig`
        the cell was computed under (``dataclasses.asdict``).  A resume run
        only reuses an artifact whose fingerprint matches its own config.
    payload:
        The module's JSON-safe cell payload (see
        :func:`repro.experiments.common.scaling_cell`).
    """

    experiment_id: str
    family: str
    n: int
    config: Dict[str, object]
    payload: Dict[str, object]
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    def filename(self) -> str:
        return (
            f"{_slugify(self.experiment_id)}__{_slugify(self.family)}__n{int(self.n)}.json"
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema_version": self.schema_version,
                "experiment_id": self.experiment_id,
                "family": self.family,
                "n": int(self.n),
                "config": self.config,
                "payload": self.payload,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CellArtifact":
        data = json.loads(text)
        version = data.get("schema_version")
        if version != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported artifact schema version {version!r} "
                f"(this build reads version {ARTIFACT_SCHEMA_VERSION})"
            )
        return cls(
            experiment_id=data["experiment_id"],
            family=data["family"],
            n=int(data["n"]),
            config=data["config"],
            payload=data["payload"],
            schema_version=int(version),
        )


def artifact_path(directory: Union[str, Path], experiment_id: str, family: str, n: int) -> Path:
    """Canonical artifact location for a cell key."""
    stub = CellArtifact(experiment_id=experiment_id, family=family, n=n, config={}, payload={})
    return Path(directory) / stub.filename()


def write_cell_artifact(directory: Union[str, Path], artifact: CellArtifact) -> Path:
    """Write *artifact* under *directory* (created if needed); returns the path.

    The write goes through a temporary file + rename so a crashed sweep never
    leaves a half-written artifact that a later ``--resume`` would trust.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact.filename()
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(artifact.to_json() + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_cell_artifact(path: Union[str, Path]) -> CellArtifact:
    """Load one artifact file (raises on missing file / wrong schema)."""
    return CellArtifact.from_json(Path(path).read_text(encoding="utf-8"))


def iter_cell_artifacts(directory: Union[str, Path]) -> List[CellArtifact]:
    """Load every ``*.json`` artifact under *directory*, sorted by filename.

    Files that are not valid artifacts (wrong schema, foreign JSON) are
    skipped silently so the artifact directory can live alongside other
    output files.
    """
    directory = Path(directory)
    artifacts: List[CellArtifact] = []
    if not directory.is_dir():
        return artifacts
    for path in sorted(directory.glob("*.json")):
        try:
            artifacts.append(load_cell_artifact(path))
        except (ValueError, KeyError, json.JSONDecodeError):
            continue
    return artifacts
