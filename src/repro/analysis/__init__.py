"""Analysis helpers: scaling-law fits, tables and experiment reports."""

from repro.analysis.scaling import (
    fit_power_law,
    fit_polylog,
    PowerLawFit,
    PolylogFit,
    classify_growth,
)
from repro.analysis.tables import format_table, format_markdown_table
from repro.analysis.reporting import ExperimentResult, SeriesResult

__all__ = [
    "fit_power_law",
    "fit_polylog",
    "PowerLawFit",
    "PolylogFit",
    "classify_growth",
    "format_table",
    "format_markdown_table",
    "ExperimentResult",
    "SeriesResult",
]
