"""Scheme registry: build any scheme from a short name.

Used by the experiment harness, the benchmarks and the examples so that a
scheme can be selected with a string (``"uniform"``, ``"ball"``,
``"theorem2"``, ``"kleinberg"``, ``"matrix-uniform"``) plus keyword options.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import AugmentationScheme
from repro.core.ball_scheme import BallScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import MatrixScheme, uniform_matrix
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.graphs.graph import Graph

__all__ = ["make_scheme", "available_schemes", "register_scheme"]

_SchemeFactory = Callable[..., AugmentationScheme]

_REGISTRY: Dict[str, _SchemeFactory] = {}


def register_scheme(name: str, factory: _SchemeFactory) -> None:
    """Register a custom scheme factory under *name* (overwrites silently)."""
    _REGISTRY[name.lower()] = factory


def available_schemes() -> List[str]:
    """Sorted list of registered scheme names."""
    return sorted(_REGISTRY)


def make_scheme(name: str, graph: Graph, **kwargs) -> AugmentationScheme:
    """Instantiate the scheme registered under *name* for *graph*.

    Keyword arguments are forwarded to the scheme constructor, e.g.
    ``make_scheme("kleinberg", g, exponent=2.0)`` or
    ``make_scheme("ball", g, seed=7)``.
    """
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise KeyError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        )
    return factory(graph, **kwargs)


# --------------------------------------------------------------------------- #
# Built-in registrations
# --------------------------------------------------------------------------- #

def _make_uniform(graph: Graph, **kwargs) -> AugmentationScheme:
    return UniformScheme(graph, **kwargs)


def _make_ball(graph: Graph, **kwargs) -> AugmentationScheme:
    return BallScheme(graph, **kwargs)


def _make_theorem2(graph: Graph, **kwargs) -> AugmentationScheme:
    return Theorem2Scheme(graph, **kwargs)


def _make_kleinberg(graph: Graph, exponent: float = 2.0, **kwargs) -> AugmentationScheme:
    return DistancePowerScheme(graph, exponent, **kwargs)


def _make_matrix_uniform(graph: Graph, **kwargs) -> AugmentationScheme:
    return MatrixScheme(graph, uniform_matrix(graph.num_nodes), **kwargs)


register_scheme("uniform", _make_uniform)
register_scheme("ball", _make_ball)
register_scheme("theorem2", _make_theorem2)
register_scheme("kleinberg", _make_kleinberg)
register_scheme("distance_power", _make_kleinberg)
register_scheme("matrix-uniform", _make_matrix_uniform)
