"""Adversarial constructions behind the lower bounds (Theorems 1 and 3).

**Theorem 1** — for *any* augmentation matrix ``A`` of size ``n`` there is a
labeling of the ``n``-node path on which greedy routing needs ``Ω(√n)``
expected steps.  The proof finds an index set ``I`` of size ``√n`` whose total
internal probability mass ``Σ_{i≠j ∈ I} p_{i,j}`` is below one (an averaging
argument shows such a set must exist), assigns the labels of ``I`` to ``√n``
consecutive path nodes and routes between two nodes a third of the way into
that segment: with constant probability not a single long link lands inside
the segment, so greedy routing must walk.

:func:`find_sparse_index_set` reproduces the existence argument
constructively (greedy removal of the heaviest index, with random restarts),
and :func:`adversarial_path_labeling` builds the labeled path instance plus
the (source, target) pair used in the proof.

**Theorem 3** — any matrix scheme restricted to labels of size ``ε·log n``
bits (i.e. at most ``n^ε`` distinct labels) has greedy diameter ``Ω(n^β)`` on
the path for every ``β < (1-ε)/3``.  :func:`block_labeling` produces the
natural "contiguous blocks" labeling with ``k`` labels that the experiments
sweep, and :func:`popular_interval` mirrors the proof's notion of an interval
containing only *popular* labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import AugmentationMatrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "find_sparse_index_set",
    "internal_mass",
    "AdversarialPathInstance",
    "adversarial_path_labeling",
    "block_labeling",
    "popular_interval",
]


def internal_mass(matrix: AugmentationMatrix, index_set: Sequence[int]) -> float:
    """``Σ_{i ≠ j ∈ I} p_{i,j}`` for a set ``I`` of 1-based labels."""
    idx = np.asarray(sorted(set(int(i) - 1 for i in index_set)), dtype=np.int64)
    if idx.size == 0:
        return 0.0
    if idx.min() < 0 or idx.max() >= matrix.size:
        raise ValueError("index set contains out-of-range labels")
    block = matrix.entries[np.ix_(idx, idx)]
    return float(block.sum() - np.trace(block))


def find_sparse_index_set(
    matrix: AugmentationMatrix,
    size: int,
    *,
    threshold: float = 1.0,
    max_restarts: int = 32,
    seed: RngLike = None,
) -> List[int]:
    """Find ``I`` with ``|I| = size`` and ``Σ_{i≠j∈I} p_{i,j} < threshold``.

    Strategy: start from all labels and greedily remove the label with the
    largest internal contribution until only *size* remain.  The averaging
    argument of Theorem 1 guarantees a suitable set exists whenever
    ``size ≈ √n``; if the greedy pass overshoots the threshold (possible for
    adversarially structured matrices), random restarts over random initial
    subsets are attempted before giving up.

    Returns 1-based labels.
    """
    size = check_positive_int(size, "size")
    n = matrix.size
    if size > n:
        raise ValueError(f"requested set of size {size} from only {n} labels")
    entries = matrix.entries

    def greedy_from(candidates: np.ndarray) -> Tuple[List[int], float]:
        members = np.asarray(sorted(set(int(c) for c in candidates)), dtype=np.int64)
        block = entries[np.ix_(members, members)].copy()
        np.fill_diagonal(block, 0.0)
        # contribution[k] = mass of all ordered pairs involving members[k].
        contrib = block.sum(axis=0) + block.sum(axis=1)
        alive = np.ones(members.size, dtype=bool)
        alive_count = members.size
        # Greedily remove the heaviest member; contributions are updated
        # incrementally so the whole pass costs O(|candidates|^2) vector ops.
        while alive_count > size:
            masked = np.where(alive, contrib, -np.inf)
            worst = int(np.argmax(masked))
            alive[worst] = False
            alive_count -= 1
            contrib -= block[worst, :] + block[:, worst]
        chosen_positions = np.nonzero(alive)[0]
        mass = float(block[np.ix_(chosen_positions, chosen_positions)].sum())
        chosen = [int(members[k]) for k in chosen_positions]
        return [c + 1 for c in chosen], mass

    labels, mass = greedy_from(np.arange(n))
    if mass < threshold:
        return labels
    rng = ensure_rng(seed)
    best_labels, best_mass = labels, mass
    for _ in range(max_restarts):
        candidates = rng.choice(n, size=min(n, max(size, 4 * size)), replace=False)
        labels, mass = greedy_from(np.asarray(sorted(candidates), dtype=np.int64))
        if mass < best_mass:
            best_labels, best_mass = labels, mass
        if best_mass < threshold:
            return best_labels
    if best_mass >= threshold:
        raise RuntimeError(
            f"could not find an index set of size {size} with internal mass < {threshold} "
            f"(best found: {best_mass:.4f}); the matrix may violate Definition 1"
        )
    return best_labels


@dataclass(frozen=True)
class AdversarialPathInstance:
    """The Theorem-1 hard instance: a labeled path plus the hard (s, t) pair.

    Attributes
    ----------
    labels:
        1-based labels for the path nodes ``0 … n-1``.
    segment:
        ``(start, end)`` node range (inclusive/exclusive) holding the sparse
        index set ``I``.
    source, target:
        The pair used in the proof: both inside the segment, ``|S|/3`` from
        either end and ``|S|/3`` apart.
    internal_mass:
        ``Σ_{i≠j∈I} p_{i,j}`` of the chosen set — the expected number of long
        links with both endpoints in the segment.
    """

    labels: np.ndarray
    segment: Tuple[int, int]
    source: int
    target: int
    internal_mass: float


def adversarial_path_labeling(
    matrix: AugmentationMatrix,
    num_nodes: int,
    *,
    seed: RngLike = None,
) -> AdversarialPathInstance:
    """Build Theorem 1's worst-case labeling of the path for *matrix*.

    The path is ``0 - 1 - … - n-1``.  A sparse index set ``I`` of size
    ``⌊√n⌋`` is placed on ``|I|`` consecutive nodes in the middle of the path
    (in arbitrary order, as in the proof); the remaining labels are assigned
    to the remaining nodes arbitrarily (all labels distinct).
    """
    n = check_positive_int(num_nodes, "num_nodes", minimum=4)
    if matrix.size < n:
        raise ValueError(f"matrix of size {matrix.size} cannot label {n} distinct nodes")
    rng = ensure_rng(seed)
    segment_size = max(3, int(np.floor(np.sqrt(n))))
    index_set = find_sparse_index_set(matrix, segment_size, seed=rng)
    start = (n - segment_size) // 2
    end = start + segment_size
    labels = np.zeros(n, dtype=np.int64)
    segment_labels = list(index_set)
    rng.shuffle(segment_labels)
    labels[start:end] = segment_labels
    remaining = [lab for lab in range(1, matrix.size + 1) if lab not in set(index_set)]
    rng.shuffle(remaining)
    outside = [i for i in range(n) if not (start <= i < end)]
    for node, lab in zip(outside, remaining):
        labels[node] = lab
    third = segment_size // 3
    source = start + third
    target = end - 1 - third
    if target <= source:
        source, target = start, end - 1
    return AdversarialPathInstance(
        labels=labels,
        segment=(start, end),
        source=source,
        target=target,
        internal_mass=internal_mass(matrix, index_set),
    )


def block_labeling(num_nodes: int, num_labels: int) -> np.ndarray:
    """Label path node ``i`` with ``⌊i · num_labels / num_nodes⌋ + 1``.

    This is the natural "small label space" labeling used by the Theorem-3
    experiment: with ``num_labels = n^ε`` every label is *popular* (used by
    ``≈ n^{1-ε}`` nodes), which is exactly the regime where the theorem's
    interval argument forbids polylogarithmic greedy diameter.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    k = check_positive_int(num_labels, "num_labels")
    if k > n:
        raise ValueError("cannot use more labels than nodes")
    return (np.arange(n) * k) // n + 1


def popular_interval(
    labels: np.ndarray,
    interval_length: int,
    popularity_threshold: int,
) -> Optional[Tuple[int, int]]:
    """Find an interval of path nodes containing only *popular* labels.

    A label is popular when at least *popularity_threshold* nodes carry it
    (the proof of Theorem 3 uses ``n^α``).  The path ``0 … n-1`` is scanned in
    blocks of *interval_length*; the first block whose labels are all popular
    is returned as ``(start, end)`` (end exclusive), or ``None``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.size
    interval_length = check_positive_int(interval_length, "interval_length")
    popularity_threshold = check_positive_int(popularity_threshold, "popularity_threshold")
    counts = np.bincount(labels)
    popular = set(int(lab) for lab in np.nonzero(counts >= popularity_threshold)[0])
    for start in range(0, n - interval_length + 1, interval_length):
        window = labels[start: start + interval_length]
        if all(int(lab) in popular for lab in window):
            return (start, start + interval_length)
    return None
