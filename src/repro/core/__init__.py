"""Augmentation schemes — the paper's primary contribution.

An *augmented graph* is a pair ``(G, φ)`` where every node ``u`` draws one
extra "long range" link towards a contact ``v`` with probability ``φ_u(v)``.
This package implements every scheme the paper discusses:

* :class:`~repro.core.uniform.UniformScheme` — the name-independent uniform
  scheme, universal with greedy diameter ``O(√n)`` (Peleg's observation),
* :class:`~repro.core.kleinberg.DistancePowerScheme` — Kleinberg's harmonic
  family ``φ_u(v) ∝ dist(u, v)^{-r}`` used as a classical reference point,
* :class:`~repro.core.matrix.MatrixScheme` — schemes defined a priori by an
  augmentation matrix (Definition 1), optionally paired with a node labeling,
* :class:`~repro.core.matrix_label.Theorem2Scheme` — the (M, L) scheme of
  Theorem 2 with ``M = (A + U)/2`` (ancestor matrix + uniform matrix) and the
  labeling derived from a path decomposition; greedy diameter
  ``O(min{ps(G)·log² n, √n})``,
* :class:`~repro.core.ball_scheme.BallScheme` — the a-posteriori scheme of
  Theorem 4 (uniform level ``k``, contact uniform in ``B(u, 2^k)``), the
  paper's main result with greedy diameter ``Õ(n^{1/3})``,
* :mod:`~repro.core.adversarial` — the constructions behind the Ω(√n) and
  label-size lower bounds (Theorems 1 and 3).
"""

from repro.core.base import AugmentationScheme, AugmentedGraph
from repro.core.uniform import UniformScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import AugmentationMatrix, MatrixScheme
from repro.core.matrix_label import Theorem2Scheme, ancestor_matrix, theorem2_matrix
from repro.core.ball_scheme import BallScheme
from repro.core.registry import make_scheme, available_schemes

__all__ = [
    "AugmentationScheme",
    "AugmentedGraph",
    "UniformScheme",
    "DistancePowerScheme",
    "AugmentationMatrix",
    "MatrixScheme",
    "Theorem2Scheme",
    "ancestor_matrix",
    "theorem2_matrix",
    "BallScheme",
    "make_scheme",
    "available_schemes",
]
