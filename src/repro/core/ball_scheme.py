"""The Õ(n^{1/3}) universal augmentation scheme of Theorem 4 — the paper's main result.

The scheme is defined *a posteriori* (it looks at the structure of the graph):

1. every node ``u`` independently picks an integer ``k`` uniformly in
   ``{1, …, ⌈log₂ n⌉}``,
2. its long-range contact is then drawn uniformly at random in the ball
   ``B_k(u) = B(u, 2^k)``.

Equivalently (this is the closed form used by the proof and exposed by
:meth:`BallScheme.contact_distribution`)

    ``φ_u(v) = (1 / ⌈log n⌉) · Σ_{k ≥ r(v)} 1 / |B_k(u)|``

where the *rank* ``r(v)`` of ``v`` is the smallest ``k`` with
``v ∈ B_k(u)``.

Theorem 4 proves greedy routing in ``(G, φ)`` takes ``Õ(n^{1/3})`` expected
steps on every ``n``-node graph, beating the ``√n`` barrier that Theorem 1
shows is unavoidable for name-independent (a-priori) schemes.

Implementation notes
--------------------
* The simulator only ever needs contacts of *visited* nodes, so the distance
  row from ``u`` required to enumerate ``B(u, 2^k)`` is fetched lazily through
  a :class:`repro.graphs.provider.DistanceProvider`'s **query tier** — pass
  the experiment's shared provider to pool those arrays with the routing
  simulator's.  On an exact provider the query tier is the memoised BFS
  cache; on a landmark provider the ball profiles ride the sketch (one tiny
  min-plus reduction per node instead of a full-graph BFS), which is where
  the bulk of landmark mode's BFS savings comes from.
* ``radius_distribution`` lets experiments reweight the choice of ``k`` (the
  paper's ablation question: how much does the uniform-in-``k`` mixture
  matter?).  The default is the paper's uniform distribution.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.distances import UNREACHABLE
from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DistanceProvider
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index

__all__ = ["BallScheme"]


class BallScheme(AugmentationScheme):
    """Theorem 4's ball-based universal augmentation scheme.

    Parameters
    ----------
    graph:
        Underlying connected graph.
    num_levels:
        Number of radius levels (defaults to ``⌈log₂ n⌉`` as in the paper).
    radius_distribution:
        Optional probability vector over levels ``1 … num_levels``; defaults
        to uniform.  Used by the ablation benchmarks.
    seed:
        Seed for the internal generator.
    oracle:
        Optional shared :class:`~repro.graphs.provider.DistanceProvider`.
        Pass the experiment-wide provider so the scheme's ball lookups reuse
        the distance arrays the routing simulator already computed (and vice
        versa); by default the scheme creates a private unbounded exact
        :class:`~repro.graphs.oracle.DistanceOracle`.
    """

    scheme_name = "ball"
    uniforms_per_contact = 2  # level draw + uniform ball-member pick

    def __init__(
        self,
        graph: Graph,
        *,
        num_levels: Optional[int] = None,
        radius_distribution: Optional[Sequence[float]] = None,
        seed: RngLike = None,
        oracle: Optional[DistanceProvider] = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        n = graph.num_nodes
        default_levels = max(1, int(math.ceil(math.log2(n)))) if n > 1 else 1
        self._num_levels = int(num_levels) if num_levels is not None else default_levels
        if self._num_levels < 1:
            raise ValueError("num_levels must be at least 1")
        if radius_distribution is None:
            self._level_probs = np.full(self._num_levels, 1.0 / self._num_levels)
        else:
            probs = np.asarray(list(radius_distribution), dtype=float)
            if probs.shape != (self._num_levels,):
                raise ValueError(
                    f"radius_distribution must have length num_levels={self._num_levels}"
                )
            if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
                raise ValueError("radius_distribution must be a probability vector")
            self._level_probs = probs
        self._level_cumulative = np.cumsum(self._level_probs)
        if oracle is not None and oracle.graph is not graph and not oracle.graph.same_structure(graph):
            raise ValueError("oracle was built for a different graph")
        self._oracle = oracle if oracle is not None else DistanceOracle(graph)
        #: node -> (distances sorted ascending, node ids in the same order),
        #: restricted to the node's component; backs the batched sampler's
        #: "|B(u, r)| = searchsorted" trick.  LRU-capped to the backing
        #: oracle's max_entries AND max_bytes so an oracle configured to
        #: bound memory is not defeated by this secondary per-node cache.
        self._profiles: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self._profile_bytes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_levels(self) -> int:
        """Number of radius levels ``⌈log₂ n⌉`` (or the override)."""
        return self._num_levels

    @property
    def level_probabilities(self) -> np.ndarray:
        """Distribution over the level ``k`` (read-only copy)."""
        return self._level_probs.copy()

    def describe(self) -> str:
        return (
            f"ball scheme (levels={self._num_levels}) on {self.graph.name} "
            f"(n={self.graph.num_nodes})"
        )

    @property
    def oracle(self) -> DistanceProvider:
        """The distance provider backing the scheme's ball lookups."""
        return self._oracle

    def reset_cache(self) -> None:
        """Drop the backing oracle's cached BFS arrays.

        Note: when the scheme was built with a shared ``oracle=`` this clears
        that oracle for *every* subsystem pooling it (e.g. the routing
        simulator's per-target arrays), not just this scheme's entries.
        """
        self._oracle.clear()
        self._profiles.clear()
        self._profile_bytes = 0

    def cache_size(self) -> int:
        """Number of BFS arrays in the backing oracle (for memory accounting).

        With a shared ``oracle=`` this counts entries from every pooled
        subsystem, not only those created by this scheme.
        """
        return self._oracle.cache_size()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _distances_from(self, node: int) -> np.ndarray:
        # Query tier: balls are bulk *estimates*, never trajectories, so a
        # landmark provider may serve them from its sketch.
        return self._oracle.query_distances_from(node)

    def sample_level(self, rng: Optional[np.random.Generator] = None) -> int:
        """Draw the level ``k ∈ {1, …, num_levels}`` from the level distribution."""
        generator = rng if rng is not None else self._rng
        u = generator.random()
        return int(np.searchsorted(self._level_cumulative, u, side="right")) + 1

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        level = self.sample_level(generator)
        radius = 1 << level  # 2^k
        dist = self._distances_from(node)
        members = np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]
        if members.size == 0:
            return None
        return int(members[generator.integers(0, members.size)])

    def _ball_profile(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted distance profile of *node*: ``(sorted distances, node ids)``.

        ``searchsorted(sorted_d, r, "right")`` is ``|B(node, r)|`` and the
        first that many entries of ``ids`` are exactly the ball's members, so
        a uniform member is one index draw away — no per-sample ``nonzero``
        scan over the whole distance array.
        """
        profile = self._profiles.get(node)
        if profile is None:
            dist = self._distances_from(node)
            reachable = np.nonzero(dist != UNREACHABLE)[0]
            order = np.argsort(dist[reachable], kind="stable")
            ids = reachable[order]
            profile = (dist[ids], ids)
            self._profiles[node] = profile
            self._profile_bytes += profile[0].nbytes + profile[1].nbytes
            cap = getattr(self._oracle, "max_entries", None)
            if cap is not None:
                while len(self._profiles) > cap:
                    self._evict_oldest_profile()
            # A byte-budgeted oracle must not be defeated by this secondary
            # cache either: profiles are ~2 full-width arrays per node (16 MB
            # each at n = 10^6), so they honour the same budget.  At least
            # the newest profile always stays resident.
            byte_cap = getattr(self._oracle, "max_bytes", None)
            if byte_cap is not None:
                while len(self._profiles) > 1 and self._profile_bytes > byte_cap:
                    self._evict_oldest_profile()
        else:
            self._profiles.move_to_end(node)
        return profile

    def _evict_oldest_profile(self) -> None:
        _, evicted = self._profiles.popitem(last=False)
        self._profile_bytes -= evicted[0].nbytes + evicted[1].nbytes

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Batched ball sampling: one level draw + one ball pick per entry.

        The distinct nodes of the batch are prefetched through the oracle in a
        single batched frontier sweep (instead of one BFS per first visit),
        then each entry draws its level and picks uniformly inside
        ``B(node, 2^k)`` via the node's sorted distance profile.
        """
        if not self._batch_matches_scalar(BallScheme):
            return super().sample_contacts(nodes, rng)
        generator = rng if rng is not None else self._rng
        nodes = self._coerce_batch(nodes)
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        flat = nodes.reshape(-1)
        out = np.full(flat.shape, NO_CONTACT, dtype=np.int64)
        levels = (
            np.searchsorted(self._level_cumulative, generator.random(flat.size), side="right")
            + 1
        )
        # 2^k, clamped: any radius >= n already covers the whole component.
        radii = np.int64(1) << np.minimum(levels, 62).astype(np.int64)
        uniq, inverse = np.unique(flat, return_inverse=True)
        self._oracle.prefetch_query(uniq.tolist())
        for j, node in enumerate(uniq.tolist()):
            lanes = np.nonzero(inverse == j)[0]
            sorted_d, ids = self._ball_profile(int(node))
            counts = np.searchsorted(sorted_d, radii[lanes], side="right")
            picks = (generator.random(lanes.size) * counts).astype(np.int64)
            nonempty = counts > 0
            out[lanes[nonempty]] = ids[picks[nonempty]]
        return out.reshape(nodes.shape)

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Entry-pure ball sampling: ``uniforms[0]`` → level, ``uniforms[1]`` → member.

        Mirrors :meth:`sample_contacts` draw-for-draw but each entry consumes
        only its own two uniforms, so the pick is a pure function of
        ``(nodes[i], uniforms[:, i])`` (the batch-invariance contract).
        """
        if not self._batch_matches_scalar(BallScheme):
            return super().sample_contacts_from_uniforms(nodes, uniforms)
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        levels = np.searchsorted(self._level_cumulative, uniforms[0], side="right") + 1
        radii = np.int64(1) << np.minimum(levels, 62).astype(np.int64)
        uniq, inverse = np.unique(nodes, return_inverse=True)
        self._oracle.prefetch_query(uniq.tolist())
        for j, node in enumerate(uniq.tolist()):
            lanes = np.nonzero(inverse == j)[0]
            sorted_d, ids = self._ball_profile(int(node))
            counts = np.searchsorted(sorted_d, radii[lanes], side="right")
            picks = (uniforms[1, lanes] * counts).astype(np.int64)
            nonempty = counts > 0
            out[lanes[nonempty]] = ids[picks[nonempty]]
        return out

    def contact_distribution(self, node: int) -> np.ndarray:
        """Exact ``φ_u`` from the closed form ``(1/⌈log n⌉)·Σ_{k ≥ r(v)} 1/|B_k(u)|``."""
        node = check_node_index(node, self._graph.num_nodes)
        dist = self._distances_from(node)
        n = self._graph.num_nodes
        probs = np.zeros(n)
        # Ball sizes for every level.
        ball_sizes = np.zeros(self._num_levels + 1, dtype=np.int64)
        for k in range(1, self._num_levels + 1):
            radius = 1 << k
            ball_sizes[k] = int(np.count_nonzero((dist != UNREACHABLE) & (dist <= radius)))
        for v in range(n):
            d = dist[v]
            if d == UNREACHABLE:
                continue
            # Smallest level whose ball contains v.
            rank = 1
            while rank <= self._num_levels and d > (1 << rank):
                rank += 1
            if rank > self._num_levels:
                continue
            mass = 0.0
            for k in range(rank, self._num_levels + 1):
                if ball_sizes[k] > 0:
                    mass += self._level_probs[k - 1] / ball_sizes[k]
            probs[v] = mass
        return probs
