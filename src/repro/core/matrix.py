"""Matrix-based augmentation schemes (Section 2, Definition 1).

An *augmentation matrix* of size ``k`` is a ``k × k`` matrix ``A = (p_{i,j})``
with non-negative entries and row sums at most one.  Applied to a graph whose
nodes carry labels in ``{1, …, k}``:

* a node labeled ``i`` first picks an index ``j`` with probability
  ``p_{i,j}`` (with probability ``1 - Σ_j p_{i,j}`` it gets no long link),
* then picks its contact uniformly among the nodes labeled ``j``
  (if no node has label ``j`` the link is dropped — the matrix was written
  for a label that does not occur).

When the matrix is used *name-independently* the guarantee must hold for the
worst-case assignment of distinct labels; :mod:`repro.core.adversarial`
constructs such worst-case labelings for Theorem 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index, check_positive_int

__all__ = [
    "AugmentationMatrix",
    "MatrixScheme",
    "uniform_matrix",
    "harmonic_label_matrix",
    "block_diffusion_matrix",
]


class AugmentationMatrix:
    """A validated augmentation matrix (Definition 1).

    Parameters
    ----------
    entries:
        Square array-like with non-negative entries and row sums ≤ 1.
    name:
        Identifier used in reports.
    """

    def __init__(self, entries, *, name: str = "matrix") -> None:
        arr = np.asarray(entries, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError("an augmentation matrix must be square")
        if np.any(arr < -1e-12):
            raise ValueError("augmentation matrix entries must be non-negative")
        row_sums = arr.sum(axis=1)
        if np.any(row_sums > 1.0 + 1e-6):
            worst = int(np.argmax(row_sums))
            raise ValueError(
                f"row {worst} of the augmentation matrix sums to {row_sums[worst]:.6f} > 1"
            )
        self._entries = np.clip(arr, 0.0, None)
        self._name = name

    @property
    def size(self) -> int:
        """Number of labels ``k`` (the matrix is ``k × k``)."""
        return int(self._entries.shape[0])

    @property
    def name(self) -> str:
        return self._name

    @property
    def entries(self) -> np.ndarray:
        """The underlying array (read-only view)."""
        view = self._entries.view()
        view.setflags(write=False)
        return view

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` (0-based) of the matrix."""
        check_node_index(i, self.size, "row")
        return self._entries[i].copy()

    def probability(self, i: int, j: int) -> float:
        """Entry ``p_{i+1, j+1}`` in the paper's 1-based notation."""
        check_node_index(i, self.size, "row")
        check_node_index(j, self.size, "column")
        return float(self._entries[i, j])

    def is_stochastic(self, *, atol: float = 1e-9) -> bool:
        """Whether every row sums to exactly one."""
        return bool(np.allclose(self._entries.sum(axis=1), 1.0, atol=atol))

    def is_name_independent_symmetric(self, *, atol: float = 1e-9) -> bool:
        """Whether every row is a permutation-invariant (constant off-diagonal) row.

        A sufficient condition for the scheme's behaviour to be independent of
        the labeling; the uniform matrix satisfies it.
        """
        off_diag = self._entries.copy()
        np.fill_diagonal(off_diag, np.nan)
        first = off_diag[~np.isnan(off_diag)]
        return bool(first.size == 0 or np.allclose(first, first[0], atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AugmentationMatrix(name={self._name!r}, size={self.size})"


# --------------------------------------------------------------------------- #
# Canonical matrices
# --------------------------------------------------------------------------- #

def uniform_matrix(size: int) -> AugmentationMatrix:
    """The uniform matrix ``U`` with ``u_{i,j} = 1/size`` (the paper's baseline)."""
    size = check_positive_int(size, "size")
    return AugmentationMatrix(np.full((size, size), 1.0 / size), name="uniform")


def harmonic_label_matrix(size: int, exponent: float = 1.0) -> AugmentationMatrix:
    """Name-independent matrix with ``p_{i,j} ∝ |i - j|^{-exponent}``.

    A natural "small-world over labels" candidate; Theorem 1 implies that even
    this (or any other) matrix cannot beat Ω(√n) on the worst-case labeling of
    the path.
    """
    size = check_positive_int(size, "size")
    entries = np.zeros((size, size))
    for i in range(size):
        diffs = np.abs(np.arange(size) - i).astype(float)
        weights = np.zeros(size)
        mask = diffs > 0
        weights[mask] = diffs[mask] ** (-float(exponent))
        total = weights.sum()
        if total > 0:
            entries[i] = weights / total
    return AugmentationMatrix(entries, name=f"harmonic(r={exponent:g})")


def block_diffusion_matrix(size: int, block: int) -> AugmentationMatrix:
    """Name-independent matrix spreading mass uniformly over a window of labels.

    ``p_{i,j} = 1/(2·block+1)`` for ``|i - j| ≤ block`` — a "local diffusion"
    candidate matrix used in the Theorem-1 experiments.
    """
    size = check_positive_int(size, "size")
    block = check_positive_int(block, "block")
    entries = np.zeros((size, size))
    for i in range(size):
        lo = max(0, i - block)
        hi = min(size, i + block + 1)
        entries[i, lo:hi] = 1.0 / (2 * block + 1)
    return AugmentationMatrix(entries, name=f"block(w={block})")


# --------------------------------------------------------------------------- #
# The scheme driven by a matrix + labeling
# --------------------------------------------------------------------------- #

class MatrixScheme(AugmentationScheme):
    """Augmentation scheme defined by an :class:`AugmentationMatrix` and a labeling.

    Parameters
    ----------
    graph:
        Underlying graph.
    matrix:
        Augmentation matrix of size ``k``.
    labels:
        Array of 1-based labels in ``{1, …, k}``, one per node.  Defaults to
        the identity labeling ``L(u) = u + 1`` (which requires ``k ≥ n``).
    seed:
        Seed for the internal generator.
    """

    scheme_name = "matrix"
    uniforms_per_contact = 2  # target-label draw + uniform group-member pick

    def __init__(
        self,
        graph: Graph,
        matrix: AugmentationMatrix,
        labels: Optional[Sequence[int]] = None,
        *,
        seed: RngLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        self._matrix = matrix
        n = graph.num_nodes
        if labels is None:
            if matrix.size < n:
                raise ValueError(
                    f"identity labeling needs a matrix of size >= n = {n}, got {matrix.size}"
                )
            labels_arr = np.arange(1, n + 1, dtype=np.int64)
        else:
            labels_arr = np.asarray(list(labels), dtype=np.int64)
            if labels_arr.shape != (n,):
                raise ValueError("labels must contain exactly one entry per node")
            if labels_arr.min() < 1 or labels_arr.max() > matrix.size:
                raise ValueError(
                    f"labels must lie in [1, {matrix.size}] (matrix size); "
                    f"got range [{labels_arr.min()}, {labels_arr.max()}]"
                )
        self._labels = labels_arr
        self._groups: Dict[int, np.ndarray] = {}
        for node, label in enumerate(self._labels):
            self._groups.setdefault(int(label), []).append(node)  # type: ignore[arg-type]
        self._groups = {label: np.asarray(nodes, dtype=np.int64) for label, nodes in self._groups.items()}
        # Precompute cumulative rows for fast sampling.
        self._cumulative: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> AugmentationMatrix:
        return self._matrix

    @property
    def labels(self) -> np.ndarray:
        """1-based node labels (read-only view)."""
        view = self._labels.view()
        view.setflags(write=False)
        return view

    def nodes_with_label(self, label: int) -> np.ndarray:
        """Sorted array of nodes carrying the (1-based) *label*."""
        return self._groups.get(int(label), np.zeros(0, dtype=np.int64)).copy()

    def describe(self) -> str:
        return (
            f"matrix scheme ({self._matrix.name}, k={self._matrix.size}) on "
            f"{self.graph.name} (n={self.graph.num_nodes})"
        )

    # ------------------------------------------------------------------ #

    def _cumulative_row(self, label: int) -> np.ndarray:
        row = self._cumulative.get(label)
        if row is None:
            row = np.cumsum(self._matrix.entries[label - 1])
            self._cumulative[label] = row
        return row

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        label = int(self._labels[node])
        cumulative = self._cumulative_row(label)
        u = generator.random()
        total = cumulative[-1] if cumulative.size else 0.0
        if u >= total:
            return None  # sub-stochastic row: no long-range link this time
        target_label = int(np.searchsorted(cumulative, u, side="right")) + 1
        candidates = self._groups.get(target_label)
        if candidates is None or candidates.size == 0:
            return None  # the chosen label is not used by any node
        return int(candidates[generator.integers(0, candidates.size)])

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Batched matrix sampling in two vectorized stages.

        Stage 1 groups the batch by *source* label and draws each entry's
        target label by ``searchsorted`` into the cached cumulative matrix
        row (entries beyond the row's total mass draw no link — Definition
        1's sub-stochastic residual).  Stage 2 groups the survivors by
        *target* label and picks a uniform member of each label group.
        """
        if not self._batch_matches_scalar(MatrixScheme):
            return super().sample_contacts(nodes, rng)
        generator = rng if rng is not None else self._rng
        nodes = self._coerce_batch(nodes)
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        flat = nodes.reshape(-1)
        out = np.full(flat.shape, NO_CONTACT, dtype=np.int64)
        target_labels = np.zeros(flat.shape, dtype=np.int64)  # 0 = no link
        source_labels = self._labels[flat]
        for label in np.unique(source_labels).tolist():
            lanes = np.nonzero(source_labels == label)[0]
            cumulative = self._cumulative_row(int(label))
            draws = generator.random(lanes.size)
            total = float(cumulative[-1]) if cumulative.size else 0.0
            picked = np.searchsorted(cumulative, draws, side="right") + 1
            target_labels[lanes] = np.where(draws < total, picked, 0)
        for label in np.unique(target_labels).tolist():
            if label == 0:
                continue
            candidates = self._groups.get(int(label))
            lanes = np.nonzero(target_labels == label)[0]
            if candidates is None or candidates.size == 0:
                continue  # the chosen label is not used by any node
            picks = generator.integers(0, candidates.size, size=lanes.size)
            out[lanes] = candidates[picks]
        return out.reshape(nodes.shape)

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Entry-pure two-stage matrix sampling from caller-supplied uniforms.

        ``uniforms[0]`` drives the target-label draw (values past the row's
        total mass are Definition 1's sub-stochastic residual — no link),
        ``uniforms[1]`` the uniform member pick; each entry consumes only its
        own column, per the batch-invariance contract.
        """
        if not self._batch_matches_scalar(MatrixScheme):
            return super().sample_contacts_from_uniforms(nodes, uniforms)
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        target_labels = np.zeros(nodes.shape, dtype=np.int64)  # 0 = no link
        source_labels = self._labels[nodes]
        for label in np.unique(source_labels).tolist():
            lanes = np.nonzero(source_labels == label)[0]
            cumulative = self._cumulative_row(int(label))
            draws = uniforms[0, lanes]
            total = float(cumulative[-1]) if cumulative.size else 0.0
            picked = np.searchsorted(cumulative, draws, side="right") + 1
            target_labels[lanes] = np.where(draws < total, picked, 0)
        for label in np.unique(target_labels).tolist():
            if label == 0:
                continue
            candidates = self._groups.get(int(label))
            lanes = np.nonzero(target_labels == label)[0]
            if candidates is None or candidates.size == 0:
                continue
            picks = (uniforms[1, lanes] * candidates.size).astype(np.int64)
            out[lanes] = candidates[picks]
        return out

    def contact_distribution(self, node: int) -> np.ndarray:
        node = check_node_index(node, self._graph.num_nodes)
        label = int(self._labels[node])
        row = self._matrix.entries[label - 1]
        probs = np.zeros(self._graph.num_nodes)
        for target_label, mass in enumerate(row, start=1):
            if mass <= 0:
                continue
            candidates = self._groups.get(target_label)
            if candidates is None or candidates.size == 0:
                continue
            probs[candidates] += mass / candidates.size
        return probs
