"""Base interfaces for augmentation schemes and augmented graphs.

The paper's model gives each node a single long-range link whose head is
drawn from a per-node probability distribution ``φ_u``.  Greedy routing then
treats that link exactly like a local edge when comparing distances to the
target.  Two usage modes are supported:

* **lazy sampling** — the routing simulator asks the scheme for node ``u``'s
  contact only when the route actually visits ``u`` (and memoises it for the
  duration of one trial).  This is statistically identical to sampling every
  link upfront because the links are independent, and it is what makes large
  Monte-Carlo sweeps affordable.
* **eager sampling** — :class:`AugmentedGraph` materialises one contact per
  node, which is convenient for inspection, examples and tests.

Since the lane-engine PR the lazy mode has a *batched* spelling:
:meth:`AugmentationScheme.sample_contacts` draws the contacts of a whole
array of nodes in one call (duplicates allowed — each occurrence is an
independent draw, which is what the step-synchronous routing engine in
:mod:`repro.routing.engine` needs when many Monte-Carlo lanes sit on the same
node).  The base class provides a scalar fallback so every scheme supports the
API; the built-in schemes override it with native vectorized samplers
(inverse-CDF / ``searchsorted`` over their cached distributions).  Overrides
must preserve the contract that each entry is an independent draw from
``φ_{nodes[i]}`` — they are free to consume the generator differently from the
scalar path (batched and scalar streams are *statistically* equivalent, not
bitwise).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_node_index

__all__ = ["AugmentationScheme", "AugmentedGraph", "NO_CONTACT"]

#: Sentinel meaning "this node has no long-range link" (augmentation-matrix
#: rows may sum to less than one, Definition 1).
NO_CONTACT: int = -1


class AugmentationScheme(abc.ABC):
    """A collection of probability distributions ``φ = {φ_u}`` over contacts.

    Subclasses implement :meth:`sample_contact` and, when the distribution is
    cheap to write down, :meth:`contact_distribution` (used by the tests to
    check the sampler against the exact probabilities).
    """

    #: short machine-readable identifier used in experiment reports.
    scheme_name: str = "abstract"

    #: Number of uniform variates one contact draw consumes in
    #: :meth:`sample_contacts_from_uniforms` (bounded by
    #: :data:`repro.utils.counterrng.MAX_UNIFORM_ROWS`).  Native overrides
    #: set it to match their sampler's consumption pattern.
    uniforms_per_contact: int = 1

    def __init__(self, graph: Graph, *, seed: RngLike = None) -> None:
        if graph.num_nodes == 0:
            raise ValueError("augmentation requires a non-empty graph")
        self._graph = graph
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # Core interface
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The underlying (non-augmented) graph ``G``."""
        return self._graph

    @abc.abstractmethod
    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        """Draw the long-range contact of *node* from ``φ_node``.

        Returns ``None`` when the node gets no long-range link (allowed by
        Definition 1 for sub-stochastic rows).
        """

    def contact_distribution(self, node: int) -> np.ndarray:
        """Exact distribution ``φ_node`` as a dense array of length ``n``.

        Entries sum to at most one; the missing mass is the probability of
        having no long-range link.  Subclasses override this when feasible;
        the default raises ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an explicit contact distribution"
        )

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw one independent contact per entry of *nodes* (batched sampling).

        Returns an ``int64`` array aligned with *nodes* where ``NO_CONTACT``
        marks entries that drew no long-range link.  Duplicate nodes are
        allowed and each occurrence is an independent draw — the routing
        engine's lanes frequently share a current node.

        The base implementation falls back to one :meth:`sample_contact` call
        per entry; subclasses override it with vectorized samplers.  Batched
        and scalar sampling consume the generator differently, so the two
        spellings agree in distribution but not draw-for-draw.
        """
        generator = rng if rng is not None else self._rng
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        flat = out.reshape(-1)
        for i, u in enumerate(nodes.reshape(-1).tolist()):
            contact = self.sample_contact(int(u), generator)
            if contact is not None:
                flat[i] = int(contact)
        return out

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Draw one contact per entry of *nodes* from caller-supplied uniforms.

        *uniforms* has shape ``(uniforms_per_contact, len(nodes))`` with
        values in ``[0, 1)``; entry ``i`` must be sampled as a **pure
        function of** ``(nodes[i], uniforms[:, i])``, independent of every
        other entry.  That per-entry purity is the *batch-invariance
        contract*: feed counter-based uniforms
        (:func:`repro.utils.counterrng.lane_step_uniforms`) and a lane's
        trajectory no longer depends on which other lanes share its batch —
        the property the serve layer's micro-batching relies on.

        For uniforms drawn uniformly the result is distributed as
        :meth:`sample_contact`.  Native overrides mirror each scheme's
        batched sampler; this base fallback seeds one tiny ``Generator`` per
        entry from its first uniform and delegates to the scalar sampler, so
        subclasses that only override :meth:`sample_contact` stay correct
        (equal in distribution, entry-pure) at scalar-loop speed.
        """
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        for i, u in enumerate(nodes.tolist()):
            entry_rng = np.random.default_rng(int(uniforms[0, i] * 2.0**53))
            contact = self.sample_contact(int(u), entry_rng)
            if contact is not None:
                out[i] = int(contact)
        return out

    def _coerce_uniforms(self, nodes: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Validate a ``(uniforms_per_contact, len(nodes))`` uniform block."""
        uniforms = np.asarray(uniforms, dtype=np.float64)
        if nodes.ndim != 1:
            raise ValueError("sample_contacts_from_uniforms expects a 1-D node batch")
        expected = (type(self).uniforms_per_contact, nodes.shape[0])
        if uniforms.shape != expected:
            raise ValueError(
                f"uniforms must have shape (uniforms_per_contact, len(nodes)) = "
                f"{expected}, got {uniforms.shape}"
            )
        return uniforms

    def _coerce_batch(self, nodes: np.ndarray) -> np.ndarray:
        """Validate a batch of node indices for the native vectorized samplers.

        Returns the batch as a contiguous ``int64`` array of the original
        shape; raises ``IndexError`` on out-of-range entries.
        """
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._graph.num_nodes):
            raise IndexError("node index out of range")
        return nodes

    def _batch_matches_scalar(self, cls: type) -> bool:
        """Whether *cls*'s native batched sampler still describes this scheme.

        A subclass that overrides :meth:`sample_contact` (to change the
        distribution) without also overriding :meth:`sample_contacts` must not
        inherit the parent's vectorized sampler — it samples the *parent's*
        distribution.  Native implementations call this guard and fall back to
        the scalar loop (which honours the override) when the scalar sampler
        is no longer *cls*'s own.
        """
        return type(self).sample_contact is cls.sample_contact

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #

    def sample_all_contacts(self, rng: RngLike = None) -> np.ndarray:
        """Sample one contact per node; entries are node ids or ``NO_CONTACT``.

        Delegates to :meth:`sample_contacts` over ``arange(n)``, so schemes
        with native vectorized samplers serve :meth:`AugmentedGraph.from_scheme`
        and :func:`repro.routing.engine.materialize_contact_table` callers
        through the batched path instead of one Python round-trip per node.
        (For schemes on the scalar fallback this is draw-for-draw identical
        to the historical per-node loop; native samplers consume the
        generator differently — equal in distribution, as per the batched
        sampling contract.)
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        nodes = np.arange(self._graph.num_nodes, dtype=np.int64)
        return self.sample_contacts(nodes, generator)

    def describe(self) -> str:
        """One-line human-readable description (overridable)."""
        return f"{self.scheme_name} on {self._graph.name} (n={self._graph.num_nodes})"

    def reset_cache(self) -> None:
        """Drop any per-node caches (distance arrays etc.).  No-op by default."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(graph={self._graph.name!r}, n={self._graph.num_nodes})"


class AugmentedGraph:
    """A graph together with one concrete sampled long-range link per node.

    This is the object the paper calls ``(G, φ)`` *after* the random choices
    have been made.  Greedy routing on an :class:`AugmentedGraph` is fully
    deterministic.
    """

    def __init__(self, graph: Graph, contacts: np.ndarray) -> None:
        contacts = np.asarray(contacts, dtype=np.int64)
        if contacts.shape != (graph.num_nodes,):
            raise ValueError("contacts must have exactly one entry per node")
        for u, c in enumerate(contacts):
            if c != NO_CONTACT:
                check_node_index(int(c), graph.num_nodes, f"contact of node {u}")
        self._graph = graph
        self._contacts = contacts

    @classmethod
    def from_scheme(cls, scheme: AugmentationScheme, rng: RngLike = None) -> "AugmentedGraph":
        """Sample every node's long-range link from *scheme*."""
        return cls(scheme.graph, scheme.sample_all_contacts(rng))

    @property
    def graph(self) -> Graph:
        """The underlying graph ``G``."""
        return self._graph

    @property
    def contacts(self) -> np.ndarray:
        """Array of long-range contacts (``NO_CONTACT`` marks absent links)."""
        view = self._contacts.view()
        view.setflags(write=False)
        return view

    def contact(self, node: int) -> Optional[int]:
        """The long-range contact of *node*, or ``None``."""
        node = check_node_index(node, self._graph.num_nodes)
        c = int(self._contacts[node])
        return None if c == NO_CONTACT else c

    def long_range_edges(self) -> Dict[int, int]:
        """Mapping ``{u: contact(u)}`` restricted to nodes that have a link."""
        return {
            int(u): int(c)
            for u, c in enumerate(self._contacts)
            if c != NO_CONTACT
        }

    def out_degree(self, node: int) -> int:
        """Local degree plus one if the node has a long-range link."""
        node = check_node_index(node, self._graph.num_nodes)
        return self._graph.degree(node) + (0 if self._contacts[node] == NO_CONTACT else 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        links = int(np.count_nonzero(self._contacts != NO_CONTACT))
        return f"AugmentedGraph(n={self._graph.num_nodes}, long_links={links})"
