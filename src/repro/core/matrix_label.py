"""The (M, L) augmentation scheme of Theorem 2.

Theorem 2 exhibits, for every ``n``, a single matrix ``M`` and a node labeling
``L`` (computable from any path decomposition of the graph) such that greedy
routing in ``(G, (M, L))`` takes ``O(min{ps(G)·log² n, √n})`` expected steps.

The matrix is ``M = (A + U) / 2`` where

* ``U`` is the uniform matrix (``u_{i,j} = 1/n``) — it guarantees the ``√n``
  fallback on graphs with large pathshape, and
* ``A`` is the *ancestor matrix*: ``a_{i,j} = 1/(1 + log n)`` whenever ``j``
  is an ancestor of ``i`` in the dyadic level hierarchy
  (:mod:`repro.decomposition.labeling`), 0 otherwise.  Rows of ``A`` sum to at
  most one because an index of level ``k`` has at most ``ν - k ≤ 1 + log n``
  ancestors within ``[1, n]``.

The labeling ``L`` maps each node to the highest-level bag index of the
interval of bags containing it in a reduced path decomposition; several nodes
may share a label, in which case the contact is drawn uniformly among them
(the paper's convention for non-distinct labels).

:class:`Theorem2Scheme` implements the scheme *implicitly* (no ``n × n`` dense
matrix is materialised, so it scales to large graphs), while
:func:`ancestor_matrix` / :func:`theorem2_matrix` build the explicit matrices
for small ``n`` so tests can check the implicit sampler against Definition 1.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.core.matrix import AugmentationMatrix, uniform_matrix
from repro.decomposition.labeling import integer_ancestors, theorem2_labeling
from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.pathshape import estimate_pathshape
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index, check_positive_int

__all__ = ["Theorem2Scheme", "ancestor_matrix", "theorem2_matrix"]


def ancestor_matrix(size: int) -> AugmentationMatrix:
    """The explicit ancestor matrix ``A`` of Theorem 2 for label space ``{1, …, size}``."""
    size = check_positive_int(size, "size")
    denom = 1.0 + math.log2(size) if size > 1 else 1.0
    entries = np.zeros((size, size))
    for i in range(1, size + 1):
        for j in integer_ancestors(i, max_value=size):
            entries[i - 1, j - 1] = 1.0 / denom
    return AugmentationMatrix(entries, name="ancestor")


def theorem2_matrix(size: int) -> AugmentationMatrix:
    """The explicit matrix ``M = (A + U) / 2`` of Theorem 2 (small sizes only)."""
    a = ancestor_matrix(size).entries
    u = uniform_matrix(size).entries
    return AugmentationMatrix((a + u) / 2.0, name="theorem2")


class Theorem2Scheme(AugmentationScheme):
    """The (M, L) scheme of Theorem 2, sampled implicitly.

    Parameters
    ----------
    graph:
        Underlying connected graph.
    decomposition:
        Optional path decomposition to derive the labeling from.  When
        omitted, :func:`repro.decomposition.pathshape.estimate_pathshape`
        chooses one automatically (exact for paths / caterpillars / trees,
        heuristic otherwise).
    uniform_mixture:
        Weight of the uniform matrix ``U`` in the mixture; the paper's
        ``M = (A + U)/2`` corresponds to the default ``0.5``.  Setting it to
        ``0`` gives the pure ancestor scheme ``A`` (used by the ablation
        experiments to expose the polylog component at simulation scale) and
        ``1`` degenerates to the uniform scheme.
    seed:
        Seed for the internal generator.

    Notes
    -----
    Sampling a contact of a node labeled ``i``:

    1. with probability ``uniform_mixture`` use the uniform part ``U``:
       return a uniform node;
    2. otherwise use the ancestor part ``A``: pick one of the ancestors ``j``
       of ``i`` within ``[1, n]``, each with probability ``1/(1 + log n)``
       (with the residual probability the node gets no long link), then return
       a uniform node among those labeled ``j`` (or no link if the label is
       unused).
    """

    scheme_name = "theorem2"
    uniforms_per_contact = 3  # mixture test + index draw + group-member pick

    def __init__(
        self,
        graph: Graph,
        decomposition: Optional[PathDecomposition] = None,
        *,
        uniform_mixture: float = 0.5,
        seed: RngLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        if not (0.0 <= uniform_mixture <= 1.0):
            raise ValueError("uniform_mixture must lie in [0, 1]")
        self._uniform_mixture = float(uniform_mixture)
        n = graph.num_nodes
        if decomposition is None:
            estimate = estimate_pathshape(graph)
            decomposition = estimate.decomposition
            self._pathshape_estimate = estimate
        else:
            self._pathshape_estimate = None
        reduced = decomposition.reduced()
        if reduced.num_bags > n:
            raise ValueError(
                "path decomposition has more bags than nodes even after reduction"
            )
        self._decomposition = reduced
        self._labels = theorem2_labeling(reduced, n)
        self._groups: Dict[int, np.ndarray] = {}
        for node, label in enumerate(self._labels):
            self._groups.setdefault(int(label), []).append(node)  # type: ignore[arg-type]
        self._groups = {
            label: np.asarray(nodes, dtype=np.int64) for label, nodes in self._groups.items()
        }
        self._denom = 1.0 + math.log2(n) if n > 1 else 1.0
        self._ancestor_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def labels(self) -> np.ndarray:
        """The 1-based labels ``L(u)`` (read-only view)."""
        view = self._labels.view()
        view.setflags(write=False)
        return view

    @property
    def decomposition(self) -> PathDecomposition:
        """The reduced path decomposition the labeling was derived from."""
        return self._decomposition

    @property
    def uniform_mixture(self) -> float:
        """Weight of the uniform matrix ``U`` in the mixture (0.5 in the paper)."""
        return self._uniform_mixture

    @property
    def pathshape_estimate(self):
        """The :class:`PathshapeEstimate` when the decomposition was chosen automatically."""
        return self._pathshape_estimate

    def witnessed_shape(self, *, compute_length: bool = False) -> int:
        """Shape of the decomposition actually used (plugs into the Theorem-2 bound)."""
        return max(1, self._decomposition.shape(self.graph, width_only=not compute_length))

    def describe(self) -> str:
        return (
            f"theorem2 (M,L) scheme on {self.graph.name} "
            f"(n={self.graph.num_nodes}, bags={self._decomposition.num_bags})"
        )

    def reset_cache(self) -> None:
        self._ancestor_cache.clear()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _ancestors_of(self, label: int) -> np.ndarray:
        cached = self._ancestor_cache.get(label)
        if cached is None:
            cached = np.asarray(
                integer_ancestors(label, max_value=self.graph.num_nodes), dtype=np.int64
            )
            self._ancestor_cache[label] = cached
        return cached

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        n = self._graph.num_nodes
        if self._uniform_mixture > 0.0 and generator.random() < self._uniform_mixture:
            # Uniform component (matrix U).
            return int(generator.integers(0, n))
        # Ancestor component (matrix A): each ancestor gets mass 1/(1 + log n).
        label = int(self._labels[node])
        ancestors = self._ancestors_of(label)
        u = generator.random()
        index = int(u * self._denom)
        if index >= ancestors.size:
            return None  # residual mass of the sub-stochastic row A
        target_label = int(ancestors[index])
        candidates = self._groups.get(target_label)
        if candidates is None or candidates.size == 0:
            return None
        return int(candidates[generator.integers(0, candidates.size)])

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Batched (M, L) sampling: split the batch by mixture component.

        Entries falling in the uniform component draw one vectorized uniform
        node; the ancestor-component entries are grouped by label, draw an
        ancestor index each (``⌊u·(1 + log n)⌋``, out-of-range = the row's
        sub-stochastic residual, i.e. no link), and pick a uniform member of
        the chosen ancestor label's group.
        """
        if not self._batch_matches_scalar(Theorem2Scheme):
            return super().sample_contacts(nodes, rng)
        generator = rng if rng is not None else self._rng
        nodes = self._coerce_batch(nodes)
        n = self._graph.num_nodes
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        flat = nodes.reshape(-1)
        out = np.full(flat.shape, NO_CONTACT, dtype=np.int64)
        if self._uniform_mixture > 0.0:
            uniform_mask = generator.random(flat.size) < self._uniform_mixture
        else:
            uniform_mask = np.zeros(flat.size, dtype=bool)
        num_uniform = int(np.count_nonzero(uniform_mask))
        if num_uniform:
            out[uniform_mask] = generator.integers(0, n, size=num_uniform, dtype=np.int64)
        ancestor_lanes = np.nonzero(~uniform_mask)[0]
        if ancestor_lanes.size == 0:
            return out.reshape(nodes.shape)
        target_labels = np.zeros(flat.shape, dtype=np.int64)  # 0 = no link
        source_labels = self._labels[flat[ancestor_lanes]]
        for label in np.unique(source_labels).tolist():
            lanes = ancestor_lanes[source_labels == label]
            ancestors = self._ancestors_of(int(label))
            indices = (generator.random(lanes.size) * self._denom).astype(np.int64)
            in_range = indices < ancestors.size
            target_labels[lanes[in_range]] = ancestors[indices[in_range]]
        for label in np.unique(target_labels).tolist():
            if label == 0:
                continue
            candidates = self._groups.get(int(label))
            lanes = np.nonzero(target_labels == label)[0]
            if candidates is None or candidates.size == 0:
                continue
            picks = generator.integers(0, candidates.size, size=lanes.size)
            out[lanes] = candidates[picks]
        return out.reshape(nodes.shape)

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Entry-pure (M, L) sampling from caller-supplied uniforms.

        ``uniforms[0]`` decides the mixture component; ``uniforms[1]`` is the
        uniform node (U branch) or the ancestor index ``⌊u·(1 + log n)⌋``
        (A branch, out-of-range = no link); ``uniforms[2]`` picks the label
        group's member.  Each entry consumes only its own column, per the
        batch-invariance contract.
        """
        if not self._batch_matches_scalar(Theorem2Scheme):
            return super().sample_contacts_from_uniforms(nodes, uniforms)
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        n = self._graph.num_nodes
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        uniform_mask = uniforms[0] < self._uniform_mixture
        if np.any(uniform_mask):
            out[uniform_mask] = (uniforms[1, uniform_mask] * n).astype(np.int64)
        ancestor_lanes = np.nonzero(~uniform_mask)[0]
        if ancestor_lanes.size == 0:
            return out
        target_labels = np.zeros(nodes.shape, dtype=np.int64)  # 0 = no link
        source_labels = self._labels[nodes[ancestor_lanes]]
        for label in np.unique(source_labels).tolist():
            lanes = ancestor_lanes[source_labels == label]
            ancestors = self._ancestors_of(int(label))
            indices = (uniforms[1, lanes] * self._denom).astype(np.int64)
            in_range = indices < ancestors.size
            target_labels[lanes[in_range]] = ancestors[indices[in_range]]
        for label in np.unique(target_labels).tolist():
            if label == 0:
                continue
            candidates = self._groups.get(int(label))
            lanes = np.nonzero(target_labels == label)[0]
            if candidates is None or candidates.size == 0:
                continue
            picks = (uniforms[2, lanes] * candidates.size).astype(np.int64)
            out[lanes] = candidates[picks]
        return out

    def contact_distribution(self, node: int) -> np.ndarray:
        node = check_node_index(node, self._graph.num_nodes)
        n = self._graph.num_nodes
        mix = self._uniform_mixture
        probs = np.full(n, mix / n)
        label = int(self._labels[node])
        for target_label in self._ancestors_of(label):
            candidates = self._groups.get(int(target_label))
            if candidates is None or candidates.size == 0:
                continue
            probs[candidates] += (1.0 - mix) / (self._denom * candidates.size)
        return probs
