"""Kleinberg-style distance-power augmentation schemes.

Kleinberg's small-world construction (STOC 2000, reference [13] of the paper)
augments the ``d``-dimensional mesh with links drawn with probability
proportional to ``dist(u, v)^{-r}``.  At the critical exponent ``r = d``
greedy routing takes ``O(log² n)`` steps, whereas any other exponent yields a
polynomial number of steps.  The paper cites this as the prototypical
*class-specific* (non-universal) scheme; EXP-7 reproduces the exponent
sensitivity curve as a sanity check of the routing engine.

The implementation works on arbitrary graphs using the graph metric: one BFS
per visited node (cached) yields the distance profile, and the contact is
drawn with ``φ_u(v) ∝ dist(u, v)^{-r}`` for ``v ≠ u``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.base import AugmentationScheme
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index

__all__ = ["DistancePowerScheme"]


class DistancePowerScheme(AugmentationScheme):
    """``φ_u(v) ∝ dist_G(u, v)^{-exponent}`` for ``v ≠ u``.

    ``exponent = 0`` degenerates to the uniform distribution over the other
    nodes; large exponents concentrate the link on the immediate
    neighbourhood.
    """

    scheme_name = "distance_power"

    def __init__(self, graph: Graph, exponent: float, *, seed: RngLike = None) -> None:
        super().__init__(graph, seed=seed)
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self._exponent = float(exponent)
        self._cache: Dict[int, np.ndarray] = {}

    @property
    def exponent(self) -> float:
        """The distance-power exponent ``r``."""
        return self._exponent

    def describe(self) -> str:
        return f"distance_power(r={self._exponent:g}) on {self.graph.name}"

    def reset_cache(self) -> None:
        self._cache.clear()

    def _probabilities(self, node: int) -> np.ndarray:
        probs = self._cache.get(node)
        if probs is not None:
            return probs
        dist = bfs_distances(self._graph, node).astype(float)
        weights = np.zeros(self._graph.num_nodes)
        reachable = (dist > 0) & (dist != UNREACHABLE)
        weights[reachable] = dist[reachable] ** (-self._exponent)
        total = weights.sum()
        probs = weights / total if total > 0 else weights
        self._cache[node] = probs
        return probs

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        probs = self._probabilities(node)
        if probs.sum() <= 0:
            return None
        return int(generator.choice(self._graph.num_nodes, p=probs))

    def contact_distribution(self, node: int) -> np.ndarray:
        node = check_node_index(node, self._graph.num_nodes)
        return self._probabilities(node).copy()
