"""Kleinberg-style distance-power augmentation schemes.

Kleinberg's small-world construction (STOC 2000, reference [13] of the paper)
augments the ``d``-dimensional mesh with links drawn with probability
proportional to ``dist(u, v)^{-r}``.  At the critical exponent ``r = d``
greedy routing takes ``O(log² n)`` steps, whereas any other exponent yields a
polynomial number of steps.  The paper cites this as the prototypical
*class-specific* (non-universal) scheme; EXP-7 reproduces the exponent
sensitivity curve as a sanity check of the routing engine.

The implementation works on arbitrary graphs using the graph metric: one BFS
per visited node (cached) yields the distance profile, and the contact is
drawn with ``φ_u(v) ∝ dist(u, v)^{-r}`` for ``v ≠ u``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index

__all__ = ["DistancePowerScheme"]


class DistancePowerScheme(AugmentationScheme):
    """``φ_u(v) ∝ dist_G(u, v)^{-exponent}`` for ``v ≠ u``.

    ``exponent = 0`` degenerates to the uniform distribution over the other
    nodes; large exponents concentrate the link on the immediate
    neighbourhood.
    """

    scheme_name = "distance_power"

    def __init__(self, graph: Graph, exponent: float, *, seed: RngLike = None) -> None:
        super().__init__(graph, seed=seed)
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self._exponent = float(exponent)
        self._cache: Dict[int, np.ndarray] = {}
        self._cumulative: Dict[int, np.ndarray] = {}

    @property
    def exponent(self) -> float:
        """The distance-power exponent ``r``."""
        return self._exponent

    def describe(self) -> str:
        return f"distance_power(r={self._exponent:g}) on {self.graph.name}"

    def reset_cache(self) -> None:
        self._cache.clear()
        self._cumulative.clear()

    def _probabilities(self, node: int) -> np.ndarray:
        probs = self._cache.get(node)
        if probs is not None:
            return probs
        dist = bfs_distances(self._graph, node).astype(float)
        weights = np.zeros(self._graph.num_nodes)
        reachable = (dist > 0) & (dist != UNREACHABLE)
        weights[reachable] = dist[reachable] ** (-self._exponent)
        total = weights.sum()
        probs = weights / total if total > 0 else weights
        self._cache[node] = probs
        return probs

    def _cumulative_probabilities(self, node: int) -> np.ndarray:
        cumulative = self._cumulative.get(node)
        if cumulative is None:
            cumulative = np.cumsum(self._probabilities(node))
            self._cumulative[node] = cumulative
        return cumulative

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        probs = self._probabilities(node)
        if probs.sum() <= 0:
            return None
        return int(generator.choice(self._graph.num_nodes, p=probs))

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Batched inverse-CDF sampling over the cached per-node distributions.

        One ``searchsorted`` into the node's cumulative distribution per group
        of lanes sharing a node; isolated nodes (zero total mass) draw
        ``NO_CONTACT``.
        """
        if not self._batch_matches_scalar(DistancePowerScheme):
            return super().sample_contacts(nodes, rng)
        generator = rng if rng is not None else self._rng
        nodes = self._coerce_batch(nodes)
        n = self._graph.num_nodes
        if nodes.size == 0:
            return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        flat = nodes.reshape(-1)
        out = np.full(flat.shape, NO_CONTACT, dtype=np.int64)
        uniq, inverse = np.unique(flat, return_inverse=True)
        for j, node in enumerate(uniq.tolist()):
            lanes = np.nonzero(inverse == j)[0]
            cumulative = self._cumulative_probabilities(int(node))
            total = float(cumulative[-1]) if cumulative.size else 0.0
            draws = generator.random(lanes.size)
            if total <= 0.0:
                continue
            picks = np.searchsorted(cumulative, draws * total, side="right")
            out[lanes] = np.minimum(picks, n - 1)
        return out.reshape(nodes.shape)

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Entry-pure inverse-CDF sampling from caller-supplied uniforms.

        Same ``searchsorted`` as :meth:`sample_contacts`, but entry ``i``'s
        pick is a pure function of ``(nodes[i], uniforms[0, i])`` — the
        batch-invariance contract of the base method.
        """
        if not self._batch_matches_scalar(DistancePowerScheme):
            return super().sample_contacts_from_uniforms(nodes, uniforms)
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        n = self._graph.num_nodes
        out = np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
        uniq, inverse = np.unique(nodes, return_inverse=True)
        for j, node in enumerate(uniq.tolist()):
            lanes = np.nonzero(inverse == j)[0]
            cumulative = self._cumulative_probabilities(int(node))
            total = float(cumulative[-1]) if cumulative.size else 0.0
            if total <= 0.0:
                continue
            picks = np.searchsorted(cumulative, uniforms[0, lanes] * total, side="right")
            out[lanes] = np.minimum(picks, n - 1)
        return out

    def contact_distribution(self, node: int) -> np.ndarray:
        node = check_node_index(node, self._graph.num_nodes)
        return self._probabilities(node).copy()
