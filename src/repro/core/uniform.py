"""The uniform (name-independent) augmentation scheme.

Every node draws its long-range contact uniformly at random among all ``n``
nodes.  Peleg observed (as recalled in the paper's introduction) that this
simple universal scheme already guarantees greedy diameter ``O(√n)`` on every
graph: the ball ``B`` of the ``√n`` closest nodes to the target is hit by the
current node's long-range link with probability ``≥ √n / n``, so after an
expected ``√n`` steps the route enters ``B``, from which at most ``√n`` local
steps remain.

Theorem 1 proves this is *optimal* among name-independent matrix schemes, and
Theorem 4's ball scheme is the paper's answer for beating it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_node_index

__all__ = ["UniformScheme"]


class UniformScheme(AugmentationScheme):
    """Uniform long-range links: ``φ_u(v) = 1/n`` for every ``v``.

    Parameters
    ----------
    graph:
        Underlying graph.
    exclude_self:
        When true the contact is drawn uniformly among the other ``n - 1``
        nodes.  The paper's uniform matrix has ``u_{i,j} = 1/n`` including the
        diagonal; the default (``False``) follows the paper (a self-link is
        simply useless for routing).
    seed:
        Seed for the scheme's internal generator (used when no per-trial
        generator is supplied to :meth:`sample_contact`).
    """

    scheme_name = "uniform"

    def __init__(self, graph: Graph, *, exclude_self: bool = False, seed: RngLike = None) -> None:
        super().__init__(graph, seed=seed)
        self._exclude_self = bool(exclude_self)

    def sample_contact(self, node: int, rng: Optional[np.random.Generator] = None) -> Optional[int]:
        node = check_node_index(node, self._graph.num_nodes)
        generator = rng if rng is not None else self._rng
        n = self._graph.num_nodes
        if self._exclude_self:
            if n == 1:
                return None
            contact = int(generator.integers(0, n - 1))
            return contact if contact < node else contact + 1
        return int(generator.integers(0, n))

    def sample_contacts(
        self, nodes: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One vectorized draw for the whole batch (uniform over ``n`` nodes)."""
        if not self._batch_matches_scalar(UniformScheme):
            return super().sample_contacts(nodes, rng)
        generator = rng if rng is not None else self._rng
        nodes = self._coerce_batch(nodes)
        n = self._graph.num_nodes
        if self._exclude_self:
            if n == 1:
                return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
            draws = generator.integers(0, n - 1, size=nodes.shape, dtype=np.int64)
            # Shift draws at or above the excluded index, as in sample_contact.
            return draws + (draws >= nodes)
        return generator.integers(0, n, size=nodes.shape, dtype=np.int64)

    def sample_contacts_from_uniforms(
        self, nodes: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """Inverse-CDF of the uniform draw: ``⌊u·n⌋`` (entry-pure, see base)."""
        if not self._batch_matches_scalar(UniformScheme):
            return super().sample_contacts_from_uniforms(nodes, uniforms)
        nodes = self._coerce_batch(nodes)
        uniforms = self._coerce_uniforms(nodes, uniforms)
        n = self._graph.num_nodes
        if self._exclude_self:
            if n == 1:
                return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)
            draws = (uniforms[0] * (n - 1)).astype(np.int64)
            return draws + (draws >= nodes)
        return (uniforms[0] * n).astype(np.int64)

    def contact_distribution(self, node: int) -> np.ndarray:
        node = check_node_index(node, self._graph.num_nodes)
        n = self._graph.num_nodes
        if self._exclude_self:
            if n == 1:
                return np.zeros(1)
            probs = np.full(n, 1.0 / (n - 1))
            probs[node] = 0.0
            return probs
        return np.full(n, 1.0 / n)
