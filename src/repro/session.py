"""The session facade: one stable entry point over graph + oracle + engines.

Programmatic users used to wire a scheme, a :class:`DistanceOracle` (or a
:class:`GraphStore`), a kernel backend and ``estimate_expected_steps`` by
hand — and the serve daemon would have had to repeat that wiring.
:func:`open_session` owns the whole stack:

* instance acquisition through a :class:`~repro.graphs.store.GraphStore`
  (cross-session cache; pass ``store=`` to pool instances across sessions),
* kernel-backend selection (``kernel_backend="numba"`` etc., warmed up front),
* oracle warmup (:meth:`RoutingSession.warm` pins routing blocks for a pool
  of targets ahead of traffic),
* batched estimation (:meth:`RoutingSession.route_many`,
  :meth:`RoutingSession.estimate_diameter`) and **served queries**
  (:meth:`RoutingSession.route` / :meth:`RoutingSession.route_queries`).

Served-query seed policy
------------------------
Every served query routes exactly one lane whose 64-bit seed is::

    seed = sha256(f"{session_seed}:serve:{source}:{target}:{nonce}")[:8]  (big-endian)

(:func:`derive_query_seed`).  The trajectory is a pure function of
``(graph, scheme, seed)`` — counter-based sampling, see
:func:`repro.routing.engine.route_lanes` — so results are identical whether a
query is served alone, micro-batched by the daemon, or recomputed later by a
client auditing a response.  Repeating a query with a new ``nonce`` draws a
fresh independent trajectory.

Pinned routing blocks
---------------------
Serving traffic keeps hitting a warm pool of targets; the session maintains
an **append-only pinned target list** whose tuple keys the oracle's
single-slot block cache.  Steady-state batches over warmed targets reuse the
blocks with zero copying; a new target appends to the tuple (refilling only
its own row, thanks to the oracle's growth-preserving storage); when the pool
exceeds ``max_block_targets`` the pin resets to the current batch's targets.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import AugmentationScheme
from repro.core.registry import make_scheme
from repro.graphs import kernels
from repro.graphs.families import build_family_graph
from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DISTANCE_MODES, DistanceProvider
from repro.graphs.store import GraphStore
from repro.routing.simulator import (
    QueryOutcome,
    RoutingEstimate,
    estimate_expected_steps,
    estimate_greedy_diameter,
    route_queries,
)
from repro.utils.rng import RngLike

__all__ = ["RoutingSession", "open_session", "derive_query_seed"]

#: Default cap on the pinned-block target pool (50k-node rows are ~0.8 MB
#: a pair, so 256 pinned targets stay around 200 MB at the benchmark size).
DEFAULT_MAX_BLOCK_TARGETS = 256


def derive_query_seed(session_seed: int, source: int, target: int, nonce: int = 0) -> int:
    """The serve layer's seed policy: a 64-bit seed from (session, query, nonce).

    Deterministic and arrival-order independent — any party knowing the
    session seed can recompute the exact trajectory of any served query.
    """
    payload = f"{int(session_seed)}:serve:{int(source)}:{int(target)}:{int(nonce)}"
    digest = hashlib.sha256(payload.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def open_session(
    family: str,
    n: int,
    *,
    seed: int = 0,
    scheme: str = "uniform",
    scheme_kwargs: Optional[dict] = None,
    store: Optional[GraphStore] = None,
    oracle_max_bytes: Optional[int] = None,
    distance_mode: str = "exact",
    landmarks: int = 16,
    kernel_backend: Optional[str] = None,
    warm_targets: Iterable[int] = (),
) -> "RoutingSession":
    """Open a :class:`RoutingSession` over one ``(family, n, seed)`` instance.

    Parameters
    ----------
    family:
        A :data:`~repro.graphs.families.GRAPH_FAMILIES` name.
    n, seed:
        Instance size and master seed.  The seed drives graph generation,
        the scheme's internal generator *and* the served-query seed policy.
    scheme:
        Registered scheme name (see :func:`repro.core.registry.make_scheme`);
        ``scheme_kwargs`` are forwarded to its constructor.
    store:
        Optional shared :class:`~repro.graphs.store.GraphStore`; by default
        the session creates a private store (``oracle_max_bytes`` /
        ``distance_mode`` / ``landmarks`` configure its providers).  When a
        *store* is given, its own provider configuration wins — pass a store
        built with the wanted ``distance_mode``.
    distance_mode:
        Distance provider mode for the session's instance: ``"exact"``
        (default) or ``"landmark"`` (pivot sketch for bulk queries; served
        trajectories always use the exact tier, so routed outcomes are
        mode-independent).
    landmarks:
        Pivot count for ``distance_mode="landmark"``.
    kernel_backend:
        Optional BFS/hop-table kernel backend, selected and warmed before any
        BFS runs (results are backend-invariant).
    warm_targets:
        Targets whose routing blocks are pinned before the session is
        returned — the daemon's "warm pool".
    """
    if distance_mode not in DISTANCE_MODES:
        raise ValueError(
            f"unknown distance_mode {distance_mode!r}; "
            f"available: {', '.join(DISTANCE_MODES)}"
        )
    if kernel_backend:
        kernels.set_backend(kernel_backend)
        kernels.warmup_active()
    if store is None:
        store = GraphStore(
            oracle_max_bytes=oracle_max_bytes,
            distance_mode=distance_mode,
            landmarks=landmarks,
        )
    entry = store.instance(family, n, seed, lambda size, s: build_family_graph(family, size, s))
    try:
        scheme_obj = make_scheme(scheme, entry.graph, seed=seed, **(scheme_kwargs or {}))
    except KeyError as exc:
        # The registry raises KeyError; the session surface promises ValueError
        # for every bad-argument path (family, scheme, sizes alike).
        raise ValueError(exc.args[0]) from exc
    session = RoutingSession(
        graph=entry.graph,
        scheme=scheme_obj,
        oracle=entry.oracle,
        family=family,
        requested_n=n,
        seed=seed,
        scheme_name=scheme,
        store=store,
    )
    warm = list(warm_targets)
    if warm:
        session.warm(warm)
    return session


class RoutingSession:
    """A warmed ``(graph, scheme, oracle)`` triple behind one query surface.

    Built by :func:`open_session`; constructable directly for tests or for
    schemes/graphs outside the family registry.
    """

    def __init__(
        self,
        graph: Graph,
        scheme: AugmentationScheme,
        oracle: Optional[DistanceProvider] = None,
        *,
        family: Optional[str] = None,
        requested_n: Optional[int] = None,
        seed: int = 0,
        scheme_name: Optional[str] = None,
        store: Optional[GraphStore] = None,
        max_block_targets: int = DEFAULT_MAX_BLOCK_TARGETS,
    ) -> None:
        if scheme.graph is not graph and not scheme.graph.same_structure(graph):
            raise ValueError("scheme was built for a different graph")
        self._graph = graph
        self._scheme = scheme
        self._oracle = oracle if oracle is not None else DistanceOracle(graph)
        self._family = family
        self._requested_n = requested_n
        self._seed = int(seed)
        self._scheme_name = scheme_name or scheme.scheme_name
        self._store = store
        if max_block_targets < 1:
            raise ValueError("max_block_targets must be at least 1")
        self._max_block_targets = int(max_block_targets)
        self._pinned: List[int] = []
        self._pinned_rows: Dict[int, int] = {}
        self._block_resets = 0
        self._queries_served = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def scheme(self) -> AugmentationScheme:
        return self._scheme

    @property
    def oracle(self) -> DistanceProvider:
        return self._oracle

    @property
    def seed(self) -> int:
        """The session's master seed (anchors the served-query seed policy)."""
        return self._seed

    @property
    def warmed_targets(self) -> Tuple[int, ...]:
        """Targets whose routing blocks are currently pinned."""
        return tuple(self._pinned)

    def info(self) -> dict:
        """Machine-readable session descriptor (the daemon's ``info`` op)."""
        out = {
            "family": self._family,
            "n": self._graph.num_nodes,
            "requested_n": self._requested_n,
            "seed": self._seed,
            "scheme": self._scheme_name,
            "graph": self._graph.name,
            "kernel_backend": kernels.backend_stats()["active"],
            "warmed_targets": list(self._pinned),
            "queries_served": self._queries_served,
            "block_resets": self._block_resets,
            "distance_mode": getattr(self._oracle, "mode", "exact"),
        }
        if out["distance_mode"] != "exact":
            stats = self._oracle.distance_stats()
            out["landmarks"] = stats.get("landmarks")
            out["mean_stretch"] = stats.get("mean_stretch")
        return out

    # ------------------------------------------------------------------ #
    # Pinned routing blocks
    # ------------------------------------------------------------------ #

    def warm(self, targets: Iterable[int]) -> None:
        """Pin routing blocks for *targets* ahead of traffic."""
        self._ensure_blocks([int(t) for t in targets])

    def _ensure_blocks(self, targets: Sequence[int]) -> tuple:
        """Routing blocks covering *targets*: ``(dist, next_local, {t: row})``.

        Keeps the pinned target list append-only so the tuple handed to
        :meth:`DistanceOracle.routing_blocks` is stable (single-slot cache
        hit) or an extension of the previous one (only new rows refill).
        Resets the pool when it would exceed ``max_block_targets``.
        """
        fresh = sorted({int(t) for t in targets} - self._pinned_rows.keys())
        if fresh:
            if len(self._pinned) + len(fresh) > self._max_block_targets:
                self._pinned = sorted({int(t) for t in targets})
                self._block_resets += 1
            else:
                self._pinned.extend(fresh)
            self._pinned_rows = {t: i for i, t in enumerate(self._pinned)}
        dist_block, next_local_block = self._oracle.routing_blocks(tuple(self._pinned))
        return dist_block, next_local_block, self._pinned_rows

    # ------------------------------------------------------------------ #
    # Served queries (single-trial, seed-policy lanes)
    # ------------------------------------------------------------------ #

    def query_seed(self, source: int, target: int, nonce: int = 0) -> int:
        """The lane seed this session assigns to ``(source, target, nonce)``."""
        return derive_query_seed(self._seed, source, target, nonce)

    def route(self, source: int, target: int, *, nonce: int = 0) -> QueryOutcome:
        """Serve one query under the session seed policy."""
        return self.route_queries([(source, target, self.query_seed(source, target, nonce))])[0]

    def route_queries(self, queries: Sequence[Tuple[int, int, int]]) -> List[QueryOutcome]:
        """Serve a batch of ``(source, target, seed)`` queries in one sweep.

        Outcomes are trajectory-identical to serving each query alone — the
        micro-batcher's correctness rests on this method, and the contract is
        pinned by ``tests/serve``.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        queries = [(int(s), int(t), int(q)) for (s, t, q) in queries]
        n = self._graph.num_nodes
        in_range = [t for (_, t, _) in queries if 0 <= t < n]
        blocks = self._ensure_blocks(in_range) if in_range else None
        outcomes = route_queries(
            self._graph,
            self._scheme,
            queries,
            oracle=self._oracle,
            blocks=blocks,
        )
        self._queries_served += len(queries)
        return outcomes

    # ------------------------------------------------------------------ #
    # Batched estimation (the redesigned programmatic surface)
    # ------------------------------------------------------------------ #

    def route_many(
        self,
        pairs: Sequence[Tuple[int, int]],
        *,
        trials: int = 16,
        seed: RngLike = None,
        max_steps: Optional[int] = None,
        engine: str = "lane",
    ) -> RoutingEstimate:
        """Estimate ``E(φ, s, t)`` over *pairs* (session-owned oracle).

        The stable replacement for calling ``estimate_expected_steps`` with
        hand-wired plumbing; ``seed`` defaults to the session seed.
        """
        return estimate_expected_steps(
            self._graph,
            self._scheme,
            pairs,
            trials=trials,
            seed=self._seed if seed is None else seed,
            max_steps=max_steps,
            oracle=self._oracle,
            engine=engine,
        )

    def estimate_diameter(
        self,
        *,
        num_pairs: int = 16,
        trials: int = 16,
        seed: RngLike = None,
        pair_strategy: str = "extremal",
        max_steps: Optional[int] = None,
        engine: str = "lane",
    ) -> RoutingEstimate:
        """Greedy-diameter estimate through the session-owned oracle."""
        return estimate_greedy_diameter(
            self._graph,
            self._scheme,
            num_pairs=num_pairs,
            trials=trials,
            seed=self._seed if seed is None else seed,
            pair_strategy=pair_strategy,
            max_steps=max_steps,
            oracle=self._oracle,
            engine=engine,
        )

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the pinned blocks and refuse further served queries.

        Idempotent; the store keeps the graph instance for future sessions.
        """
        self._closed = True
        self._pinned = []
        self._pinned_rows = {}

    def __enter__(self) -> "RoutingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingSession(family={self._family!r}, n={self._graph.num_nodes}, "
            f"scheme={self._scheme_name!r}, seed={self._seed})"
        )
