"""Small text helpers shared across layers."""

from __future__ import annotations

import re

__all__ = ["slugify"]


def slugify(text: str) -> str:
    """Filesystem-safe slug (family names may contain ``/``, spaces, ``=``).

    Used for both the sweep's artifact filenames and the GraphStore's spill
    filenames — one implementation, so the two naming schemes can never
    drift apart.
    """
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")
    return slug or "x"
