"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """Context manager measuring elapsed wall-clock time in seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimer:
    """Accumulates named timing stages; used for experiment progress reports."""

    stages: Dict[str, float] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def time(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def record(self, name: str, seconds: float) -> None:
        if name not in self.stages:
            self.order.append(name)
            self.stages[name] = 0.0
        self.stages[name] += seconds

    def total(self) -> float:
        return sum(self.stages.values())

    def report(self) -> str:
        lines = [f"{name}: {self.stages[name]:.3f}s" for name in self.order]
        lines.append(f"total: {self.total():.3f}s")
        return "\n".join(lines)


class _StageContext:
    def __init__(self, timer: StageTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)
