"""Argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Iterable

import numpy as np


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an integer ``>= minimum`` and return it."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_node_index(node: int, num_nodes: int, name: str = "node") -> int:
    """Validate that *node* is a valid index in ``[0, num_nodes)``."""
    if not isinstance(node, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(node).__name__}")
    if node < 0 or node >= num_nodes:
        raise ValueError(f"{name} {node} out of range [0, {num_nodes})")
    return int(node)


def check_probabilities(
    probs: Iterable[float],
    *,
    name: str = "probabilities",
    require_stochastic: bool = False,
    atol: float = 1e-9,
) -> np.ndarray:
    """Validate a probability vector.

    Rows of augmentation matrices (Definition 1 of the paper) are allowed to
    sum to *at most* one; set ``require_stochastic=True`` to additionally
    require the sum to equal one.
    """
    arr = np.asarray(list(probs) if not isinstance(probs, np.ndarray) else probs, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if np.any(arr < -atol):
        raise ValueError(f"{name} contains negative entries")
    total = float(arr.sum())
    if total > 1.0 + 1e-6:
        raise ValueError(f"{name} sums to {total} > 1")
    if require_stochastic and abs(total - 1.0) > 1e-6:
        raise ValueError(f"{name} sums to {total} != 1")
    return arr
