"""Shared utilities: random-number handling, timing, validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_probabilities,
    check_node_index,
    check_positive_int,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_probabilities",
    "check_node_index",
    "check_positive_int",
]
