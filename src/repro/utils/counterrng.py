"""Counter-based uniform variates for batch-invariant lane sampling.

The lane engine's default sampling mode draws every active lane's contact
from **one shared generator per batch** — fast, but the draw a lane sees then
depends on which *other* lanes happen to share its batch.  That is fine for
Monte-Carlo estimates (any batching is equal in distribution) and fatal for a
query service, where the same ``(source, target, seed)`` query must walk the
same trajectory whether it was served alone or micro-batched with a thousand
strangers.

This module provides the alternative: **counter-based** uniforms.  Each lane
carries a 64-bit ``lane_seed``; the uniforms consumed at step ``s`` are a pure
hash of ``(lane_seed, s, variate index)`` — no shared stream, no state, no
order dependence.  A lane's trajectory becomes a function of
``(graph, scheme, lane_seed)`` alone, so batch composition provably cannot
change it.

The hash is splitmix64's finalizer (Steele, Lea & Flood's SplittableRandom /
xorshift-family mixing step), applied twice with the golden-ratio increment to
decorrelate the seed from the counter.  It is vectorized over numpy ``uint64``
arrays (wrapping arithmetic) and converts to doubles the standard way: keep
the top 53 bits, scale by ``2^-53`` — uniforms lie in ``[0, 1)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MAX_UNIFORM_ROWS", "mix64", "lane_step_uniforms"]

#: Upper bound on the per-step variate rows a scheme may request
#: (:attr:`~repro.core.base.AugmentationScheme.uniforms_per_contact`).  The
#: step counter is multiplied by this stride so every (step, row) pair maps to
#: a distinct hash input.
MAX_UNIFORM_ROWS: int = 4

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_11 = np.uint64(11)
_TO_UNIT = 2.0 ** -53


def mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a ``uint64`` array."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> _SHIFT_30
    x *= _MIX_1
    x ^= x >> _SHIFT_27
    x *= _MIX_2
    x ^= x >> _SHIFT_31
    return x


def lane_step_uniforms(seeds: np.ndarray, steps: np.ndarray, rows: int) -> np.ndarray:
    """Uniforms in ``[0, 1)`` for each (lane, step): shape ``(rows, len(seeds))``.

    ``out[j, i]`` is a pure function of ``(seeds[i], steps[i], j)`` — the
    batch-invariance contract.  *rows* is the scheme's
    ``uniforms_per_contact`` and must not exceed :data:`MAX_UNIFORM_ROWS`.
    """
    if not 1 <= rows <= MAX_UNIFORM_ROWS:
        raise ValueError(f"rows must lie in [1, {MAX_UNIFORM_ROWS}], got {rows}")
    seeds = np.asarray(seeds, dtype=np.uint64)
    counters = np.asarray(steps).astype(np.uint64) * np.uint64(MAX_UNIFORM_ROWS)
    out = np.empty((rows, seeds.size), dtype=np.float64)
    for j in range(rows):
        # Two finalizer rounds: one keyed by the (step, row) counter, one by
        # the lane seed xor'd with it — the golden-ratio stride keeps nearby
        # counters far apart in hash space.
        h = mix64(seeds ^ mix64((counters + np.uint64(j + 1)) * _GOLDEN))
        out[j] = (h >> _SHIFT_11) * _TO_UNIT
    return out
