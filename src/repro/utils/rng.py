"""Random-number-generator helpers.

All stochastic code in the package accepts either an integer seed, ``None`` or
an existing :class:`numpy.random.Generator` and normalises it through
:func:`ensure_rng`.  This keeps experiments reproducible end to end: a single
seed at the experiment level deterministically derives every per-trial stream
via :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {seed!r} as a random generator or seed")


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Deterministically derive *count* independent generators from *seed*.

    Used to give each Monte-Carlo trial (or each parallel worker) its own
    stream so that results do not depend on evaluation order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def choice_from_probabilities(
    rng: np.random.Generator,
    items: Iterable[int],
    probabilities: Iterable[float],
    *,
    allow_none: bool = True,
) -> Optional[int]:
    """Sample one of *items* with the given *probabilities*.

    The probabilities may sum to less than one; the residual mass corresponds
    to "no choice" and returns ``None`` (this mirrors Definition 1 of the
    paper, where augmentation-matrix rows need not be stochastic).
    """
    items = list(items)
    probs = np.asarray(list(probabilities), dtype=float)
    if len(items) != len(probs):
        raise ValueError("items and probabilities must have the same length")
    if np.any(probs < -1e-12):
        raise ValueError("probabilities must be non-negative")
    total = float(probs.sum())
    if total > 1.0 + 1e-9:
        raise ValueError(f"probabilities sum to {total} > 1")
    u = rng.random()
    acc = 0.0
    for item, p in zip(items, probs):
        acc += p
        if u < acc:
            return item
    if allow_none:
        return None
    # Numerical slack: fall back to the last item when the row is stochastic.
    if items and total > 1.0 - 1e-9:
        return items[-1]
    return None
