"""repro — reproduction of *Universal augmentation schemes for network navigability:
overcoming the √n-barrier* (Fraigniaud, Gavoille, Kosowski, Lebhar, Lotker, SPAA 2007).

The package implements, from scratch on top of numpy:

* a graph substrate (:mod:`repro.graphs`) with generators, BFS/distance
  machinery and balls,
* tree / path decompositions, the *shape* measure and the pathshape parameter
  introduced by the paper (:mod:`repro.decomposition`),
* every augmentation scheme discussed in the paper — uniform, Kleinberg
  distance-power, matrix-based name-independent schemes, the (M, L) scheme of
  Theorem 2 and the Õ(n^{1/3}) ball scheme of Theorem 4 — plus the adversarial
  constructions of the lower bounds (:mod:`repro.core`),
* a greedy-routing engine with Monte-Carlo estimation of the greedy diameter
  (:mod:`repro.routing`),
* scaling analysis and the per-theorem experiment harness
  (:mod:`repro.analysis`, :mod:`repro.experiments`).

Quickstart
----------

>>> from repro import generators, BallScheme, estimate_greedy_diameter
>>> g = generators.cycle_graph(512)
>>> scheme = BallScheme(g, seed=1)
>>> result = estimate_greedy_diameter(g, scheme, num_pairs=16, trials=8, seed=2)
>>> result.mean < 512
True
"""

from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.builders import GraphBuilder
from repro.core.base import AugmentationScheme, AugmentedGraph
from repro.core.uniform import UniformScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import AugmentationMatrix, MatrixScheme
from repro.core.matrix_label import Theorem2Scheme
from repro.core.ball_scheme import BallScheme
from repro.core.registry import make_scheme, available_schemes
from repro.routing.simulator import (
    estimate_expected_steps,
    estimate_greedy_diameter,
)
from repro.routing.greedy import greedy_route
from repro.decomposition.pathshape import estimate_pathshape

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "AugmentationScheme",
    "AugmentedGraph",
    "UniformScheme",
    "DistancePowerScheme",
    "AugmentationMatrix",
    "MatrixScheme",
    "Theorem2Scheme",
    "BallScheme",
    "make_scheme",
    "available_schemes",
    "greedy_route",
    "estimate_expected_steps",
    "estimate_greedy_diameter",
    "estimate_pathshape",
    "__version__",
]
