"""repro — reproduction of *Universal augmentation schemes for network navigability:
overcoming the √n-barrier* (Fraigniaud, Gavoille, Kosowski, Lebhar, Lotker, SPAA 2007).

The package implements, from scratch on top of numpy:

* a graph substrate (:mod:`repro.graphs`) with generators, BFS/distance
  machinery and balls,
* tree / path decompositions, the *shape* measure and the pathshape parameter
  introduced by the paper (:mod:`repro.decomposition`),
* every augmentation scheme discussed in the paper — uniform, Kleinberg
  distance-power, matrix-based name-independent schemes, the (M, L) scheme of
  Theorem 2 and the Õ(n^{1/3}) ball scheme of Theorem 4 — plus the adversarial
  constructions of the lower bounds (:mod:`repro.core`),
* a greedy-routing engine with Monte-Carlo estimation of the greedy diameter
  (:mod:`repro.routing`),
* scaling analysis and the per-theorem experiment harness
  (:mod:`repro.analysis`, :mod:`repro.experiments`).

Quickstart
----------

>>> from repro import generators, BallScheme, estimate_greedy_diameter
>>> g = generators.cycle_graph(512)
>>> scheme = BallScheme(g, seed=1)
>>> result = estimate_greedy_diameter(g, scheme, num_pairs=16, trials=8, seed=2)
>>> result.mean < 512
True

Or, for repeated queries against one instance, the session API — it owns
instance acquisition, oracle warmup and kernel-backend selection, and is
what ``repro serve`` runs behind its TCP daemon:

>>> from repro import open_session
>>> with open_session("ring", 512, seed=0, scheme="uniform") as session:
...     outcome = session.route(3, 400)
...     outcome.success
True
"""

import warnings as _warnings

from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.builders import GraphBuilder
from repro.graphs.families import GRAPH_FAMILIES, build_family_graph
from repro.graphs.provider import DISTANCE_MODES, DistanceProvider, make_distance_provider
from repro.core.base import AugmentationScheme, AugmentedGraph
from repro.core.uniform import UniformScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import AugmentationMatrix, MatrixScheme
from repro.core.matrix_label import Theorem2Scheme
from repro.core.ball_scheme import BallScheme
from repro.core.registry import make_scheme, available_schemes
from repro.routing.simulator import estimate_greedy_diameter
from repro.routing.greedy import greedy_route
from repro.decomposition.pathshape import estimate_pathshape
from repro.session import RoutingSession, derive_query_seed, open_session

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "GRAPH_FAMILIES",
    "build_family_graph",
    "DISTANCE_MODES",
    "DistanceProvider",
    "make_distance_provider",
    "AugmentationScheme",
    "AugmentedGraph",
    "UniformScheme",
    "DistancePowerScheme",
    "AugmentationMatrix",
    "MatrixScheme",
    "Theorem2Scheme",
    "BallScheme",
    "make_scheme",
    "available_schemes",
    "greedy_route",
    "estimate_expected_steps",
    "estimate_greedy_diameter",
    "estimate_pathshape",
    "RoutingSession",
    "open_session",
    "derive_query_seed",
    "__version__",
]


def estimate_expected_steps(*args, **kwargs):
    """Deprecated top-level alias for batched Monte-Carlo step estimation.

    .. deprecated:: 1.1
        ``repro.estimate_expected_steps`` remains for backward compatibility
        but now emits a :class:`DeprecationWarning`.  Prefer
        :meth:`RoutingSession.route_many` (which reuses the session's warmed
        oracle), or import the function directly from
        :mod:`repro.routing.simulator` for one-off estimates.
    """
    _warnings.warn(
        "repro.estimate_expected_steps is deprecated; use "
        "repro.open_session(...).route_many(...) or import "
        "estimate_expected_steps from repro.routing.simulator",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.routing.simulator import estimate_expected_steps as _impl

    return _impl(*args, **kwargs)
