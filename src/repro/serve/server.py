"""The asyncio TCP server: NDJSON requests in, micro-batched lane sweeps out.

Each connection is read line by line; every request becomes its own task so a
single connection can pipeline hundreds of queries.  ``route`` requests are
stamped with the session's seed policy and awaited through the
:class:`~repro.serve.batcher.MicroBatcher`; responses are written under a
per-connection lock (tasks complete out of order — the protocol's ``id``
field is what keeps clients sane).

Shutdown is graceful: :meth:`RouteServer.stop` stops accepting connections,
waits for request tasks already accepted, drains the batcher (every accepted
query gets its response) and only then closes the connections.

The server is distance-provider agnostic: it talks to the session, and the
session talks to whatever :class:`~repro.graphs.provider.DistanceProvider`
it was opened with.  The ``info`` op therefore surfaces the session's
``distance_mode`` (plus ``landmarks`` / ``mean_stretch`` in landmark mode)
without any serve-layer wiring — served trajectories themselves always ride
the provider's exact tier, so routed outcomes are mode-independent.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.session import RoutingSession

__all__ = ["RouteServer"]


class RouteServer:
    """Serve a :class:`~repro.session.RoutingSession` over NDJSON TCP.

    Parameters
    ----------
    session:
        The warmed session answering the queries.
    host, port:
        Bind address; ``port=0`` lets the OS pick (see :attr:`port`).
    max_batch, window:
        Micro-batcher flush thresholds (queries, seconds).
    """

    def __init__(
        self,
        session: RoutingSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 512,
        window: float = 0.001,
    ) -> None:
        self._session = session
        self._host = host
        self._requested_port = int(port)
        self._batcher = MicroBatcher(
            self._route_batch, max_batch=max_batch, window=window
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._request_tasks: set = set()
        self._writers: set = set()
        self._stopping = False

    def _route_batch(self, items):
        """Runner for the batcher: one lane sweep over the batch (worker thread)."""
        return self._session.route_queries(items)

    @property
    def session(self) -> RoutingSession:
        return self._session

    @property
    def batcher(self) -> MicroBatcher:
        return self._batcher

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._requested_port

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._requested_port,
            limit=protocol.MAX_LINE_BYTES,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful shutdown: drain accepted queries, then close connections."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Requests already read off a socket run to completion ...
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        # ... which requires the batcher to flush what they submitted.
        await self._batcher.close()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer, write_lock, protocol.error_response(None, "request line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_request(line, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client vanished, or the loop is tearing the handler down
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except RuntimeError:  # event loop already closed
                pass

    async def _handle_request(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        request_id = None
        try:
            message = protocol.decode_request(line)
            request_id = message.get("id")
            op = message["op"]
            if op == "ping":
                response = {"id": request_id, "ok": True, "op": "ping"}
            elif op == "info":
                response = {"id": request_id, "ok": True, "op": "info"}
                response.update(self._session.info())
                response["max_batch"] = self._batcher.max_batch
                response["window_ms"] = self._batcher.window * 1000.0
                response["batcher"] = dict(self._batcher.stats)
            else:  # route
                source, target, nonce = protocol.parse_route_request(message)
                seed = self._session.query_seed(source, target, nonce)
                started = time.perf_counter()
                outcome = await self._batcher.submit((source, target, seed))
                latency_ms = (time.perf_counter() - started) * 1000.0
                response = protocol.route_response(request_id, outcome, latency_ms)
        except protocol.ProtocolError as exc:
            if request_id is None:
                request_id = exc.request_id
            response = protocol.error_response(request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 - per-request failure, keep serving
            response = protocol.error_response(request_id, f"internal error: {exc}")
        await self._write(writer, write_lock, response)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message: dict
    ) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(message))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; its in-flight results are simply dropped
