"""The micro-batcher: collect concurrent queries, run one lane sweep, fan out.

A route query costs almost the same whether the lane engine advances one lane
or five hundred — the sweep's per-step numpy calls dominate, not the lanes.
So the daemon never routes queries one at a time: :class:`MicroBatcher`
collects concurrent submissions until either

* ``max_batch`` queries are pending (**count flush** — a full batch gains
  nothing by waiting), or
* ``window`` seconds elapsed since the first pending submission (**window
  flush** — latency is bounded even under a trickle of traffic), or
* a running sweep just finished and queries are pending (**idle flush** —
  see below),

then hands the whole batch to the runner on a single worker thread (one
thread: lane sweeps are CPU-bound numpy; serializing them avoids oversubscribing
the BLAS/np thread pool and keeps per-batch latency predictable) and resolves
each submitter's future with its own result.

The batcher is *adaptive under load*: while a sweep is in flight, an elapsed
window does **not** flush (the worker is busy, so flushing early cannot
start anything sooner — it would only fragment the queue into small sweeps,
and a sweep's cost is dominated by its step count, not its lane count).
Deferred queries keep accumulating and are flushed as one batch the moment
the in-flight sweep completes.  Under a closed loop this settles into
back-to-back near-full batches; under a trickle the window bound still
holds because an idle batcher flushes on the timer as usual.

Because batched results are trajectory-identical to single-query runs (the
counter-based seed policy), the batcher is invisible in the results — it is
purely a throughput/latency device, and the tests pin exactly that.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Fan concurrent ``submit`` calls into batched runner calls.

    Parameters
    ----------
    runner:
        ``runner(items) -> results`` with ``len(results) == len(items)``,
        ``results[i]`` belonging to ``items[i]``.  Runs on the batcher's
        single worker thread; batches never overlap.
    max_batch:
        Flush as soon as this many items are pending.
    window:
        Flush this many seconds after the first item of a batch arrived.
    """

    def __init__(
        self,
        runner: Callable[[Sequence[object]], Sequence[object]],
        *,
        max_batch: int = 512,
        window: float = 0.001,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window < 0:
            raise ValueError("window must be non-negative")
        self._runner = runner
        self._max_batch = int(max_batch)
        self._window = float(window)
        self._pending: List[tuple] = []  # (item, future)
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-sweep"
        )
        self._closed = False
        self._inflight = 0
        self.stats = {
            "submitted": 0,
            "batches": 0,
            "count_flushes": 0,
            "window_flushes": 0,
            "idle_flushes": 0,
            "drain_flushes": 0,
            "deferred_windows": 0,
            "max_batch_seen": 0,
        }

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def window(self) -> float:
        return self._window

    async def submit(self, item) -> object:
        """Enqueue *item* and wait for its result from a batched runner call."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((item, future))
        self.stats["submitted"] += 1
        if len(self._pending) >= self._max_batch:
            self._flush("count_flushes")
        elif self._timer is None:
            self._timer = loop.call_later(self._window, self._flush, "window_flushes")
        return await future

    def _flush(self, cause: str) -> None:
        """Detach the pending batch and run it (count, window, idle or drain)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if cause == "window_flushes" and self._inflight:
            # Worker busy: flushing now cannot start anything sooner, it
            # would only fragment the queue.  Defer to the idle flush the
            # in-flight sweep triggers on completion.
            self.stats["deferred_windows"] += 1
            return
        batch = self._pending
        if not batch:
            return
        self._pending = []
        self.stats["batches"] += 1
        self.stats[cause] += 1
        self.stats["max_batch_seen"] = max(self.stats["max_batch_seen"], len(batch))
        self._inflight += 1
        task = asyncio.ensure_future(self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, batch: List[tuple]) -> None:
        loop = asyncio.get_running_loop()
        items = [item for (item, _) in batch]
        try:
            results = await loop.run_in_executor(self._executor, self._runner, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"runner returned {len(results)} results for {len(items)} items"
                )
        except Exception as exc:  # noqa: BLE001 - fan the failure to every waiter
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self._inflight -= 1
            if not self._inflight and self._pending and not self._closed:
                self._flush("idle_flushes")
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    async def close(self) -> None:
        """Stop accepting, flush the pending batch, wait for in-flight sweeps.

        Every query accepted before ``close`` still gets its result — the
        graceful-drain contract the server's shutdown relies on.
        """
        if self._closed:
            return
        self._closed = True
        self._flush("drain_flushes")
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)
