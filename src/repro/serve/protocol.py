"""Newline-delimited-JSON wire protocol for the route daemon.

One request per line, one response line per request, in any interleaving —
responses carry the request's ``id`` so clients may pipeline freely.

Requests
--------
``{"op": "route", "id": 7, "source": 12, "target": 9034, "nonce": 0}``
    Route one query.  ``nonce`` (default 0) varies the served trajectory
    under the seed policy; ``id`` is echoed back and may be any JSON value.
``{"op": "ping", "id": 1}``
    Liveness check.
``{"op": "info", "id": 2}``
    Session + server descriptor (family, n, scheme, seed, warmed targets,
    batcher configuration and counters).

Responses
---------
``{"id": 7, "ok": true, "steps": 41, "success": true, "long_links": 12,
"distance": 633, "seed": 123…, "latency_ms": 1.8}``
    ``seed`` is the 64-bit lane seed the daemon derived
    (:func:`repro.session.derive_query_seed`) — any holder of the session
    seed can replay the exact trajectory offline.
``{"id": 7, "ok": false, "error": "target index out of range"}``
    Per-request failures; the connection stays usable.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode",
    "decode_request",
    "parse_route_request",
    "route_response",
    "error_response",
]

#: Hard per-line bound (requests are tiny; anything bigger is garbage or abuse).
MAX_LINE_BYTES = 64 * 1024

_OPS = ("route", "ping", "info")


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown op, missing fields).

    ``request_id`` carries the offending request's ``id`` when it could be
    parsed, so the server can still address its error response.
    """

    def __init__(self, message: str, *, request_id=None) -> None:
        super().__init__(message)
        self.request_id = request_id


def encode(message: dict) -> bytes:
    """One NDJSON line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_request(line: bytes) -> dict:
    """Parse one request line into a dict with a validated ``op``."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc.msg}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if op not in _OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(_OPS)}",
            request_id=message.get("id"),
        )
    return message


def parse_route_request(message: dict) -> Tuple[int, int, int]:
    """Extract ``(source, target, nonce)`` from a ``route`` request."""
    out = []
    for field, default in (("source", None), ("target", None), ("nonce", 0)):
        value = message.get(field, default)
        if value is None:
            raise ProtocolError(f"route request is missing {field!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(f"{field!r} must be an integer, got {value!r}")
        out.append(value)
    return out[0], out[1], out[2]


def route_response(request_id, outcome, latency_ms: Optional[float] = None) -> dict:
    """Build the response dict for one :class:`~repro.routing.simulator.QueryOutcome`."""
    if outcome.error is not None:
        return {"id": request_id, "ok": False, "error": outcome.error}
    message = {
        "id": request_id,
        "ok": True,
        "steps": outcome.steps,
        "success": outcome.success,
        "long_links": outcome.long_links,
        "distance": outcome.graph_distance,
        "seed": outcome.seed,
    }
    if latency_ms is not None:
        message["latency_ms"] = round(latency_ms, 3)
    return message


def error_response(request_id, error: str) -> dict:
    """A per-request failure line (the connection stays usable)."""
    return {"id": request_id, "ok": False, "error": error}
