"""Minimal clients for the route daemon (sync for scripts, async for load).

The sync :class:`RouteServiceClient` is the README's one-liner::

    from repro.serve.client import RouteServiceClient
    with RouteServiceClient("127.0.0.1", 8642) as client:
        print(client.route(12, 9034))

The async :class:`AsyncRouteClient` pipelines many requests over one
connection with a background reader task demultiplexing responses by ``id``
— what the closed-loop load generator drives.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve import protocol

__all__ = ["RouteServiceClient", "AsyncRouteClient"]


class RouteServiceClient:
    """Blocking client: one request/response at a time over one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    def _call(self, message: dict) -> dict:
        message.setdefault("id", next(self._ids))
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def route(self, source: int, target: int, *, nonce: int = 0) -> dict:
        """Route one query; returns the response dict (``ok``, ``steps``, ...)."""
        return self._call(
            {"op": "route", "source": int(source), "target": int(target), "nonce": int(nonce)}
        )

    def route_many(self, pairs: Sequence[Tuple[int, int]], *, nonce: int = 0) -> List[dict]:
        """Pipeline a batch of queries over the connection, in order."""
        requests = []
        for source, target in pairs:
            request_id = next(self._ids)
            requests.append(request_id)
            self._file.write(
                protocol.encode(
                    {
                        "op": "route",
                        "id": request_id,
                        "source": int(source),
                        "target": int(target),
                        "nonce": int(nonce),
                    }
                )
            )
        self._file.flush()
        by_id: Dict[object, dict] = {}
        for _ in requests:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-batch")
            response = json.loads(line)
            by_id[response.get("id")] = response
        return [by_id[request_id] for request_id in requests]

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def info(self) -> dict:
        return self._call({"op": "info"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RouteServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncRouteClient:
    """Pipelined asyncio client: many in-flight requests per connection."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[object, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock: Optional[asyncio.Lock] = None

    async def connect(self, host: str, port: int) -> "AsyncRouteClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._waiters.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for future in self._waiters.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._waiters.clear()

    async def request(self, message: dict) -> dict:
        """Send one request and await its response (pipelining-safe)."""
        assert self._writer is not None and self._write_lock is not None
        request_id = next(self._ids)
        message = dict(message, id=request_id)
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        async with self._write_lock:
            self._writer.write(protocol.encode(message))
            await self._writer.drain()
        return await future

    async def route(self, source: int, target: int, *, nonce: int = 0) -> dict:
        return await self.request(
            {"op": "route", "source": int(source), "target": int(target), "nonce": int(nonce)}
        )

    async def info(self) -> dict:
        return await self.request({"op": "info"})

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
