"""Routing-as-a-service: the async micro-batching query daemon.

The serve layer turns a warmed :class:`~repro.session.RoutingSession` into a
long-lived TCP service (``python -m repro serve ...``) answering
``(source, target)`` route queries over newline-delimited JSON:

* :mod:`repro.serve.protocol` — the NDJSON wire format,
* :mod:`repro.serve.batcher` — the micro-batcher (collect ~1 ms or N
  queries, run one lane sweep, fan results back to each waiter),
* :mod:`repro.serve.server` — the asyncio TCP server and request handling,
* :mod:`repro.serve.client` — minimal sync and async clients.

Served results are trajectory-identical to single-query runs under the
session's seed policy (:func:`repro.session.derive_query_seed`): batching is
a latency/throughput decision, never a results decision.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import AsyncRouteClient, RouteServiceClient
from repro.serve.server import RouteServer

__all__ = ["MicroBatcher", "RouteServer", "RouteServiceClient", "AsyncRouteClient"]
