"""Named graph families: one seedable factory per family.

Historically this table lived inside :mod:`repro.cli`; the session facade
(:func:`repro.open_session`) and the serve daemon need it too, so it now has
a home importable without pulling in argparse.  ``repro.cli.GRAPH_FAMILIES``
re-exports it unchanged.

Each factory maps ``(n, seed)`` to a :class:`~repro.graphs.graph.Graph`;
families whose constructions are deterministic ignore the seed.  ``n`` is the
*requested* size — a few families round it to their natural grid/backbone
dimensions, exactly as the CLI always has.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.graphs import generators
from repro.graphs.graph import Graph

__all__ = ["GRAPH_FAMILIES", "build_family_graph"]

#: Graph families exposed by the CLI and the session API:
#: name -> factory(n, seed) -> Graph.
GRAPH_FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "path": lambda n, seed: generators.path_graph(n),
    "ring": lambda n, seed: generators.cycle_graph(n),
    "grid2d": lambda n, seed: generators.grid_graph([max(2, int(round(n ** 0.5)))] * 2),
    "torus2d": lambda n, seed: generators.torus_graph([max(3, int(round(n ** 0.5)))] * 2),
    "tree": lambda n, seed: generators.random_tree(n, seed=seed),
    "caterpillar": lambda n, seed: generators.caterpillar_graph(max(2, n // 2), 1),
    "spider": lambda n, seed: generators.spider_graph(4, max(1, (n - 1) // 4)),
    "interval": lambda n, seed: generators.random_interval_graph(n, seed=seed)[0],
    "permutation": lambda n, seed: generators.random_permutation_graph(n, seed=seed)[0],
    "lollipop": lambda n, seed: generators.lollipop_graph(max(4, n // 8), n - max(4, n // 8)),
    "watts-strogatz": lambda n, seed: generators.watts_strogatz_graph(max(8, n), 4, 0.1, seed=seed),
    "erdos-renyi": lambda n, seed: generators.erdos_renyi_graph(n, min(1.0, 4.0 / max(1, n)), seed=seed),
}


def build_family_graph(family: str, n: int, seed: int) -> Graph:
    """Instantiate *family* at size *n* with *seed*; ``ValueError`` on unknown names."""
    try:
        factory = GRAPH_FAMILIES[family]
    except KeyError as exc:
        raise ValueError(
            f"unknown graph family {family!r}; choose from {', '.join(sorted(GRAPH_FAMILIES))}"
        ) from exc
    return factory(int(n), int(seed))
