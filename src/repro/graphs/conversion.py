"""Optional networkx interoperability.

The library itself never depends on networkx, but the tests use it as an
oracle for distances, diameters and tree-decomposition validity, and users may
want to feed existing networkx graphs into the augmentation schemes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: Graph):
    """Convert to a :class:`networkx.Graph` (requires networkx installed)."""
    import networkx as nx

    g = nx.Graph(name=graph.name)
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph, *, name: str | None = None) -> Tuple[Graph, dict]:
    """Convert a networkx graph to a :class:`Graph`.

    Nodes are relabelled to ``0 .. n-1`` in sorted order (when sortable) or in
    iteration order otherwise.  Returns ``(graph, mapping)`` where ``mapping``
    sends original node names to new indices.
    """
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    mapping = {node: i for i, node in enumerate(nodes)}
    edges = []
    for u, v in nx_graph.edges():
        if u == v:
            continue
        edges.append((mapping[u], mapping[v]))
    graph_name = name if name is not None else str(getattr(nx_graph, "name", "") or "from_networkx")
    # Deduplicate (multigraphs collapse to simple graphs).
    dedup = sorted({(min(a, b), max(a, b)) for a, b in edges})
    graph = Graph.from_edges(len(nodes), dedup, name=graph_name)
    return graph, mapping
