"""Cross-experiment :class:`GraphStore` cache service.

Every experiment of the reproduction sweeps the same ``(family, n)`` graph
instances, and before this module each experiment rebuilt its graphs and
re-ran every BFS from scratch: the :class:`~repro.graphs.oracle.DistanceOracle`
pooled BFS work *within* one experiment cell, but nothing pooled it *across*
experiments.  The :class:`GraphStore` closes that gap:

* it is a registry keyed ``(family, n, graph_seed)`` that hands out memoised
  :class:`StoreEntry` objects — one generated :class:`~repro.graphs.graph.Graph`
  plus the one :class:`DistanceOracle` everything measured on that instance
  shares.  When ``run_all`` executes several experiments over the same
  instance, the second and later experiments perform **zero** graph builds
  and (because the sweep pipeline also keys its pair sampling per instance,
  see :func:`repro.experiments.common.derive_instance_seed`) zero repeat BFS
  sweeps,
* with a ``spill_dir`` it becomes a cross-*process* cache: after a cell is
  computed the oracle's distance and ``next_local`` arrays are spilled to an
  ``.npz`` file keyed by the instance and stamped with a **content
  fingerprint** of the graph's CSR arrays.  A sibling worker (or a later
  run) that misses in memory reloads the spilled arrays instead of re-running
  the BFS — after verifying that the fingerprint matches the graph it just
  built, so a stale or foreign spill file can never smuggle in wrong
  distances.  Loads and saves go through atomic renames, so concurrent
  ``--jobs`` workers can share one directory safely,
* everything it serves is exactly what would have been computed locally
  (memoised graphs are the same object, absorbed arrays are bitwise equal to
  a fresh BFS), so ``--jobs N`` stays bitwise-identical to a serial sweep
  with or without the cache.

:func:`process_store` returns the per-process singleton used by the sweep's
pool workers, so cells that land in the same worker process share instances
in memory while cells in different workers share them through the spill
directory.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass, field
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.utils.text import slugify

__all__ = [
    "GraphStore",
    "StoreEntry",
    "graph_fingerprint",
    "process_store",
    "SPILL_SCHEMA_VERSION",
]

#: Bump when the spill layout changes; loaders reject other versions.
SPILL_SCHEMA_VERSION = 1


def graph_fingerprint(graph: Graph) -> str:
    """Content fingerprint of a graph's exact CSR structure (sha256 hex).

    Two graphs have the same fingerprint iff they have identical ``indptr``
    and ``indices`` arrays — the property that makes every BFS array
    interchangeable between them.  Names are deliberately excluded.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(graph.indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.indices).tobytes())
    return digest.hexdigest()


@dataclass
class StoreEntry:
    """One cached graph instance: the graph, its shared oracle, extras.

    ``extras`` memoises derived per-instance objects (exact decompositions,
    interval systems, …) that experiments would otherwise recompute; use
    :meth:`extra` for build-on-miss access.  ``fingerprint`` is the CSR
    content hash that guards the disk spill round-trip.
    """

    family: str
    requested_n: int
    seed: int
    graph: Graph
    oracle: DistanceOracle
    fingerprint: str
    extras: Dict[str, object] = field(default_factory=dict)
    #: Cached-array count (dist + next_local) at load / last spill; used to
    #: skip rewriting spill files whose content would not change.
    spilled_arrays: int = 0

    def extra(self, name: str, build: Callable[[], object]) -> object:
        """Memoised per-instance derived object (e.g. a path decomposition)."""
        if name not in self.extras:
            self.extras[name] = build()
        return self.extras[name]

    def cached_arrays(self) -> int:
        """Number of arrays the oracle currently caches (dist + next_local)."""
        return self.oracle.cache_size() + self.oracle.next_local_cache_size()


#: Builds the graph of one instance: ``(n, seed) -> Graph`` or
#: ``(n, seed) -> (Graph, extras_dict)`` for factories whose construction
#: yields reusable by-products (e.g. an interval graph plus its exact
#: clique-path decomposition).
InstanceFactory = Callable[[int, int], Union[Graph, Tuple[Graph, Dict[str, object]]]]


class GraphStore:
    """Process-wide cache of graph instances and their warmed oracles.

    Parameters
    ----------
    spill_dir:
        Optional directory for the ``.npz`` BFS/next_local spill files.  When
        set, instance misses first try to reload a spilled oracle state
        (fingerprint-checked) and :meth:`spill` persists warmed oracles for
        other processes / later runs.
    oracle_factory:
        Test hook building each instance's oracle (default
        :class:`DistanceOracle`); counting oracles plug in here.
    max_instances:
        Optional LRU cap on live instances.  Evicted instances are spilled
        first (when a ``spill_dir`` is configured), so eviction costs a
        reload, not a recompute.
    """

    def __init__(
        self,
        *,
        spill_dir: Optional[Union[str, Path]] = None,
        oracle_factory: Optional[Callable[[Graph], DistanceOracle]] = None,
        max_instances: Optional[int] = None,
    ) -> None:
        if max_instances is not None and max_instances < 1:
            raise ValueError("max_instances must be at least 1 (or None for unbounded)")
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._oracle_factory = oracle_factory
        self._max_instances = max_instances
        self._entries: "OrderedDict[Tuple[str, int, int], StoreEntry]" = OrderedDict()
        self._stats = {
            "graph_builds": 0,
            "graph_hits": 0,
            "spill_loads": 0,
            "spill_saves": 0,
            "spill_rejected": 0,
        }
        #: BFS counters of evicted entries, folded into stats() totals.
        self._retired_misses = 0
        self._retired_hits = 0
        self._retired_preloaded = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def spill_dir(self) -> Optional[Path]:
        return self._spill_dir

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Cache-effectiveness counters (graph builds/hits, spill IO, BFS).

        ``bfs_misses`` counts actual BFS sweeps run by the live + evicted
        oracles, ``bfs_hits`` cache-served distance queries and
        ``bfs_preloaded`` arrays absorbed from spill files (each one a BFS
        that some process did *not* repeat).
        """
        out = dict(self._stats)
        out["instances"] = len(self._entries)
        out["bfs_misses"] = self._retired_misses + sum(
            e.oracle.misses for e in self._entries.values()
        )
        out["bfs_hits"] = self._retired_hits + sum(
            e.oracle.hits for e in self._entries.values()
        )
        out["bfs_preloaded"] = self._retired_preloaded + sum(
            e.oracle.preloaded for e in self._entries.values()
        )
        return out

    def _retire(self, entry: StoreEntry) -> None:
        """Fold a dropped entry's BFS counters into the running totals."""
        self._retired_misses += entry.oracle.misses
        self._retired_hits += entry.oracle.hits
        self._retired_preloaded += entry.oracle.preloaded

    def clear(self) -> None:
        """Drop every live instance (stats are kept)."""
        for entry in self._entries.values():
            self._retire(entry)
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #

    def instance(
        self, family: str, n: int, seed: int, graph_factory: InstanceFactory
    ) -> StoreEntry:
        """The cached instance for ``(family, n, seed)``, built on miss.

        On miss the graph is generated by ``graph_factory(n, seed)`` (which
        may also return per-instance ``extras``), its oracle is created, and
        — when a spill directory is configured — a matching spill file is
        absorbed after its content fingerprint is verified against the graph
        that was just built.
        """
        key = (str(family), int(n), int(seed))
        entry = self._entries.get(key)
        if entry is not None:
            self._stats["graph_hits"] += 1
            self._entries.move_to_end(key)
            return entry
        self._stats["graph_builds"] += 1
        built = graph_factory(int(n), int(seed))
        extras: Dict[str, object] = {}
        if isinstance(built, tuple):
            graph, extras = built
            extras = dict(extras)
        else:
            graph = built
        factory = self._oracle_factory if self._oracle_factory is not None else DistanceOracle
        entry = StoreEntry(
            family=str(family),
            requested_n=int(n),
            seed=int(seed),
            graph=graph,
            oracle=factory(graph),
            fingerprint=graph_fingerprint(graph),
            extras=extras,
        )
        if self._spill_dir is not None:
            self._load_spill(entry)
        self._entries[key] = entry
        if self._max_instances is not None:
            while len(self._entries) > self._max_instances:
                _, evicted = self._entries.popitem(last=False)
                self._spill_entry(evicted)
                self._retire(evicted)
        return entry

    # ------------------------------------------------------------------ #
    # Disk spill
    # ------------------------------------------------------------------ #

    def _spill_path(self, entry: StoreEntry) -> Path:
        assert self._spill_dir is not None
        return self._spill_dir / (
            f"{slugify(entry.family)}__n{entry.requested_n}__s{entry.seed}.npz"
        )

    def _load_spill(self, entry: StoreEntry) -> bool:
        """Absorb a spilled oracle state into *entry* (fingerprint-checked)."""
        path = self._spill_path(entry)
        if not path.is_file():
            return False
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["schema_version"]) != SPILL_SCHEMA_VERSION:
                    self._stats["spill_rejected"] += 1
                    return False
                if str(data["fingerprint"]) != entry.fingerprint:
                    # Content mismatch: the file describes a *different* graph
                    # (changed generator, foreign file, corruption).  Absorbing
                    # it would serve wrong distances — recompute instead.
                    self._stats["spill_rejected"] += 1
                    return False
                state = {
                    "dist_sources": data["dist_sources"],
                    "dist_block": data["dist_block"],
                    "nl_targets": data["nl_targets"],
                    "nl_block": data["nl_block"],
                }
                entry.oracle.absorb_state(state)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Unreadable / truncated / wrong-shape file: recompute locally.
            self._stats["spill_rejected"] += 1
            return False
        entry.spilled_arrays = entry.cached_arrays()
        self._stats["spill_loads"] += 1
        return True

    def _spill_entry(self, entry: StoreEntry) -> bool:
        """Write *entry*'s oracle state to disk if it grew since last spill."""
        if self._spill_dir is None:
            return False
        if entry.cached_arrays() <= entry.spilled_arrays:
            return False
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_path(entry)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        state = entry.oracle.export_state()
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    schema_version=np.int64(SPILL_SCHEMA_VERSION),
                    fingerprint=np.str_(entry.fingerprint),
                    **state,
                )
            os.replace(tmp, path)  # atomic: concurrent workers race benignly
        finally:
            if tmp.exists():  # failed write: do not leave temp litter behind
                tmp.unlink()
        entry.spilled_arrays = entry.cached_arrays()
        self._stats["spill_saves"] += 1
        return True

    def spill(self) -> int:
        """Spill every live instance whose oracle grew; returns files written.

        A no-op (returning 0) without a configured ``spill_dir``.  The sweep
        executor calls this after each computed cell so sibling workers can
        pick the arrays up immediately.
        """
        if self._spill_dir is None:
            return 0
        return sum(1 for entry in self._entries.values() if self._spill_entry(entry))


# --------------------------------------------------------------------------- #
# Per-process store (pool workers)
# --------------------------------------------------------------------------- #

#: One store per (process, spill-dir) — ProcessPoolExecutor workers persist
#: across cells, so cells that land in the same worker share instances in
#: memory while cross-worker reuse flows through the spill directory.
_PROCESS_STORES: Dict[Optional[str], GraphStore] = {}


def process_store(spill_dir: Optional[Union[str, Path]] = None) -> GraphStore:
    """The calling process's :class:`GraphStore` for *spill_dir* (created once)."""
    key = str(Path(spill_dir)) if spill_dir is not None else None
    store = _PROCESS_STORES.get(key)
    if store is None:
        store = GraphStore(spill_dir=spill_dir)
        _PROCESS_STORES[key] = store
    return store
