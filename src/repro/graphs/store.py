"""Cross-experiment :class:`GraphStore` cache service.

Every experiment of the reproduction sweeps the same ``(family, n)`` graph
instances, and before this module each experiment rebuilt its graphs and
re-ran every BFS from scratch: the :class:`~repro.graphs.oracle.DistanceOracle`
pooled BFS work *within* one experiment cell, but nothing pooled it *across*
experiments.  The :class:`GraphStore` closes that gap:

* it is a registry keyed ``(family, n, graph_seed)`` that hands out memoised
  :class:`StoreEntry` objects — one generated :class:`~repro.graphs.graph.Graph`
  plus the one :class:`DistanceOracle` everything measured on that instance
  shares.  When ``run_all`` executes several experiments over the same
  instance, the second and later experiments perform **zero** graph builds
  and (because the sweep pipeline also keys its pair sampling per instance,
  see :func:`repro.experiments.common.derive_instance_seed`) zero repeat BFS
  sweeps,
* with a ``spill_dir`` it becomes a cross-*process* cache: after a cell is
  computed the oracle's distance and ``next_local`` arrays are spilled to a
  raw ``.spill`` file keyed by the instance and stamped with a **content
  fingerprint** of the graph's CSR arrays.  A sibling worker (or a later
  run) that misses in memory reloads the spilled arrays instead of re-running
  the BFS — after verifying that the fingerprint matches the graph it just
  built, so a stale or foreign spill file can never smuggle in wrong
  distances.  Loads and saves go through atomic renames, so concurrent
  ``--jobs`` workers can share one directory safely,
* everything it serves is exactly what would have been computed locally
  (memoised graphs are the same object, absorbed arrays are bitwise equal to
  a fresh BFS), so ``--jobs N`` stays bitwise-identical to a serial sweep
  with or without the cache.

**Spill layout (v2).**  The old ``.npz`` spill forced every loader to inflate
a private copy of each block.  V2 is a raw, page-aligned layout made for
:func:`numpy.memmap`: an 8-byte magic (``RSPILLV2``), a little-endian uint64
header length, a JSON header (schema version, fingerprint, ``n``, dtype, the
source/target key lists and a sha256 of the data section), zero padding to a
64-byte boundary, then the distance block and the ``next_local`` block as
plain C-order rows.  Loaders validate the magic, schema, fingerprint and the
*exact* file size (truncation cannot pass), then hand the oracle read-only
memmap views — every ``--jobs`` worker shares the same physical pages
instead of absorbing a private copy.  :func:`write_oracle_spill`,
:func:`load_oracle_spill` and :func:`read_spill_header` expose the format.

:func:`process_store` returns the per-process singleton used by the sweep's
pool workers, so cells that land in the same worker process share instances
in memory while cells in different workers share them through the spill
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DISTANCE_MODES, DistanceProvider, make_distance_provider
from repro.utils.text import slugify

__all__ = [
    "GraphStore",
    "StoreEntry",
    "graph_fingerprint",
    "load_oracle_spill",
    "process_store",
    "read_spill_header",
    "write_oracle_spill",
    "SPILL_SCHEMA_VERSION",
]

#: Bump when the spill layout changes; loaders reject other versions.
SPILL_SCHEMA_VERSION = 2

#: Leading magic of a v2 raw spill file.
SPILL_MAGIC = b"RSPILLV2"

#: Sanity bound on the JSON header; anything larger is a corrupt length field.
_MAX_HEADER_BYTES = 64 * 1024 * 1024


def _align64(offset: int) -> int:
    """*offset* rounded up to the next 64-byte boundary."""
    return (offset + 63) & ~63


def write_oracle_spill(path: Union[str, Path], state: Dict[str, np.ndarray],
                       *, fingerprint: str, n: int) -> None:
    """Write an oracle :meth:`~DistanceOracle.export_state` snapshot as a v2 spill.

    Both data blocks are coerced to one uniform dtype (the distance block's)
    so the loader can map the whole data section with a single dtype.
    """
    dist_sources = np.asarray(state["dist_sources"], dtype=np.int64)
    nl_targets = np.asarray(state["nl_targets"], dtype=np.int64)
    dist_block = np.ascontiguousarray(state["dist_block"])
    nl_block = np.ascontiguousarray(state["nl_block"])
    if nl_block.dtype != dist_block.dtype:
        nl_block = nl_block.astype(dist_block.dtype)
    sha = hashlib.sha256()
    sha.update(dist_block.data)
    sha.update(nl_block.data)
    header = {
        "schema_version": SPILL_SCHEMA_VERSION,
        "fingerprint": str(fingerprint),
        "n": int(n),
        "dtype": dist_block.dtype.str,
        "dist_sources": dist_sources.tolist(),
        "nl_targets": nl_targets.tolist(),
        "data_sha256": sha.hexdigest(),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    data_offset = _align64(len(SPILL_MAGIC) + 8 + len(blob))
    with open(path, "wb") as fh:
        fh.write(SPILL_MAGIC)
        fh.write(struct.pack("<Q", len(blob)))
        fh.write(blob)
        fh.write(b"\0" * (data_offset - len(SPILL_MAGIC) - 8 - len(blob)))
        dist_block.tofile(fh)
        nl_block.tofile(fh)


def read_spill_header(path: Union[str, Path]) -> Tuple[Dict, int]:
    """``(header, data_offset)`` of a v2 spill file.

    Raises :class:`ValueError` on a bad magic, a corrupt length field or a
    header that is not valid JSON; the caller decides whether that means
    "reject and recompute" (the store) or a test failure.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(SPILL_MAGIC))
        if magic != SPILL_MAGIC:
            raise ValueError("not a v2 oracle spill (bad magic)")
        raw_len = fh.read(8)
        if len(raw_len) != 8:
            raise ValueError("truncated spill header length")
        (header_len,) = struct.unpack("<Q", raw_len)
        if header_len > _MAX_HEADER_BYTES:
            raise ValueError("corrupt spill header length")
        blob = fh.read(header_len)
    if len(blob) != header_len:
        raise ValueError("truncated spill header")
    header = json.loads(blob.decode("utf-8"))
    if not isinstance(header, dict):
        raise ValueError("spill header is not an object")
    return header, _align64(len(SPILL_MAGIC) + 8 + header_len)


def load_oracle_spill(
    path: Union[str, Path],
    *,
    expected_fingerprint: Optional[str] = None,
    expected_n: Optional[int] = None,
    verify: bool = False,
) -> Dict[str, np.ndarray]:
    """Memory-map a v2 spill into an :meth:`~DistanceOracle.absorb_state` dict.

    The returned blocks are **read-only memmap views** sharing pages with
    every other process mapping the same file; absorb them with
    ``copy=False`` to keep that sharing.  Validation is strict — schema
    version, fingerprint, ``n`` and the exact file size must all match
    (truncated or padded files raise) — and ``verify=True`` additionally
    re-hashes the data section against the recorded sha256.
    """
    header, data_offset = read_spill_header(path)
    if header.get("schema_version") != SPILL_SCHEMA_VERSION:
        raise ValueError("unsupported spill schema version")
    if expected_fingerprint is not None and header.get("fingerprint") != expected_fingerprint:
        raise ValueError("spill fingerprint does not match this graph")
    n = int(header["n"])
    if expected_n is not None and n != int(expected_n):
        raise ValueError("spill row length does not match this graph")
    dtype = np.dtype(header["dtype"])
    dist_sources = np.asarray(header["dist_sources"], dtype=np.int64)
    nl_targets = np.asarray(header["nl_targets"], dtype=np.int64)
    rows_d, rows_l = dist_sources.size, nl_targets.size
    row_bytes = n * dtype.itemsize
    expected_size = data_offset + (rows_d + rows_l) * row_bytes
    actual_size = os.path.getsize(path)
    if actual_size != expected_size:
        raise ValueError(
            f"spill size mismatch: expected {expected_size} bytes, found {actual_size}"
        )
    if rows_d * n:
        dist_block: np.ndarray = np.memmap(
            path, dtype=dtype, mode="r", offset=data_offset, shape=(rows_d, n)
        )
    else:
        dist_block = np.empty((rows_d, n), dtype=dtype)
    if rows_l * n:
        nl_block: np.ndarray = np.memmap(
            path, dtype=dtype, mode="r",
            offset=data_offset + rows_d * row_bytes, shape=(rows_l, n),
        )
    else:
        nl_block = np.empty((rows_l, n), dtype=dtype)
    if verify:
        sha = hashlib.sha256()
        sha.update(np.ascontiguousarray(dist_block).data)
        sha.update(np.ascontiguousarray(nl_block).data)
        if sha.hexdigest() != header.get("data_sha256"):
            raise ValueError("spill data hash mismatch")
    return {
        "dist_sources": dist_sources,
        "dist_block": dist_block,
        "nl_targets": nl_targets,
        "nl_block": nl_block,
    }


def graph_fingerprint(graph: Graph) -> str:
    """Content fingerprint of a graph's exact CSR structure (sha256 hex).

    Two graphs have the same fingerprint iff they have identical ``indptr``
    and ``indices`` arrays — the property that makes every BFS array
    interchangeable between them.  Names are deliberately excluded.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(graph.indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.indices).tobytes())
    return digest.hexdigest()


@dataclass
class StoreEntry:
    """One cached graph instance: the graph, its shared oracle, extras.

    ``extras`` memoises derived per-instance objects (exact decompositions,
    interval systems, …) that experiments would otherwise recompute; use
    :meth:`extra` for build-on-miss access.  ``fingerprint`` is the CSR
    content hash that guards the disk spill round-trip.
    """

    family: str
    requested_n: int
    seed: int
    graph: Graph
    oracle: DistanceProvider
    fingerprint: str
    extras: Dict[str, object] = field(default_factory=dict)
    #: Cached-array count (dist + next_local) at load / last spill; used to
    #: skip rewriting spill files whose content would not change.
    spilled_arrays: int = 0

    def extra(self, name: str, build: Callable[[], object]) -> object:
        """Memoised per-instance derived object (e.g. a path decomposition)."""
        if name not in self.extras:
            self.extras[name] = build()
        return self.extras[name]

    def cached_arrays(self) -> int:
        """Number of arrays the oracle currently caches (dist + next_local)."""
        return self.oracle.cache_size() + self.oracle.next_local_cache_size()


#: Builds the graph of one instance: ``(n, seed) -> Graph`` or
#: ``(n, seed) -> (Graph, extras_dict)`` for factories whose construction
#: yields reusable by-products (e.g. an interval graph plus its exact
#: clique-path decomposition).
InstanceFactory = Callable[[int, int], Union[Graph, Tuple[Graph, Dict[str, object]]]]


class GraphStore:
    """Process-wide cache of graph instances and their warmed oracles.

    Parameters
    ----------
    spill_dir:
        Optional directory for the raw ``.spill`` BFS/next_local files.  When
        set, instance misses first try to reload a spilled oracle state
        (fingerprint-checked, memory-mapped) and :meth:`spill` persists
        warmed oracles for other processes / later runs.
    oracle_factory:
        Test hook building each instance's provider (default: see
        ``distance_mode``); counting oracles plug in here.  When given it
        overrides ``distance_mode``/``landmarks``/``oracle_max_bytes``.
    max_instances:
        Optional LRU cap on live instances.  Evicted instances are spilled
        first (when a ``spill_dir`` is configured), so eviction costs a
        reload, not a recompute.
    oracle_max_bytes:
        Byte budget handed to every default-constructed provider (the
        ``max_bytes=`` tier budget; ignored when an ``oracle_factory`` is
        given).
    distance_mode:
        Which :class:`~repro.graphs.provider.DistanceProvider` every
        default-constructed instance gets: ``"exact"`` (a plain
        :class:`DistanceOracle`) or ``"landmark"`` (the pivot sketch, seeded
        with each instance's graph seed so all workers building the same
        instance select the same pivots).
    landmarks:
        Pivot count for ``distance_mode="landmark"`` (ignored otherwise).
    verify_spill:
        Re-hash each spill file's data section against its recorded sha256
        on load (full-content check; the default relies on the magic,
        schema, fingerprint and exact-size checks).
    """

    def __init__(
        self,
        *,
        spill_dir: Optional[Union[str, Path]] = None,
        oracle_factory: Optional[Callable[[Graph], DistanceProvider]] = None,
        max_instances: Optional[int] = None,
        oracle_max_bytes: Optional[int] = None,
        distance_mode: str = "exact",
        landmarks: int = 16,
        verify_spill: bool = False,
    ) -> None:
        if max_instances is not None and max_instances < 1:
            raise ValueError("max_instances must be at least 1 (or None for unbounded)")
        if distance_mode not in DISTANCE_MODES:
            raise ValueError(
                f"unknown distance_mode {distance_mode!r}; "
                f"available: {', '.join(DISTANCE_MODES)}"
            )
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._oracle_factory = oracle_factory
        self._max_instances = max_instances
        self._oracle_max_bytes = oracle_max_bytes
        self._distance_mode = str(distance_mode)
        self._landmarks = int(landmarks)
        self._verify_spill = verify_spill
        self._entries: "OrderedDict[Tuple[str, int, int], StoreEntry]" = OrderedDict()
        self._stats = {
            "graph_builds": 0,
            "graph_hits": 0,
            "spill_loads": 0,
            "spill_saves": 0,
            "spill_rejected": 0,
        }
        #: BFS counters of evicted entries, folded into stats() totals.
        self._retired_misses = 0
        self._retired_hits = 0
        self._retired_preloaded = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def spill_dir(self) -> Optional[Path]:
        return self._spill_dir

    @property
    def distance_mode(self) -> str:
        """The ``distance_mode`` default-constructed providers use."""
        return self._distance_mode

    @property
    def landmarks(self) -> int:
        """Pivot count for landmark-mode providers."""
        return self._landmarks

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Cache-effectiveness counters (graph builds/hits, spill IO, BFS).

        ``bfs_misses`` counts actual BFS sweeps run by the live + evicted
        oracles, ``bfs_hits`` cache-served distance queries and
        ``bfs_preloaded`` arrays absorbed from spill files (each one a BFS
        that some process did *not* repeat).  ``distance_mode`` plus the
        sketch counters (``sketch_queries``, ``landmark_sweeps``,
        ``mean_stretch`` — the latter weighted by each live provider's
        sampled row count, ``None`` when nothing was sampled) summarise the
        provider layer; in exact mode they are the identity values.
        """
        out: Dict[str, object] = dict(self._stats)
        out["instances"] = len(self._entries)
        out["oracle_resident_bytes"] = sum(
            e.oracle.resident_bytes() for e in self._entries.values()
        )
        out["oracle_nodes"] = sum(e.graph.num_nodes for e in self._entries.values())
        out["bfs_misses"] = self._retired_misses + sum(
            e.oracle.misses for e in self._entries.values()
        )
        out["bfs_hits"] = self._retired_hits + sum(
            e.oracle.hits for e in self._entries.values()
        )
        out["bfs_preloaded"] = self._retired_preloaded + sum(
            e.oracle.preloaded for e in self._entries.values()
        )
        out["distance_mode"] = self._distance_mode
        sketch_queries = 0
        landmark_sweeps = 0
        stretch_rows = 0
        stretch_sum = 0.0
        for e in self._entries.values():
            ds = e.oracle.distance_stats()
            sketch_queries += int(ds.get("sketch_queries", 0))
            landmark_sweeps += int(ds.get("landmark_sweeps", 0))
            rows = int(ds.get("stretch_rows", 0))
            mean = ds.get("mean_stretch")
            if rows and mean is not None:
                stretch_rows += rows
                stretch_sum += float(mean) * rows
        out["sketch_queries"] = sketch_queries
        out["landmark_sweeps"] = landmark_sweeps
        out["mean_stretch"] = (stretch_sum / stretch_rows) if stretch_rows else None
        return out

    def _retire(self, entry: StoreEntry) -> None:
        """Fold a dropped entry's BFS counters into the running totals."""
        self._retired_misses += entry.oracle.misses
        self._retired_hits += entry.oracle.hits
        self._retired_preloaded += entry.oracle.preloaded

    def clear(self) -> None:
        """Drop every live instance (stats are kept)."""
        for entry in self._entries.values():
            self._retire(entry)
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #

    def instance(
        self, family: str, n: int, seed: int, graph_factory: InstanceFactory
    ) -> StoreEntry:
        """The cached instance for ``(family, n, seed)``, built on miss.

        On miss the graph is generated by ``graph_factory(n, seed)`` (which
        may also return per-instance ``extras``), its oracle is created, and
        — when a spill directory is configured — a matching spill file is
        absorbed after its content fingerprint is verified against the graph
        that was just built.
        """
        key = (str(family), int(n), int(seed))
        entry = self._entries.get(key)
        if entry is not None:
            self._stats["graph_hits"] += 1
            self._entries.move_to_end(key)
            return entry
        self._stats["graph_builds"] += 1
        built = graph_factory(int(n), int(seed))
        extras: Dict[str, object] = {}
        if isinstance(built, tuple):
            graph, extras = built
            extras = dict(extras)
        else:
            graph = built
        if self._oracle_factory is not None:
            oracle = self._oracle_factory(graph)
        else:
            # Landmark pivot selection is seeded with the *instance* seed, so
            # every worker (and every resumed run) building this instance
            # picks identical pivots — the sketch is a pure function of the
            # instance key.
            oracle = make_distance_provider(
                graph,
                self._distance_mode,
                landmarks=self._landmarks,
                seed=int(seed),
                max_bytes=self._oracle_max_bytes,
            )
        entry = StoreEntry(
            family=str(family),
            requested_n=int(n),
            seed=int(seed),
            graph=graph,
            oracle=oracle,
            fingerprint=graph_fingerprint(graph),
            extras=extras,
        )
        if self._spill_dir is not None:
            self._load_spill(entry)
        self._entries[key] = entry
        if self._max_instances is not None:
            while len(self._entries) > self._max_instances:
                _, evicted = self._entries.popitem(last=False)
                self._spill_entry(evicted)
                self._retire(evicted)
        return entry

    # ------------------------------------------------------------------ #
    # Disk spill
    # ------------------------------------------------------------------ #

    def _spill_path(self, entry: StoreEntry) -> Path:
        assert self._spill_dir is not None
        return self._spill_dir / (
            f"{slugify(entry.family)}__n{entry.requested_n}__s{entry.seed}.spill"
        )

    def _load_spill(self, entry: StoreEntry) -> bool:
        """Absorb a spilled oracle state into *entry* (fingerprint-checked).

        The blocks come back as read-only memmap views and are absorbed with
        ``copy=False``: every worker mapping the same spill file shares its
        physical pages instead of inflating a private copy.
        """
        path = self._spill_path(entry)
        if not path.is_file():
            return False
        try:
            state = load_oracle_spill(
                path,
                expected_fingerprint=entry.fingerprint,
                expected_n=entry.graph.num_nodes,
                verify=self._verify_spill,
            )
            entry.oracle.absorb_state(state, copy=False)
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable / truncated / foreign / wrong-shape file: absorbing
            # it would serve wrong distances — recompute locally instead.
            self._stats["spill_rejected"] += 1
            return False
        entry.spilled_arrays = entry.cached_arrays()
        self._stats["spill_loads"] += 1
        return True

    def _spill_entry(self, entry: StoreEntry) -> bool:
        """Write *entry*'s oracle state to disk if it grew since last spill."""
        if self._spill_dir is None:
            return False
        if entry.cached_arrays() <= entry.spilled_arrays:
            return False
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_path(entry)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        state = entry.oracle.export_state()
        try:
            write_oracle_spill(
                tmp, state, fingerprint=entry.fingerprint, n=entry.graph.num_nodes
            )
            os.replace(tmp, path)  # atomic: concurrent workers race benignly
        finally:
            if tmp.exists():  # failed write: do not leave temp litter behind
                tmp.unlink()
        entry.spilled_arrays = entry.cached_arrays()
        self._stats["spill_saves"] += 1
        return True

    def spill(self) -> int:
        """Spill every live instance whose oracle grew; returns files written.

        A no-op (returning 0) without a configured ``spill_dir``.  The sweep
        executor calls this after each computed cell so sibling workers can
        pick the arrays up immediately.
        """
        if self._spill_dir is None:
            return 0
        return sum(1 for entry in self._entries.values() if self._spill_entry(entry))


# --------------------------------------------------------------------------- #
# Per-process store (pool workers)
# --------------------------------------------------------------------------- #

#: One store per (process, spill-dir) — ProcessPoolExecutor workers persist
#: across cells, so cells that land in the same worker share instances in
#: memory while cross-worker reuse flows through the spill directory.
_PROCESS_STORES: Dict[
    Tuple[Optional[str], Optional[int], str, int], GraphStore
] = {}


def process_store(
    spill_dir: Optional[Union[str, Path]] = None,
    oracle_max_bytes: Optional[int] = None,
    distance_mode: str = "exact",
    landmarks: int = 16,
) -> GraphStore:
    """The calling process's :class:`GraphStore` for *spill_dir* (created once).

    Stores are keyed by ``(spill_dir, oracle_max_bytes, distance_mode,
    landmarks)`` so sweeps with different oracle byte budgets or distance
    providers never share (differently-configured) provider caches.
    """
    key = (
        str(Path(spill_dir)) if spill_dir is not None else None,
        oracle_max_bytes,
        str(distance_mode),
        int(landmarks),
    )
    store = _PROCESS_STORES.get(key)
    if store is None:
        store = GraphStore(
            spill_dir=spill_dir,
            oracle_max_bytes=oracle_max_bytes,
            distance_mode=distance_mode,
            landmarks=landmarks,
        )
        _PROCESS_STORES[key] = store
    return store
