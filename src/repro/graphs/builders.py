"""Incremental graph construction.

:class:`GraphBuilder` collects edges (silently ignoring duplicates, which is
convenient for generators) and produces an immutable
:class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index, check_positive_int

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable edge collector producing an immutable :class:`Graph`.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are ``0 .. num_nodes - 1``.
    name:
        Name given to the built graph.

    Examples
    --------
    >>> b = GraphBuilder(3, name="triangle")
    >>> b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2)
    GraphBuilder(n=3, m=3)
    >>> g = b.build()
    >>> g.num_edges
    3
    """

    def __init__(self, num_nodes: int, *, name: str = "graph") -> None:
        self._n = check_positive_int(num_nodes, "num_nodes", minimum=0)
        self._name = name
        self._edges: Set[Tuple[int, int]] = set()

    @property
    def num_nodes(self) -> int:
        """Number of nodes the built graph will have."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add the undirected edge ``{u, v}``.

        Self-loops raise ``ValueError``; duplicate edges are ignored.
        """
        u = check_node_index(int(u), self._n, "u")
        v = check_node_index(int(v), self._n, "v")
        if u == v:
            raise ValueError(f"self-loop at node {u} is not allowed")
        self._edges.add((u, v) if u < v else (v, u))
        return self

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "GraphBuilder":
        """Add every edge in *edges*."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_path(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Add edges forming a path through *nodes* in order."""
        nodes = list(nodes)
        for a, b in zip(nodes, nodes[1:]):
            self.add_edge(a, b)
        return self

    def add_cycle(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Add edges forming a cycle through *nodes* in order."""
        nodes = list(nodes)
        if len(nodes) < 3:
            raise ValueError("a cycle needs at least 3 nodes")
        self.add_path(nodes)
        self.add_edge(nodes[-1], nodes[0])
        return self

    def add_clique(self, nodes: Iterable[int]) -> "GraphBuilder":
        """Add all edges between the given *nodes*."""
        nodes = list(nodes)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                self.add_edge(u, v)
        return self

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` has already been added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    def build(self) -> Graph:
        """Produce the immutable graph."""
        if not self._edges:
            return Graph.empty(self._n, name=self._name)
        us_list: List[int] = []
        vs_list: List[int] = []
        for u, v in self._edges:
            us_list.append(u)
            vs_list.append(v)
        return Graph._from_edge_arrays(
            self._n,
            np.array(us_list, dtype=np.int64),
            np.array(vs_list, dtype=np.int64),
            name=self._name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphBuilder(n={self._n}, m={len(self._edges)})"
