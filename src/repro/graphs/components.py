"""Connectivity helpers.

Greedy routing (and the greedy diameter) is only defined on connected graphs,
so generators and experiments use :func:`is_connected` as a guard, and the
decomposition code uses :func:`connected_components` when splitting problems.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["connected_components", "is_connected", "largest_component"]


def connected_components(graph: Graph) -> List[np.ndarray]:
    """List of components, each a sorted array of node indices."""
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    label = np.full(n, -1, dtype=np.int64)
    components: List[np.ndarray] = []
    for start in range(n):
        if label[start] != -1:
            continue
        comp_id = len(components)
        label[start] = comp_id
        members = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in indices[indptr[u]: indptr[u + 1]]:
                if label[v] == -1:
                    label[v] = comp_id
                    members.append(int(v))
                    queue.append(int(v))
        components.append(np.array(sorted(members), dtype=np.int64))
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (single-node and empty graphs count as connected)."""
    if graph.num_nodes <= 1:
        return True
    return len(connected_components(graph)) == 1


def largest_component(graph: Graph) -> np.ndarray:
    """Node set of the largest connected component."""
    comps = connected_components(graph)
    if not comps:
        return np.zeros(0, dtype=np.int64)
    return max(comps, key=len)
