"""Immutable undirected graph in compressed-sparse-row (CSR) form.

The class is deliberately minimal: greedy routing and the augmentation schemes
only need fast neighbourhood iteration and node counts.  All heavier machinery
(distances, balls, decompositions) lives in sibling modules that operate on
these graphs.

Design notes
------------
* Nodes are the integers ``0 .. n-1``.  The paper labels nodes ``1 .. n``; the
  translation (label = index + 1) is handled inside :mod:`repro.core.levels`
  and the matrix schemes, never here.
* The adjacency is stored as two numpy arrays, ``indptr`` (length ``n + 1``)
  and ``indices`` (length ``2m``), exactly like ``scipy.sparse.csr_matrix``.
  Neighbour lists are sorted, self-loops and parallel edges are rejected.
* Instances are immutable and hashable by identity; use
  :class:`repro.graphs.builders.GraphBuilder` or :meth:`Graph.from_edges` to
  construct them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_node_index, check_positive_int

__all__ = ["Graph"]


class Graph:
    """An immutable, simple, undirected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency arrays.  ``indices[indptr[u]:indptr[u+1]]`` lists the
        neighbours of ``u`` in increasing order.
    name:
        Optional human-readable description (used in experiment reports).
    validate:
        When true (default) the CSR structure is checked for symmetry,
        sortedness and absence of self-loops.
    """

    __slots__ = ("_indptr", "_indices", "_name", "_num_edges", "_derived")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0 and be non-empty")
        if indptr[-1] != indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        self._indptr = indptr
        self._indices = indices
        self._name = str(name)
        self._num_edges = int(indices.size // 2)
        self._derived = {}
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        *,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an edge list.

        Duplicate edges (in either orientation) and self-loops raise
        ``ValueError``.
        """
        n = check_positive_int(num_nodes, "num_nodes", minimum=0)
        seen = set()
        us: List[int] = []
        vs: List[int] = []
        for (u, v) in edges:
            u = check_node_index(int(u), n, "edge endpoint")
            v = check_node_index(int(v), n, "edge endpoint")
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            us.append(u)
            vs.append(v)
        return cls._from_edge_arrays(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), name=name)

    @classmethod
    def _from_edge_arrays(
        cls, num_nodes: int, us: np.ndarray, vs: np.ndarray, *, name: str = "graph"
    ) -> "Graph":
        """Internal fast path: build CSR from validated, deduplicated endpoints."""
        heads = np.concatenate([us, vs])
        tails = np.concatenate([vs, us])
        order = np.lexsort((tails, heads))
        heads = heads[order]
        tails = tails[order]
        counts = np.bincount(heads, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, tails, name=name, validate=False)

    @classmethod
    def empty(cls, num_nodes: int, *, name: str = "empty") -> "Graph":
        """Graph with *num_nodes* isolated nodes and no edges."""
        n = check_positive_int(num_nodes, "num_nodes", minimum=0)
        return cls(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), name=name, validate=False)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return int(self._indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    @property
    def name(self) -> str:
        """Human-readable description of the graph instance."""
        return self._name

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        view = self._indptr.view()
        view.setflags(write=False)
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        view = self._indices.view()
        view.setflags(write=False)
        return view

    def nodes(self) -> range:
        """Iterate over node indices ``0 .. n-1``."""
        return range(self.num_nodes)

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted array of neighbours of *u* (read-only view)."""
        u = check_node_index(u, self.num_nodes)
        view = self._indices[self._indptr[u]: self._indptr[u + 1]]
        view.setflags(write=False)
        return view

    def degree(self, u: int) -> int:
        """Degree of node *u*."""
        u = check_node_index(u, self.num_nodes)
        return int(self._indptr[u + 1] - self._indptr[u])

    def degrees(self) -> np.ndarray:
        """Array of all node degrees."""
        return np.diff(self._indptr)

    def derived_cache(self) -> dict:
        """Memo dict for structures derived from the (immutable) adjacency.

        The frontier engine parks its self-padded neighbour table here so it
        is built once per graph instance, not once per sweep.  The cache is
        identity-scoped scratch state, not part of the graph's value: it is
        dropped when the graph is pickled (workers rebuild lazily) and never
        compared by ``same_structure``.
        """
        return self._derived

    def __getstate__(self) -> Tuple[np.ndarray, np.ndarray, str]:
        # Exclude the derived-structure cache: it can be many times larger
        # than the CSR arrays and is cheap to rebuild lazily on the other
        # side of the pickle (e.g. in a ProcessPoolExecutor worker).
        return (self._indptr, self._indices, self._name)

    def __setstate__(self, state: Tuple[np.ndarray, np.ndarray, str]) -> None:
        indptr, indices, name = state
        self._indptr = indptr
        self._indices = indices
        self._name = name
        self._num_edges = int(indices.size // 2)
        self._derived = {}

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        u = check_node_index(u, self.num_nodes)
        v = check_node_index(v, self.num_nodes)
        nbrs = self._indices[self._indptr[u]: self._indptr[u + 1]]
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` pairs with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self._indices[self._indptr[u]: self._indptr[u + 1]]:
                if u < v:
                    yield (u, int(v))

    def edge_list(self) -> List[Tuple[int, int]]:
        """Edge list with ``u < v``, sorted lexicographically."""
        return list(self.edges())

    def adjacency_sets(self) -> List[set]:
        """List of neighbour sets (useful for decomposition algorithms)."""
        return [set(map(int, self.neighbors(u))) for u in range(self.num_nodes)]

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def subgraph(self, nodes: Sequence[int], *, name: str | None = None) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        index of the subgraph node ``i``.
        """
        nodes = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        for v in nodes:
            check_node_index(int(v), self.num_nodes)
        position = -np.ones(self.num_nodes, dtype=np.int64)
        position[nodes] = np.arange(nodes.size)
        edges = []
        for new_u, u in enumerate(nodes):
            for v in self.neighbors(int(u)):
                if u < v and position[v] >= 0:
                    edges.append((new_u, int(position[v])))
        sub_name = name if name is not None else f"{self._name}[subgraph:{nodes.size}]"
        return Graph.from_edges(nodes.size, edges, name=sub_name), nodes

    def relabel(self, permutation: Sequence[int], *, name: str | None = None) -> "Graph":
        """Return the graph with node *i* renamed to ``permutation[i]``.

        *permutation* must be a permutation of ``0 .. n-1``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.size != self.num_nodes or set(map(int, perm)) != set(range(self.num_nodes)):
            raise ValueError("permutation must be a permutation of all node indices")
        edges = [(int(perm[u]), int(perm[v])) for (u, v) in self.edges()]
        new_name = name if name is not None else f"{self._name}[relabel]"
        return Graph.from_edges(self.num_nodes, edges, name=new_name)

    def with_name(self, name: str) -> "Graph":
        """Return a shallow copy of the graph carrying a different name."""
        return Graph(self._indptr, self._indices, name=name, validate=False)

    # ------------------------------------------------------------------ #
    # Comparison / representation
    # ------------------------------------------------------------------ #

    def same_structure(self, other: "Graph") -> bool:
        """Whether *other* has the exact same node set and adjacency."""
        return (
            isinstance(other, Graph)
            and self.num_nodes == other.num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(name={self._name!r}, n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        n = self.num_nodes
        if np.any(np.diff(self._indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self._indices.size and (self._indices.min() < 0 or self._indices.max() >= n):
            raise ValueError("indices contain out-of-range node ids")
        for u in range(n):
            nbrs = self._indices[self._indptr[u]: self._indptr[u + 1]]
            if np.any(np.diff(nbrs) <= 0):
                raise ValueError(f"neighbour list of node {u} is not strictly increasing")
            if np.any(nbrs == u):
                raise ValueError(f"self-loop at node {u}")
        # Symmetry: every arc must have its reverse.
        for u in range(n):
            for v in self._indices[self._indptr[u]: self._indptr[u + 1]]:
                nbrs_v = self._indices[self._indptr[v]: self._indptr[v + 1]]
                pos = np.searchsorted(nbrs_v, u)
                if pos >= nbrs_v.size or nbrs_v[pos] != u:
                    raise ValueError(f"arc {u}->{v} has no reverse arc; adjacency is not symmetric")
