"""Balls ``B(u, r)`` and related machinery.

The Õ(n^{1/3}) scheme of Theorem 4 is defined directly in terms of balls:
every node picks ``k`` uniformly in ``{1, …, ⌈log n⌉}`` and a long-range
contact uniform in ``B(u, 2^k)``.  The proof additionally uses the *rank*
``r(v)`` of a node (smallest ``k`` with ``v ∈ B_k(u)``), which
:func:`ball_ranks` exposes so the exact contact distribution can be computed
and tested against the sampling implementation.

All functions run on the vectorized frontier BFS engine
(:mod:`repro.graphs.frontier`, via :func:`repro.graphs.distances.bfs_distances`);
truncated searches (``ball``, ``ball_sizes``) cost ``O(|B(center, r)|)`` edge
scans.  Experiment-scoped callers that query many balls around the same
centres should go through :class:`repro.graphs.oracle.DistanceOracle`, which
memoises the underlying BFS arrays.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "ball",
    "ball_sizes",
    "ball_ranks",
    "growth_function",
    "nodes_within",
]


def ball(graph: Graph, center: int, radius: int) -> np.ndarray:
    """Sorted array of nodes at distance at most *radius* from *center*."""
    center = check_node_index(center, graph.num_nodes, "center")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dist = bfs_distances(graph, center, cutoff=radius)
    members = np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]
    return members


def nodes_within(dist: np.ndarray, radius: int) -> np.ndarray:
    """Nodes whose precomputed distance is within *radius* (helper for cached BFS)."""
    return np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]


def ball_sizes(graph: Graph, center: int, radii: List[int]) -> Dict[int, int]:
    """Sizes of ``B(center, r)`` for each requested radius.

    A single BFS (to the largest radius) serves every query.
    """
    center = check_node_index(center, graph.num_nodes, "center")
    if not radii:
        return {}
    max_radius = max(radii)
    if max_radius < 0:
        raise ValueError("radii must be non-negative")
    dist = bfs_distances(graph, center, cutoff=max_radius)
    reachable = dist[dist != UNREACHABLE]
    return {int(r): int(np.count_nonzero(reachable <= r)) for r in radii}


def ball_ranks(graph: Graph, center: int, *, num_levels: int) -> np.ndarray:
    """Rank ``r(v)`` of every node with respect to *center* (Theorem 4).

    ``r(v)`` is the smallest ``k ≥ 1`` such that ``v ∈ B(center, 2^k)``, i.e.
    ``r(v) = max(1, ⌈log2 dist(center, v)⌉)``; nodes farther than
    ``2^num_levels`` (or unreachable) get rank ``num_levels + 1`` meaning they
    can never be chosen as a contact of *center*.
    """
    center = check_node_index(center, graph.num_nodes, "center")
    if num_levels < 1:
        raise ValueError("num_levels must be at least 1")
    dist = bfs_distances(graph, center)
    ranks = np.full(graph.num_nodes, num_levels + 1, dtype=np.int64)
    reachable = dist != UNREACHABLE
    near = reachable & (dist <= 2)
    ranks[near] = 1
    far = reachable & (dist > 2)
    if np.any(far):
        far_ranks = np.ceil(np.log2(dist[far])).astype(np.int64)
        ranks[far] = np.minimum(far_ranks, num_levels + 1)
    return ranks


def growth_function(graph: Graph, center: int) -> np.ndarray:
    """Array ``g`` with ``g[r] = |B(center, r)|`` for ``r = 0 … ecc(center)``."""
    center = check_node_index(center, graph.num_nodes, "center")
    dist = bfs_distances(graph, center)
    finite = dist[dist != UNREACHABLE]
    ecc = int(finite.max()) if finite.size else 0
    counts = np.bincount(finite, minlength=ecc + 1)
    return np.cumsum(counts)
