"""Graph substrate: immutable CSR graphs, generators and distance machinery.

The paper's framework needs only unweighted, undirected, connected graphs and
their shortest-path metric (greedy routing compares neighbours by their
distance to the target *in the underlying graph*).  The substrate therefore
provides:

* :class:`~repro.graphs.graph.Graph` — an immutable adjacency structure in
  compressed-sparse-row form backed by numpy arrays,
* :mod:`~repro.graphs.generators` — every graph family referenced by the paper
  (paths, cycles, d-dimensional meshes/tori, trees, caterpillars, interval and
  permutation graphs as AT-free representatives, …) plus standard random
  models used as controls,
* :mod:`~repro.graphs.frontier` — the vectorized, level-synchronous BFS
  engine (single-source, multi-source, cutoff and batched multi-row sweeps),
* :mod:`~repro.graphs.distances` — BFS, truncated BFS, APSP, eccentricities
  (thin wrappers over the frontier engine),
* :mod:`~repro.graphs.oracle` — :class:`~repro.graphs.oracle.DistanceOracle`,
  the shared LRU-capped memoisation layer used by the simulator, the ball
  scheme and the decomposition measures,
* :mod:`~repro.graphs.balls` — balls ``B(u, r)`` and node ranks used by the
  Theorem-4 scheme.
"""

from repro.graphs.graph import Graph
from repro.graphs.builders import GraphBuilder
from repro.graphs import generators
from repro.graphs.distances import (
    bfs_distances,
    distance_matrix,
    eccentricity,
    diameter,
)
from repro.graphs.frontier import bfs_distances_many
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DISTANCE_MODES, DistanceProvider, make_distance_provider
from repro.graphs.landmark import LandmarkOracle
from repro.graphs.balls import ball, ball_sizes
from repro.graphs.components import connected_components, is_connected

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "bfs_distances",
    "bfs_distances_many",
    "DistanceOracle",
    "DistanceProvider",
    "DISTANCE_MODES",
    "LandmarkOracle",
    "make_distance_provider",
    "distance_matrix",
    "eccentricity",
    "diameter",
    "ball",
    "ball_sizes",
    "connected_components",
    "is_connected",
]
