"""Shared, LRU-capped distance oracle over the frontier BFS engine.

The routing simulator, the Theorem-4 ball scheme and the decomposition
measures all repeatedly ask for "the distance array from node *u*" — often
for the same handful of targets across thousands of trials.  Before this
module each subsystem kept its own ad-hoc ``Dict[int, np.ndarray]`` cache
(``dist_cache`` in the simulator, ``_dist_cache`` in ``BallScheme``, the
decomposition-local oracle in ``repro.decomposition.bags``).  The
:class:`DistanceOracle` replaces all of them with one memoising layer:

* per-source distance arrays are computed by the vectorized engine in
  :mod:`repro.graphs.frontier` and returned as read-only views, so a cached
  array can be shared freely across callers,
* an optional ``max_entries`` cap turns the cache into a proper LRU so a long
  experiment sweep over many targets cannot exhaust memory,
* :meth:`prefetch` fills many sources at once through the *batched* engine
  (:func:`repro.graphs.frontier.bfs_distances_many`), one numpy pass per BFS
  level for the whole batch,
* ball queries (:meth:`ball`, :meth:`ball_size`) reuse whatever distance
  array is already cached.

Because the graphs are undirected, ``distances_from`` and ``distances_to``
are the same array; both spellings exist so call sites read naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from repro.graphs.frontier import UNREACHABLE, bfs_distances_many, frontier_bfs
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = ["DistanceOracle"]


class DistanceOracle:
    """Memoised single-source BFS oracle with an optional LRU cap.

    ``oracle(u, v)`` returns ``dist_G(u, v)``; each distinct source costs one
    BFS (vectorized, frontier-batched), cached for the lifetime of the oracle
    or until evicted by the LRU policy.

    Parameters
    ----------
    graph:
        The graph the oracle answers queries about.
    max_entries:
        Optional cap on the number of cached distance arrays.  ``None``
        (default) caches every source ever queried — the historical
        behaviour of the per-subsystem caches this class replaces.
    """

    def __init__(self, graph: Graph, *, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self._graph = graph
        self._max_entries = max_entries
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def max_entries(self) -> Optional[int]:
        """LRU capacity (``None`` means unbounded)."""
        return self._max_entries

    @property
    def hits(self) -> int:
        """Number of queries served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of queries that required a fresh BFS."""
        return self._misses

    def cache_size(self) -> int:
        """Number of distance arrays currently cached."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop every cached array (hit/miss counters are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _store(self, source: int, dist: np.ndarray) -> None:
        dist.setflags(write=False)
        self._cache[source] = dist
        if self._max_entries is not None:
            while len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)

    def distances_from(self, source: int) -> np.ndarray:
        """Full distance array from *source* (cached, read-only)."""
        source = check_node_index(int(source), self._graph.num_nodes, "source")
        dist = self._cache.get(source)
        if dist is not None:
            self._hits += 1
            self._cache.move_to_end(source)
            return dist
        self._misses += 1
        dist = frontier_bfs(self._graph, source)
        self._store(source, dist)
        return dist

    def distances_to(self, target: int) -> np.ndarray:
        """Distance array *to* ``target`` (== ``distances_from``: undirected graphs)."""
        return self.distances_from(target)

    def __call__(self, u: int, v: int) -> int:
        """``dist_G(u, v)`` (``UNREACHABLE`` = -1 across components)."""
        return int(self.distances_from(int(u))[int(v)])

    def prefetch(self, sources: Iterable[int]) -> None:
        """Warm the cache for *sources* with one batched frontier sweep.

        Only sources not already cached are computed; the batch shares a
        single level-synchronous pass, so warming ``k`` sources is far
        cheaper than ``k`` individual :meth:`distances_from` misses.
        """
        n = self._graph.num_nodes
        missing: list[int] = []
        seen = set()
        for s in sources:
            s = check_node_index(int(s), n, "source")
            if s not in self._cache and s not in seen:
                seen.add(s)
                missing.append(s)
        if not missing:
            return
        if self._max_entries is not None and len(missing) > self._max_entries:
            # Keep the *head* of the batch: callers consume sources in batch
            # order, so the first max_entries entries are the ones that will
            # be hit before any later miss can evict them.
            missing = missing[: self._max_entries]
        block = bfs_distances_many(self._graph, missing)
        self._misses += len(missing)
        for row, s in enumerate(missing):
            # Copy each row out of the (k, n) block: storing views would pin
            # the whole block in memory for as long as any one row survives
            # in the cache, defeating the max_entries cap.
            self._store(s, block[row].copy())

    # ------------------------------------------------------------------ #
    # Ball queries (Theorem-4 scheme)
    # ------------------------------------------------------------------ #

    def ball(self, center: int, radius: int) -> np.ndarray:
        """Sorted members of ``B(center, radius)``, served from the cached BFS."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dist = self.distances_from(center)
        return np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]

    def ball_size(self, center: int, radius: int) -> int:
        """``|B(center, radius)|`` without materialising the member array."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dist = self.distances_from(center)
        return int(np.count_nonzero((dist != UNREACHABLE) & (dist <= radius)))
