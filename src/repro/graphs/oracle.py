"""Shared, LRU-capped distance oracle over the frontier BFS engine.

The routing simulator, the Theorem-4 ball scheme and the decomposition
measures all repeatedly ask for "the distance array from node *u*" — often
for the same handful of targets across thousands of trials.  Before this
module each subsystem kept its own ad-hoc ``Dict[int, np.ndarray]`` cache
(``dist_cache`` in the simulator, ``_dist_cache`` in ``BallScheme``, the
decomposition-local oracle in ``repro.decomposition.bags``).  The
:class:`DistanceOracle` replaces all of them with one memoising layer:

* per-source distance arrays are computed by the vectorized engine in
  :mod:`repro.graphs.frontier` and returned as read-only views, so a cached
  array can be shared freely across callers,
* an optional ``max_entries`` cap turns the cache into a proper LRU so a long
  experiment sweep over many targets cannot exhaust memory,
* :meth:`prefetch` fills many sources at once through the *batched* engine
  (:func:`repro.graphs.frontier.bfs_distances_many`), one numpy pass per BFS
  level for the whole batch; :meth:`distances_to_many` returns the warmed
  arrays as one ``(k, n)`` block for lane-style consumers,
* ball queries (:meth:`ball`, :meth:`ball_size`) reuse whatever distance
  array is already cached,
* :meth:`next_local_to` serves the lane routing engine's per-target
  ``next_local`` pointer tables: for every node, its best *local* next hop
  towards the target (first CSR-order neighbour at minimum distance, the
  exact candidate :func:`repro.routing.greedy.greedy_route` would scan to).
  Computed with one vectorized CSR segment-argmin pass over the cached
  distance array — or read straight off the BFS parent pointers on trees,
  where the improving neighbour is unique — and memoised under the same LRU
  policy as the distance arrays,
* :meth:`next_local_to_many` builds the tables for a whole batch of targets
  in **one** transposed composite-key pass over the stacked distance block
  (see :func:`next_local_pointers_many`), which is what erases the lane
  engine's per-cell cold start: the first scheme of a cell no longer pays
  one Python round-trip per target,
* :meth:`routing_blocks` serves the lane engine's stacked per-target blocks
  out of a preallocated, incrementally refilled buffer pair — a row is
  rewritten only when the target occupying it changes, so switching between
  target tuples costs the changed rows, not three fresh ``k·n`` stacks,
* :meth:`export_state` / :meth:`absorb_state` round-trip the cached arrays
  as plain numpy blocks so the :class:`~repro.graphs.store.GraphStore` can
  spill a warmed oracle to disk and rebuild it in another process without a
  single repeated BFS.

**Memory tiers.**  Beyond the entry-count LRU, ``max_bytes=`` turns the
oracle into a byte-budgeted two-tier cache: rows evicted from the dense hot
tier are *spilled* to an anonymous memory-mapped backing file (the cold
tier) instead of being dropped, and promoted back on access — an accounted
cache hit, so ``--stats`` hit rates stay exact.  Rows absorbed from a
:class:`~repro.graphs.store.GraphStore` spill with ``copy=False`` stay
memmap-backed views of the (page-shared, read-only) spill file and are
exempt from the budget — the kernel reclaims those pages on its own.
:meth:`resident_bytes` and :meth:`memory_stats` expose what the budget
actually bounds.

Because the graphs are undirected, ``distances_from`` and ``distances_to``
are the same array; both spellings exist so call sites read naturally.
"""

from __future__ import annotations

import tempfile
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graphs import kernels
from repro.graphs.frontier import (
    UNREACHABLE,
    bfs_distances_many,
    bfs_dtype,
    frontier_bfs,
    frontier_bfs_tree,
)
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "DistanceOracle",
    "FAR_DISTANCE",
    "next_local_pointers",
    "next_local_pointers_many",
    "padded_adjacency",
]

#: Sentinel larger than any real distance, used in place of ``UNREACHABLE``
#: (-1, which would win any min-comparison) in the masked routing blocks and
#: hop comparisons.  The lane engine imports this same constant, so producer
#: and consumer of the masked blocks can never disagree.
FAR_DISTANCE: int = np.iinfo(np.int64).max


def next_local_pointers(
    graph: Graph, dist: np.ndarray, *, slot_owner: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-node best local next hop given the BFS distance array *dist*.

    ``out[u]`` is the first CSR-order neighbour of ``u`` attaining the minimum
    distance among ``u``'s neighbours, provided that minimum strictly improves
    on ``dist[u]``; otherwise ``-1`` (no improving hop: ``u`` is the target or
    unreachable).  This reproduces exactly the local candidate
    :func:`repro.routing.greedy.greedy_route` selects with its strict ``<``
    scan, so the lane engine's precomputed hop table and the scalar reference
    walk identical trajectories.

    *dist* must be a genuine BFS distance array (``UNREACHABLE`` outside the
    target's component), which is what makes the pass cheap: the minimum
    neighbour distance of a reachable node ``u > 0`` hops away is *exactly*
    ``dist[u] - 1``, so the argmin collapses to "first CSR slot whose
    neighbour sits at ``dist[u] - 1``" — one gather, one compare, and a
    reversed scatter that keeps each node's earliest matching slot.  The
    target itself (neighbours at distance ≥ 1) and unreachable nodes
    (neighbours all ``UNREACHABLE``) match no slot and keep ``-1``.

    *slot_owner* is the CSR slot-to-node map ``repeat(arange(n), degrees)``;
    pass a precomputed one (the oracle caches it) to skip rebuilding it.
    """
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    out = np.full(n, -1, dtype=bfs_dtype(n))
    if indices.size == 0:
        return out
    if slot_owner is None:
        slot_owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    # want[slot] = the distance an improving first hop must have.  Owners at
    # distance 0 want -1 and unreachable owners want -2; no reachable
    # neighbour has either value and unreachable neighbours (-1) only occur
    # next to unreachable owners, so both correctly match nothing.
    slots = np.nonzero(dist[indices] == dist[slot_owner] - 1)[0]
    first_slot = np.full(n, -1, dtype=np.int64)
    # Reversed scatter: the last write per owner is its *first* matching slot.
    first_slot[slot_owner[slots[::-1]]] = slots[::-1]
    found = np.nonzero(first_slot >= 0)[0]
    out[found] = indices[first_slot[found]]
    return out


#: Skip the padded-adjacency fast path when padding would inflate the edge
#: array beyond this factor (hub-dominated graphs: stars, lollipop heads).
#: The per-target reference pass is used instead — identical output.
_PAD_BLOWUP_LIMIT: int = 4

#: Column-tile width of the blocked transposes in the batched pointer pass;
#: a (tile, k) int32 tile stays L2-resident for any realistic batch size.
_TRANSPOSE_TILE: int = 2048


def padded_adjacency(graph: Graph) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Slot-major padded adjacency ``(padT, degrees)`` for the batched pass.

    ``padT`` has shape ``(max_degree, n)``: column ``u`` lists the neighbours
    of ``u`` in CSR order, padded with the sentinel node ``n``.  Returns
    ``None`` when padding would inflate the arc array more than
    ``_PAD_BLOWUP_LIMIT``-fold (a few huge hubs), in which case callers fall
    back to the per-target pass.
    """
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    degrees = np.diff(indptr)
    dmax = int(degrees.max()) if n and indices.size else 0
    if dmax == 0:
        return None
    if n * dmax > _PAD_BLOWUP_LIMIT * indices.size + 4096:
        return None
    padT = np.full((dmax, n), n, dtype=np.int64)
    slot_in_node = np.arange(indices.size, dtype=np.int64) - np.repeat(indptr[:-1], degrees)
    owner = np.repeat(np.arange(n, dtype=np.int64), degrees)
    padT[slot_in_node, owner] = indices
    return padT, degrees


def next_local_pointers_many(
    graph: Graph,
    dist_block: np.ndarray,
    *,
    padded: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Batched :func:`next_local_pointers`: one vectorized pass for many targets.

    ``dist_block`` has shape ``(k, n)`` — row ``r`` is the BFS distance array
    of the ``r``-th target — and the result has the same shape, with
    ``out[r, u]`` equal to ``next_local_pointers(graph, dist_block[r])[u]``
    exactly.

    The pass works on the *composite key* ``c[u] = dist[u] * n + u``, whose
    minimum over a node's neighbours is the lexicographic ``(distance, id)``
    minimum — i.e. precisely the first CSR-order (lowest-id, lists are
    sorted) neighbour attaining the minimum distance.  The batch is laid out
    **transposed**: a ``(n+1, k)`` composite block (sentinel last row) lets
    one :func:`np.take` per padded adjacency slot gather that slot's
    neighbour key for *all* ``k`` targets with a single ``n``-element index
    pass — the per-element index overhead that dominates the per-target loop
    is amortised ``k``-fold, and every reduction below it is a contiguous
    SIMD ``minimum``.  Keys run in int32 whenever the composite fits, and
    both transposes are tiled so the strided side of each copy stays
    cache-resident.

    Graphs whose maximum degree would blow up the padded adjacency (see
    :func:`padded_adjacency`) take the per-target reference pass instead —
    same output, just without the batching win.
    """
    dist_block = np.asarray(dist_block)
    if dist_block.ndim != 2 or dist_block.shape[1] != graph.num_nodes:
        raise ValueError("dist_block must have shape (k, num_nodes)")
    k, n = dist_block.shape
    out = np.full((k, n), -1, dtype=bfs_dtype(n))
    if k == 0 or n == 0 or graph.indices.size == 0:
        return out
    kb = kernels.active_backend()
    if kb.next_local_fill is not None:
        # Compiled fill: a typed first-improving-CSR-slot scan per (row,
        # node).  It needs neither the padded adjacency nor the composite-key
        # trick — the early break *is* the lexicographic minimum, because CSR
        # neighbour lists are sorted — so it also covers the hub-dominated
        # graphs the padded fast path rejects.
        kb.next_local_fill(graph.indptr, graph.indices, dist_block, out)
        return out
    if padded is None:
        padded = padded_adjacency(graph)
    if padded is None:  # hub-dominated: padding rejected, use the reference pass
        for r in range(k):
            out[r] = next_local_pointers(graph, dist_block[r])
        return out
    padT, degrees = padded
    max_d = int(dist_block.max())
    small = (max_d + 2) * (n + 1) < np.iinfo(np.int32).max
    dt = np.int32 if small else np.int64
    ids_col = np.arange(n, dtype=dt)[:, None]
    # Composite block, transposed, with the sentinel row keeping padded slots
    # out of every minimum.
    c_t = np.empty((n + 1, k), dtype=dt)
    for start in range(0, n, _TRANSPOSE_TILE):
        stop = min(start + _TRANSPOSE_TILE, n)
        np.multiply(dist_block[:, start:stop].T, dt(n), out=c_t[start:stop], casting="unsafe")
    np.add(c_t[:n], ids_col, out=c_t[:n])
    c_t[n] = np.iinfo(dt).max
    # Plain (allocating) takes: np.take's ``out=`` path runs a slower buffered
    # loop, measurably worse than letting it allocate per slot.
    mins = np.take(c_t, padT[0], axis=0)
    for j in range(1, padT.shape[0]):
        np.minimum(mins, np.take(c_t, padT[j], axis=0), out=mins)
    # hop = min_composite - (dist - 1) * n = mins - c + id + n; a hop is valid
    # iff it lands in [0, n) — target rows (min at distance >= 1), unreachable
    # rows and sentinel-only (isolated) rows all fall outside, including via
    # deterministic int wraparound of the sentinel.
    np.subtract(mins, c_t[:n], out=mins)
    np.add(mins, ids_col, out=mins)
    np.add(mins, dt(n), out=mins)
    bad = (mins < 0) | (mins >= dt(n))
    bad |= (degrees == 0)[:, None]
    mins[bad] = dt(-1)
    for start in range(0, n, _TRANSPOSE_TILE):
        stop = min(start + _TRANSPOSE_TILE, n)
        np.copyto(out[:, start:stop], mins[start:stop].T, casting="unsafe")
    return out


class _ColdTier:
    """Slot-allocated row spill over an anonymous memory-mapped temp file.

    Rows evicted from the oracle's hot tier are written to slots of a
    :func:`tempfile.TemporaryFile`-backed :class:`numpy.memmap` — the OS
    pages them out under memory pressure and reclaims the file when the
    tier is closed (or the process dies).  One tier holds both row kinds
    (``"d"`` distance rows, ``"l"`` hop tables): they share the row length
    ``n`` and the oracle dtype.  The file grows by doubling; freed slots
    are recycled.
    """

    def __init__(self, row_len: int, dtype: np.dtype, dir: Optional[str] = None) -> None:
        self._row_len = int(row_len)
        self._dtype = np.dtype(dtype)
        self._file = tempfile.TemporaryFile(dir=dir, prefix="oracle-cold-")
        self._mm: Optional[np.memmap] = None
        self._capacity = 0
        self._slots: Dict[tuple, int] = {}
        self._free: list = []
        self._next = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def nbytes(self) -> int:
        """Logical bytes held (occupied slots × row size), not file size."""
        return len(self._slots) * self._row_len * self._dtype.itemsize

    def has(self, kind: str, key: int) -> bool:
        return (kind, key) in self._slots

    def _grow(self, min_rows: int) -> None:
        new_cap = max(min_rows, 2 * self._capacity, 8)
        self._file.truncate(new_cap * self._row_len * self._dtype.itemsize)
        self._mm = np.memmap(
            self._file, dtype=self._dtype, mode="r+", shape=(new_cap, self._row_len)
        )
        self._capacity = new_cap

    def put(self, kind: str, key: int, row: np.ndarray) -> None:
        slot = self._slots.get((kind, key))
        if slot is None:
            if self._free:
                slot = self._free.pop()
            else:
                slot = self._next
                self._next += 1
            self._slots[(kind, key)] = slot
        if slot >= self._capacity:
            self._grow(slot + 1)
        self._mm[slot] = row

    def pop(self, kind: str, key: int) -> np.ndarray:
        """Remove and return a private (writable) copy of the stored row."""
        slot = self._slots.pop((kind, key))
        self._free.append(slot)
        return np.array(self._mm[slot])

    def close(self) -> None:
        self._mm = None
        self._file.close()


class DistanceOracle:
    """Memoised single-source BFS oracle with entry- and byte-bounded tiers.

    ``oracle(u, v)`` returns ``dist_G(u, v)``; each distinct source costs one
    BFS (vectorized, frontier-batched), cached for the lifetime of the oracle
    or until evicted by the LRU policy.

    Parameters
    ----------
    graph:
        The graph the oracle answers queries about.
    max_entries:
        Optional cap on the number of cached distance arrays.  ``None``
        (default) caches every source ever queried — the historical
        behaviour of the per-subsystem caches this class replaces.
        Entry-cap evictions *drop* rows (historical semantics).
    max_bytes:
        Optional byte budget over the dense resident state (hot rows plus
        the :meth:`routing_blocks` backing buffers).  When crossed, the
        globally least-recently-used hot row is *spilled* to the
        memory-mapped cold tier instead of dropped, and promoted back on
        access (an accounted hit).  Memmap-backed rows absorbed from a
        spill are budget-exempt.
    cold_dir:
        Directory for the cold tier's anonymous backing file (default: the
        system temp dir).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cold_dir: Optional[str] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None for unbounded)")
        self._graph = graph
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._cold_dir = cold_dir
        #: Uniform dtype of every cached row (int32 below 2**31 nodes).
        self._dtype = bfs_dtype(graph.num_nodes)
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._next_local: "OrderedDict[int, np.ndarray]" = OrderedDict()
        #: CSR slot-to-node map, built lazily for next_local computations.
        self._slot_owner: Optional[np.ndarray] = None
        #: Padded adjacency for the batched pointer pass (None = not built
        #: yet, False = this graph rejected padding — hub-dominated).
        self._padded = None
        #: Single-slot cache of the lane engine's stacked per-target blocks,
        #: keyed by the exact targets tuple (see :meth:`routing_blocks`).
        self._blocks: Optional[tuple] = None
        #: Preallocated backing storage for :meth:`routing_blocks`: the
        #: ``(capacity, n)`` distance/hop-table buffers plus, per row, the
        #: target whose (deterministic) content currently occupies it — so a
        #: rebuild for a new targets tuple refills only the rows that
        #: actually changed instead of re-stacking ``3·k·n`` fresh copies.
        self._block_storage: Optional[Tuple[np.ndarray, np.ndarray, list]] = None
        self._hits = 0
        self._misses = 0
        self._preloaded = 0
        # --- memory-tier state ------------------------------------------ #
        self._cold_tier: Optional[_ColdTier] = None
        #: Bytes of dense (private, budget-counted) hot rows.
        self._hot_bytes = 0
        #: ``(kind, key)`` of rows that are memmap views of a spill file —
        #: page-shared with sibling processes, budget-exempt, never spilled.
        self._mapped: set = set()
        self._mapped_bytes = 0
        #: Global access clock for cross-cache (dist + hop) LRU eviction;
        #: maintained only under a byte budget.
        self._tick = 0
        self._dist_tick: Dict[int, int] = {}
        self._nl_tick: Dict[int, int] = {}
        self._cold_hits = 0
        self._cold_spills = 0
        self._cold_promotions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def mode(self) -> str:
        """This provider's ``distance_mode`` name (see :mod:`repro.graphs.provider`)."""
        return "exact"

    @property
    def max_entries(self) -> Optional[int]:
        """LRU capacity (``None`` means unbounded)."""
        return self._max_entries

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte budget over dense resident state (``None`` means unbounded)."""
        return self._max_bytes

    @property
    def cold_hits(self) -> int:
        """Accesses served by promoting a row from the cold tier."""
        return self._cold_hits

    @property
    def cold_spills(self) -> int:
        """Hot rows spilled to the cold tier by the byte budget."""
        return self._cold_spills

    @property
    def cold_promotions(self) -> int:
        """Rows moved back from cold to hot (includes silent prefetch promotions)."""
        return self._cold_promotions

    @property
    def hits(self) -> int:
        """Number of queries served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of queries that required a fresh BFS."""
        return self._misses

    @property
    def preloaded(self) -> int:
        """Number of arrays absorbed from a spilled state (no BFS, no hit)."""
        return self._preloaded

    def cache_size(self) -> int:
        """Number of distance arrays currently cached."""
        return len(self._cache)

    def next_local_cache_size(self) -> int:
        """Number of ``next_local`` hop tables currently cached."""
        return len(self._next_local)

    def clear(self) -> None:
        """Drop every cached array (hit/miss and tier counters are kept)."""
        self._cache.clear()
        self._next_local.clear()
        self._blocks = None
        self._block_storage = None
        if self._cold_tier is not None:
            self._cold_tier.close()
            self._cold_tier = None
        self._hot_bytes = 0
        self._mapped.clear()
        self._mapped_bytes = 0
        self._dist_tick.clear()
        self._nl_tick.clear()

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #

    def _block_bytes(self) -> int:
        storage = self._block_storage
        if storage is None:
            return 0
        return int(storage[0].nbytes + storage[1].nbytes)

    def resident_bytes(self) -> int:
        """Dense private bytes the ``max_bytes`` budget bounds.

        Hot cached rows plus the :meth:`routing_blocks` backing buffers.
        Memmap-backed rows (spill-file views, page-shared across workers)
        and the cold tier (file-backed, reclaimable) are excluded — see
        :meth:`memory_stats` for those.
        """
        return self._hot_bytes + self._block_bytes()

    def memory_stats(self) -> Dict[str, Optional[int]]:
        """Tier-by-tier byte/counter snapshot (used by ``--stats``)."""
        cold = self._cold_tier
        return {
            "resident_bytes": self.resident_bytes(),
            "hot_bytes": self._hot_bytes,
            "block_bytes": self._block_bytes(),
            "mapped_bytes": self._mapped_bytes,
            "cold_bytes": cold.nbytes if cold is not None else 0,
            "cold_entries": len(cold) if cold is not None else 0,
            "cold_hits": self._cold_hits,
            "cold_spills": self._cold_spills,
            "cold_promotions": self._cold_promotions,
            "max_bytes": self._max_bytes,
        }

    def _cold(self) -> _ColdTier:
        if self._cold_tier is None:
            self._cold_tier = _ColdTier(
                self._graph.num_nodes, self._dtype, dir=self._cold_dir
            )
        return self._cold_tier

    def _touch(self, kind: str, key: int) -> None:
        """Stamp *key* as most-recently-used on the global access clock."""
        if self._max_bytes is None:
            return
        self._tick += 1
        (self._dist_tick if kind == "d" else self._nl_tick)[key] = self._tick

    def _forget(self, kind: str, key: int, row: np.ndarray) -> None:
        """Account for a row leaving the hot tier entirely (dropped)."""
        (self._dist_tick if kind == "d" else self._nl_tick).pop(key, None)
        if (kind, key) in self._mapped:
            self._mapped.discard((kind, key))
            self._mapped_bytes -= row.nbytes
        else:
            self._hot_bytes -= row.nbytes

    def _evict_one(self) -> bool:
        """Spill the globally least-recently-used unmapped hot row to cold."""
        best = None
        for key, tick in self._dist_tick.items():
            if ("d", key) not in self._mapped and (best is None or tick < best[0]):
                best = (tick, "d", key)
        for key, tick in self._nl_tick.items():
            if ("l", key) not in self._mapped and (best is None or tick < best[0]):
                best = (tick, "l", key)
        if best is None:
            return False
        _, kind, key = best
        if kind == "d":
            row = self._cache.pop(key)
            del self._dist_tick[key]
        else:
            row = self._next_local.pop(key)
            del self._nl_tick[key]
        self._cold().put(kind, key, row)
        self._hot_bytes -= row.nbytes
        self._cold_spills += 1
        return True

    def _enforce_budget(self) -> None:
        if self._max_bytes is None:
            return
        while (
            self._hot_bytes + self._block_bytes() > self._max_bytes
            and len(self._dist_tick) + len(self._nl_tick) > 1
        ):
            if not self._evict_one():
                break

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _store(self, source: int, dist: np.ndarray, *, mapped: bool = False) -> None:
        dist = np.asarray(dist, dtype=self._dtype)
        dist.setflags(write=False)
        old = self._cache.pop(source, None)
        if old is not None:
            self._forget("d", source, old)
        self._cache[source] = dist
        if mapped:
            self._mapped.add(("d", source))
            self._mapped_bytes += dist.nbytes
        else:
            self._hot_bytes += dist.nbytes
        self._touch("d", source)
        if self._max_entries is not None:
            while len(self._cache) > self._max_entries:
                key, row = self._cache.popitem(last=False)
                self._forget("d", key, row)
        self._enforce_budget()

    def distances_from(self, source: int) -> np.ndarray:
        """Full distance array from *source* (cached, read-only)."""
        source = check_node_index(int(source), self._graph.num_nodes, "source")
        dist = self._cache.get(source)
        if dist is not None:
            self._hits += 1
            self._cache.move_to_end(source)
            self._touch("d", source)
            return dist
        if self._cold_tier is not None and self._cold_tier.has("d", source):
            # Cold tier hit: the row was spilled, not dropped — promoting it
            # back is an accounted cache hit (``--stats`` hit rates must not
            # depend on which tier served the row).
            dist = self._cold_tier.pop("d", source)
            self._hits += 1
            self._cold_hits += 1
            self._cold_promotions += 1
            self._store(source, dist)
            return self._cache[source]
        self._misses += 1
        dist = frontier_bfs(self._graph, source)
        self._store(source, dist)
        return self._cache[source]

    def distances_to(self, target: int) -> np.ndarray:
        """Distance array *to* ``target`` (== ``distances_from``: undirected graphs)."""
        return self.distances_from(target)

    def query_distances_from(self, source: int) -> np.ndarray:
        """The query tier (bulk estimates): exact providers serve the BFS row.

        Identical to :meth:`distances_from` here — same array, same hit/miss
        accounting — so routing everything through the
        :class:`~repro.graphs.provider.DistanceProvider` protocol leaves the
        exact pipeline bitwise unchanged.  Approximate providers override
        this with a sketch (see :class:`~repro.graphs.landmark.LandmarkOracle`).
        """
        return self.distances_from(source)

    def prefetch_query(self, sources: Iterable[int]) -> None:
        """Warm the query tier for *sources* (exact tier: one batched sweep)."""
        self.prefetch(sources)

    def distance_stats(self) -> Dict[str, object]:
        """Provider-mode counters for ``--stats`` (the sketch surface is idle here)."""
        return {
            "mode": self.mode,
            "landmarks": 0,
            "landmark_sweeps": 0,
            "sketch_queries": 0,
            "stretch_rows": 0,
            "mean_stretch": None,
        }

    def distances_to_many(self, targets: Sequence[int]) -> np.ndarray:
        """Distance block of shape ``(len(targets), n)``, one row per target.

        The missing rows are warmed with one batched frontier sweep
        (:meth:`prefetch`); cached rows are reused.  Duplicate targets are
        allowed and simply repeat their row.  The block is a fresh writable
        array (stacking copies), so lane-engine callers can sentinel-mask it
        without touching the cached read-only rows.
        """
        targets = [check_node_index(int(t), self._graph.num_nodes, "target") for t in targets]
        if not targets:
            return np.empty((0, self._graph.num_nodes), dtype=self._dtype)
        self.prefetch(targets)
        return np.stack([self.distances_to(t) for t in targets])

    def next_local_to(self, target: int) -> np.ndarray:
        """Per-node best local hop towards *target* (cached, read-only).

        ``next_local[u]`` is the neighbour :func:`repro.routing.greedy.greedy_route`
        would forward to from ``u`` if ``u`` had no long-range link (``-1``
        when no neighbour strictly improves on ``dist(u, target)``).  Tables
        are memoised under the same LRU policy as the distance arrays.

        On a connected tree the table is read directly off the BFS parent
        pointers (one :func:`~repro.graphs.frontier.frontier_bfs_tree` sweep
        yields distances *and* pointers — cheaper than the segment-argmin
        pass, and equivalent because each node's improving neighbour is
        unique); everywhere else it is one vectorized segment-argmin over the
        cached distance array.
        """
        target = check_node_index(int(target), self._graph.num_nodes, "target")
        table = self._next_local.get(target)
        if table is not None:
            self._next_local.move_to_end(target)
            self._touch("l", target)
            return table
        if self._cold_tier is not None and self._cold_tier.has("l", target):
            table = self._cold_tier.pop("l", target)
            table.setflags(write=False)
            self._cold_hits += 1
            self._cold_promotions += 1
            self._store_next_local(target, table)
            return self._next_local[target]
        dist = None
        if target in self._cache:
            # Accounted lookup: a cached distance array serving a hop-table
            # build is a real cache hit and must refresh the LRU position —
            # a bare ``.get`` here used to under-report ``--stats`` hit rates
            # and let the eviction order drift from true LRU.
            dist = self.distances_from(target)
        elif self._graph.num_edges == self._graph.num_nodes - 1:
            # Tree-shaped edge count: one sweep gives distances and parents.
            dist, parent = frontier_bfs_tree(self._graph, target)
            self._misses += 1
            self._store(target, dist)
            if not np.any(dist == UNREACHABLE):
                # Genuinely a connected tree: the parent pointer *is* the
                # unique improving neighbour.
                table = parent.copy()
                table[target] = -1
            # else: n-1 edges but disconnected (so some component has a
            # cycle) — fall through to the argmin pass on the fresh array.
        if dist is None:
            dist = self.distances_from(target)
        if table is None:
            table = next_local_pointers(self._graph, dist, slot_owner=self._owner_map())
        table.setflags(write=False)
        self._store_next_local(target, table)
        return self._next_local[target]

    def _owner_map(self) -> np.ndarray:
        """The CSR slot-to-node map, built once and reused by every pass."""
        if self._slot_owner is None:
            self._slot_owner = np.repeat(
                np.arange(self._graph.num_nodes, dtype=np.int64),
                np.diff(self._graph.indptr),
            )
        return self._slot_owner

    def _padded_adjacency(self):
        """Padded adjacency for the batched pointer pass, built once."""
        if self._padded is False:  # computed before, graph rejected padding
            return None
        if self._padded is None:
            self._padded = padded_adjacency(self._graph)
            if self._padded is None:
                self._padded = False
                return None
        return self._padded

    def _store_next_local(self, target: int, table: np.ndarray, *, mapped: bool = False) -> None:
        table = np.asarray(table, dtype=self._dtype)
        table.setflags(write=False)
        old = self._next_local.pop(target, None)
        if old is not None:
            self._forget("l", target, old)
        self._next_local[target] = table
        if mapped:
            self._mapped.add(("l", target))
            self._mapped_bytes += table.nbytes
        else:
            self._hot_bytes += table.nbytes
        self._touch("l", target)
        if self._max_entries is not None:
            while len(self._next_local) > self._max_entries:
                key, row = self._next_local.popitem(last=False)
                self._forget("l", key, row)
        self._enforce_budget()

    def next_local_to_many(self, targets: Sequence[int]) -> np.ndarray:
        """Hop-table block of shape ``(len(targets), n)``, one row per target.

        Rows already memoised by :meth:`next_local_to` are reused; all missing
        rows are built together — their distance arrays warmed with one
        batched frontier sweep (:meth:`distances_to_many`, a cache hit per
        already-known row) and their pointer tables derived in **one**
        transposed composite-key pass (:func:`next_local_pointers_many`)
        instead of one Python round-trip per target.  Every row is
        bit-for-bit identical to the corresponding :meth:`next_local_to`
        table, and fresh rows are memoised under the same LRU policy.
        Duplicate targets repeat their row; the returned block is a fresh
        writable stack.
        """
        n = self._graph.num_nodes
        key = [check_node_index(int(t), n, "target") for t in targets]
        if not key:
            return np.empty((0, n), dtype=self._dtype)
        self._ensure_next_local(key)
        return np.stack([self.next_local_to(t) for t in key])

    def _ensure_next_local(self, targets: Sequence[int]) -> None:
        """Build (and memoise) every missing hop table of *targets* at once.

        The batched core shared by :meth:`next_local_to_many` and
        :meth:`routing_blocks`: missing targets' distance arrays are warmed
        with one batched frontier sweep and their pointer tables derived in
        one transposed composite-key pass (:func:`next_local_pointers_many`).
        Targets must be validated node indices.
        """
        missing: list = []
        seen = set()
        cold = self._cold_tier
        for t in targets:
            if t in self._next_local or t in seen:
                continue
            if cold is not None and cold.has("l", t):
                # Spilled, not missing: promote silently (no hit/miss — the
                # caller's per-target lookup does the accounted access).
                table = cold.pop("l", t)
                self._cold_promotions += 1
                self._store_next_local(t, table)
                continue
            seen.add(t)
            missing.append(t)
        if self._max_entries is not None and len(missing) > self._max_entries:
            # Mirror prefetch(): keep the head of the batch — those are the
            # rows consumed (by the caller) before any later insert can
            # evict them.
            missing = missing[: self._max_entries]
        if missing:
            dist_block = self.distances_to_many(missing)
            tables = next_local_pointers_many(
                self._graph, dist_block, padded=self._padded_adjacency()
            )
            for row, t in enumerate(missing):
                # Copy each row out of the block so the LRU cap can release
                # the block's memory row by row (same policy as prefetch).
                table = tables[row].copy()
                table.setflags(write=False)
                self._store_next_local(t, table)

    def routing_blocks(self, targets: Sequence[int]) -> tuple:
        """Stacked lane-engine blocks for *targets*: ``(dist_block, next_local_block)``.

        ``dist_block[i]`` is ``dist_G(·, targets[i])`` with ``UNREACHABLE``
        already replaced by a larger-than-any-distance sentinel (so the
        engine's min-comparisons need no per-step masking), and
        ``next_local_block[i]`` the matching hop table.  Both are read-only,
        shape ``(len(targets), n)``.

        The pair is memoised in a **single-slot** cache keyed by the exact
        targets tuple: an experiment cell routes every scheme over the same
        seeded pairs, so the second and later schemes (and repeated benchmark
        rounds) reuse the blocks outright.  Any other tuple *refills* a
        preallocated backing buffer instead of re-stacking three fresh
        ``k·n`` copies (the ``np.stack`` of 3×25 MB blocks at 50k the ROADMAP
        flagged): a row's content is a pure function of its target, so only
        rows whose target actually changed are rewritten — and the sentinel
        masking happens during the row copy, not as an extra block-wide pass.

        Consequently the returned arrays are **views of reused storage**:
        they stay valid until the next :meth:`routing_blocks` call with a
        *different* targets tuple (or :meth:`clear`), which rewrites them in
        place.  The lane engine consumes them within one ``route_lanes``
        call; callers that need longer-lived blocks must copy.
        """
        key = tuple(int(t) for t in targets)
        if self._blocks is not None and self._blocks[0] == key:
            return self._blocks[1], self._blocks[2]
        n = self._graph.num_nodes
        for t in key:
            check_node_index(t, n, "target")
        k = len(key)
        # Warm everything batched first: one frontier sweep for the missing
        # distance rows, one transposed composite-key pass for the missing
        # hop tables — this is what lifts the lane engine's cold
        # (first-scheme) estimate to the warm rate.
        self.prefetch(key)
        self._ensure_next_local(key)
        storage = self._block_storage
        if storage is None or storage[0].shape[0] < k:
            # Grow geometrically and *carry the old rows over*: sessions that
            # pin an append-only target list (the serve layer) extend the
            # tuple by a few targets per batch, and rebuilding the whole
            # buffer from scratch each time would turn every growth into a
            # full k·n refill instead of just the new rows.
            capacity = k if storage is None else max(k, 2 * storage[0].shape[0])
            grown = (
                np.empty((capacity, n), dtype=np.int64),
                np.empty((capacity, n), dtype=np.int64),
                [-1] * capacity,
            )
            if storage is not None:
                old = storage[0].shape[0]
                grown[0][:old] = storage[0]
                grown[1][:old] = storage[1]
                grown[2][:old] = storage[2]
            storage = grown
            self._block_storage = storage
            # The buffers count against the byte budget: growing them may
            # push hot rows out to the cold tier.
            self._enforce_budget()
        dist_buf, nl_buf, row_targets = storage
        for i, t in enumerate(key):
            if row_targets[i] == t:
                continue  # deterministic content, already in place
            row = dist_buf[i]
            np.copyto(row, self.distances_from(t))
            row[row == UNREACHABLE] = FAR_DISTANCE
            np.copyto(nl_buf[i], self.next_local_to(t))
            row_targets[i] = t
        dist_block = dist_buf[:k]
        next_local_block = nl_buf[:k]
        dist_block.setflags(write=False)
        next_local_block.setflags(write=False)
        self._blocks = (key, dist_block, next_local_block)
        return dist_block, next_local_block

    def __call__(self, u: int, v: int) -> int:
        """``dist_G(u, v)`` (``UNREACHABLE`` = -1 across components)."""
        return int(self.distances_from(int(u))[int(v)])

    def prefetch(self, sources: Iterable[int]) -> None:
        """Warm the cache for *sources* with one batched frontier sweep.

        Only sources not already cached are computed; the batch shares a
        single level-synchronous pass, so warming ``k`` sources is far
        cheaper than ``k`` individual :meth:`distances_from` misses.
        """
        n = self._graph.num_nodes
        missing: list[int] = []
        seen = set()
        cold = self._cold_tier
        for s in sources:
            s = check_node_index(int(s), n, "source")
            if s in self._cache or s in seen:
                continue
            if cold is not None and cold.has("d", s):
                # Spilled, not missing: promote silently (no hit/miss — the
                # caller's per-source lookup does the accounted access).
                self._cold_promotions += 1
                self._store(s, cold.pop("d", s))
                continue
            seen.add(s)
            missing.append(s)
        if not missing:
            return
        if self._max_entries is not None and len(missing) > self._max_entries:
            # Keep the *head* of the batch: callers consume sources in batch
            # order, so the first max_entries entries are the ones that will
            # be hit before any later miss can evict them.
            missing = missing[: self._max_entries]
        block = bfs_distances_many(self._graph, missing)
        self._misses += len(missing)
        for row, s in enumerate(missing):
            # Copy each row out of the (k, n) block: storing views would pin
            # the whole block in memory for as long as any one row survives
            # in the cache, defeating the max_entries cap.
            self._store(s, block[row].copy())

    # ------------------------------------------------------------------ #
    # Ball queries (Theorem-4 scheme)
    # ------------------------------------------------------------------ #

    def ball(self, center: int, radius: int) -> np.ndarray:
        """Sorted members of ``B(center, radius)``, served from the cached BFS."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dist = self.distances_from(center)
        return np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]

    def ball_size(self, center: int, radius: int) -> int:
        """``|B(center, radius)|`` without materialising the member array."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dist = self.distances_from(center)
        return int(np.count_nonzero((dist != UNREACHABLE) & (dist <= radius)))

    # ------------------------------------------------------------------ #
    # Spill round-trip (GraphStore)
    # ------------------------------------------------------------------ #

    def export_state(self) -> Dict[str, np.ndarray]:
        """Cached arrays as four plain numpy blocks (JSON-free, ``np.savez``-able).

        ``dist_sources``/``dist_block`` stack the memoised distance arrays
        (hot tier in LRU order, oldest first, then any cold-tier rows in key
        order) and ``nl_targets``/``nl_block`` the memoised ``next_local``
        tables.  Together with the graph these blocks fully reconstruct the
        oracle's caches via :meth:`absorb_state` — the
        :class:`~repro.graphs.store.GraphStore` spills them to disk so a
        sibling worker process rebuilds a warmed oracle with zero BFS.
        """
        n = self._graph.num_nodes
        cold = self._cold_tier
        dist_keys = list(self._cache.keys())
        dist_rows = list(self._cache.values())
        nl_keys = list(self._next_local.keys())
        nl_rows = list(self._next_local.values())
        if cold is not None:
            for kind, key in sorted(cold._slots):
                row = np.array(cold._mm[cold._slots[(kind, key)]])
                if kind == "d":
                    dist_keys.append(key)
                    dist_rows.append(row)
                else:
                    nl_keys.append(key)
                    nl_rows.append(row)
        dist_sources = np.asarray(dist_keys, dtype=np.int64)
        dist_block = (
            np.stack(dist_rows) if dist_rows else np.empty((0, n), dtype=self._dtype)
        )
        nl_targets = np.asarray(nl_keys, dtype=np.int64)
        nl_block = np.stack(nl_rows) if nl_rows else np.empty((0, n), dtype=self._dtype)
        return {
            "dist_sources": dist_sources,
            "dist_block": dist_block,
            "nl_targets": nl_targets,
            "nl_block": nl_block,
        }

    def absorb_state(self, state: Dict[str, np.ndarray], *, copy: bool = True) -> None:
        """Preload the caches from an :meth:`export_state` snapshot.

        Absorbed arrays count as neither hits nor misses (the ``preloaded``
        counter tracks them), entries already cached are left untouched, and
        the LRU cap applies as usual — so absorbing is observationally
        identical to having computed the arrays locally, minus the BFS.

        With ``copy=False`` and blocks already in the oracle's row dtype
        (the raw-memmap spill loader's case), rows are stored as *views* of
        the given blocks: memmap-backed pages stay shared between every
        worker absorbing the same spill file and are exempt from the
        ``max_bytes`` budget.
        """
        n = self._graph.num_nodes
        dist_sources = np.asarray(state["dist_sources"], dtype=np.int64)
        nl_targets = np.asarray(state["nl_targets"], dtype=np.int64)
        dist_block = np.asarray(state["dist_block"])
        nl_block = np.asarray(state["nl_block"])
        mapped = (
            not copy
            and dist_block.dtype == self._dtype
            and nl_block.dtype == self._dtype
        )
        if not mapped:
            dist_block = np.asarray(dist_block, dtype=self._dtype)
            nl_block = np.asarray(nl_block, dtype=self._dtype)
        if dist_block.shape != (dist_sources.size, n) or nl_block.shape != (nl_targets.size, n):
            raise ValueError("spilled oracle state does not match this graph's shape")
        for row, source in enumerate(dist_sources):
            source = check_node_index(int(source), n, "source")
            if source not in self._cache:
                self._store(
                    source,
                    dist_block[row] if mapped else dist_block[row].copy(),
                    mapped=mapped,
                )
                self._preloaded += 1
        for row, target in enumerate(nl_targets):
            target = check_node_index(int(target), n, "target")
            if target not in self._next_local:
                self._store_next_local(
                    target,
                    nl_block[row] if mapped else nl_block[row].copy(),
                    mapped=mapped,
                )
                self._preloaded += 1
