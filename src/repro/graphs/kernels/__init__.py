"""Optional compiled backends for the BFS level kernels and hop-table builds.

PRs 4-6 drove the hot loops in :mod:`repro.graphs.frontier` and
:mod:`repro.graphs.oracle` to the numpy fancy-index floor (~2.3 ns/element):
each per-level BFS pass and each batched ``next_local`` build is now bounded
by allocator churn and gather overhead, not arithmetic.  The step past that
floor is a *typed loop over the CSR index arrays* — the same per-element work,
but with no temporaries, no per-call dispatch, and no buffered scatter.  This
package provides exactly that as an **opt-in backend registry**:

* ``numpy`` — always available; it is the *bitwise reference*.  Selecting it
  runs the existing inline numpy kernels in ``frontier.py``/``oracle.py``
  unchanged (this backend's kernel slots are ``None`` on purpose: the
  reference implementation lives where it always lived, so choosing numpy is
  guaranteed to be a no-op).
* ``numba`` — ``@njit(cache=True)`` typed CSR loops for the four hot kernels
  (top-down CSR gather, padded-delta top-down, bottom-up bitmask scan, and
  the batched ``next_local`` fill), loaded through a **build-free import
  guard**: when numba is not importable the repo stays pure python, requests
  for the compiled backend degrade to numpy with a single logged warning,
  and nothing else changes.

**Selection** is per-call, like the existing per-level kernel switch: the
engine resolves :func:`active_backend` at the top of each sweep/build.  The
resolution order is

1. an explicit in-process override (:func:`use_backend` — tests), then
2. the ``REPRO_KERNEL_BACKEND`` environment variable (which is also how
   :func:`set_backend` — the CLI's ``--kernel-backend`` flag — records the
   choice, so sweep worker processes inherit it), then
3. ``auto``: numba when importable, numpy otherwise.

**The backend must never change results.**  Every compiled kernel stamps the
same levels / picks the same first-CSR-slot hops as the numpy reference
(property-tested bitwise in ``tests/graphs/test_kernels.py``), which is why
the choice is *not* part of the experiment fingerprint: artifacts produced
under either backend are interchangeable, and a resumed sweep may freely mix
them.

**Warmup.**  JIT compilation happens once per process per signature; the
:meth:`KernelBackend.warmup` hook runs every kernel on tiny inputs (both
int32 and int64 state dtypes) and records the elapsed time, so benchmark
recorders can keep compilation out of timed regions and ``--stats`` can
report it.
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_stats",
    "get_backend",
    "set_backend",
    "use_backend",
    "warmup_active",
]

#: Environment variable carrying the process-wide backend request.  Worker
#: processes of a sweep inherit the parent's environment, so a CLI-level
#: :func:`set_backend` propagates through the ProcessPoolExecutor for free.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Valid request names.  ``auto`` resolves to numba when importable, numpy
#: otherwise; the other two force a specific backend (forcing ``numba``
#: without numba installed falls back to numpy with one logged warning).
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "numpy", "numba")

_log = logging.getLogger(__name__)


class KernelBackend:
    """A named kernel set the BFS engine and oracle can dispatch through.

    The four kernel slots mirror the engine's per-level kernel portfolio:

    ``top_down_csr(indptr, indices, dist, frontier, n, level)``
        Expand *frontier* (flat keys) over the CSR arrays, stamping ``level``
        into unvisited slots of *dist*; returns the next frontier.
    ``top_down_padded(pad, dist, frontier, n, level)``
        Same step over the slot-major padded *delta* adjacency.
    ``bottom_up_csr(indptr, indices, dist, cand, mask, n, level)``
        Scan each unvisited candidate's neighbours for a bit set in the
        bit-packed previous-frontier *mask*; stamps *dist* and returns the
        per-candidate found flags.
    ``next_local_fill(indptr, indices, dist_block, out)``
        Batched first-improving-CSR-slot hop-table fill (the compiled
        counterpart of :func:`repro.graphs.oracle.next_local_pointers_many`).

    The ``numpy`` backend keeps all four slots ``None``: it denotes "run the
    inline numpy reference code", so selecting it can never perturb the
    existing paths.  ``warmup()`` is idempotent and returns the one-time JIT
    compile time in seconds (0.0 for non-compiled backends).
    """

    def __init__(
        self,
        name: str,
        *,
        compiled: bool,
        top_down_csr: Optional[Callable] = None,
        top_down_padded: Optional[Callable] = None,
        bottom_up_csr: Optional[Callable] = None,
        next_local_fill: Optional[Callable] = None,
        warmup_kernels: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.compiled = compiled
        self.top_down_csr = top_down_csr
        self.top_down_padded = top_down_padded
        self.bottom_up_csr = bottom_up_csr
        self.next_local_fill = next_local_fill
        self._warmup_kernels = warmup_kernels
        #: ``None`` until :meth:`warmup` has run (non-compiled backends need
        #: no warmup and are born at 0.0).
        self.warmup_seconds: Optional[float] = None if compiled else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r}, compiled={self.compiled})"

    def warmup(self) -> float:
        """Compile every kernel on tiny inputs; idempotent, returns seconds.

        Benchmarks call this before their timed regions so JIT compilation
        never pollutes a measurement; the sweep runner calls it once per
        worker process for the same reason.  The elapsed time is kept on
        :attr:`warmup_seconds` for ``--stats`` reporting.
        """
        if self.warmup_seconds is not None:
            return self.warmup_seconds
        start = time.perf_counter()
        if self._warmup_kernels is not None:
            self._warmup_kernels()
        self.warmup_seconds = time.perf_counter() - start
        return self.warmup_seconds


#: The always-available bitwise reference (inline numpy code in the engine).
_NUMPY = KernelBackend("numpy", compiled=False)

_numba_backend: Optional[KernelBackend] = None
_numba_import_failed = False
_warned_missing = False
_warned_bad_env = False

#: In-process override installed by :func:`use_backend`; beats the env var.
_override: Optional[str] = None


def _load_numba_backend() -> Optional[KernelBackend]:
    """Import the numba kernel module behind the build-free guard.

    Any import failure (numba absent, broken install, unsupported platform)
    marks the backend unavailable for the rest of the process; resolution
    then falls back to numpy.  The guard catches broad ``Exception`` on
    purpose — numba can fail at import time with more than ``ImportError``
    (e.g. llvmlite/ABI mismatches) and every such failure means the same
    thing here: no compiled backend.
    """
    global _numba_backend, _numba_import_failed
    if _numba_backend is not None or _numba_import_failed:
        return _numba_backend
    try:
        from repro.graphs.kernels import numba_backend as _nb
    except Exception as exc:  # noqa: BLE001 - see docstring
        _numba_import_failed = True
        _log.debug("numba kernel backend unavailable: %s", exc)
        return None
    _numba_backend = KernelBackend(
        "numba",
        compiled=True,
        top_down_csr=_nb.top_down_csr,
        top_down_padded=_nb.top_down_padded,
        bottom_up_csr=_nb.bottom_up_csr,
        next_local_fill=_nb.next_local_fill,
        warmup_kernels=_nb.warmup_kernels,
    )
    return _numba_backend


def _warn_missing_numba() -> None:
    global _warned_missing
    if not _warned_missing:
        _warned_missing = True
        _log.warning(
            "kernel backend 'numba' requested but numba is not importable; "
            "falling back to the numpy reference kernels "
            "(install the optional extra: pip install .[compiled])"
        )


def requested_backend() -> str:
    """The current *request* (``auto``/``numpy``/``numba``), before resolution."""
    if _override is not None:
        return _override
    value = os.environ.get(BACKEND_ENV_VAR, "").strip().lower() or "auto"
    if value not in BACKEND_CHOICES:
        global _warned_bad_env
        if not _warned_bad_env:
            _warned_bad_env = True
            _log.warning(
                "ignoring invalid %s=%r (expected one of %s); using 'auto'",
                BACKEND_ENV_VAR,
                value,
                "/".join(BACKEND_CHOICES),
            )
        return "auto"
    return value


def active_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve the backend serving the current call.

    With *name* the resolution is forced for this call; otherwise the
    process-wide request (:func:`requested_backend`) applies.  ``numba``
    requests degrade to numpy (one logged warning) when numba is not
    importable; ``auto`` degrades silently — a pure-python checkout is not a
    misconfiguration.
    """
    request = name if name is not None else requested_backend()
    if request not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {request!r}; expected one of {BACKEND_CHOICES}"
        )
    if request == "numpy":
        return _NUMPY
    backend = _load_numba_backend()
    if backend is None:
        if request == "numba":
            _warn_missing_numba()
        return _NUMPY
    return backend


def get_backend(name: str) -> KernelBackend:
    """The backend registered under *name* (``numpy``/``numba``), or raise.

    Unlike :func:`active_backend` this never falls back: asking for a
    backend that cannot load is an error (used by tests and tooling that
    must not silently measure the wrong thing).
    """
    if name == "numpy":
        return _NUMPY
    if name == "numba":
        backend = _load_numba_backend()
        if backend is None:
            raise RuntimeError(
                "numba kernel backend is not available in this environment "
                "(pip install .[compiled])"
            )
        return backend
    raise ValueError(f"unknown kernel backend {name!r}; expected 'numpy' or 'numba'")


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can actually serve calls right now."""
    names = ["numpy"]
    if _load_numba_backend() is not None:
        names.append("numba")
    return tuple(names)


def set_backend(name: str) -> KernelBackend:
    """Install *name* as the process-wide request and return the resolution.

    Records the choice in ``os.environ[REPRO_KERNEL_BACKEND]`` so worker
    processes spawned later (the sweep pool) inherit it, and clears any
    in-process override.  This is what the CLI's ``--kernel-backend`` flag
    calls.
    """
    name = name.strip().lower()
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_CHOICES}"
        )
    global _override
    _override = None
    os.environ[BACKEND_ENV_VAR] = name
    return active_backend()


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Context manager forcing *name* for the enclosed calls (test hook)."""
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_CHOICES}"
        )
    global _override
    saved = _override
    _override = name
    try:
        yield active_backend()
    finally:
        _override = saved


def warmup_active() -> float:
    """Warm the active backend (no-op 0.0 for numpy); returns JIT seconds."""
    return active_backend().warmup()


def backend_stats() -> Dict[str, object]:
    """Requested/active backend snapshot for ``--stats`` and bench records."""
    backend = active_backend()
    return {
        "requested": requested_backend(),
        "active": backend.name,
        "compiled": backend.compiled,
        "jit_warmup_seconds": backend.warmup_seconds,
    }
