"""Numba ``@njit(cache=True)`` kernels for the BFS level steps and hop fills.

Imported lazily (and guardedly) by :mod:`repro.graphs.kernels` — this module
must never be imported directly by engine code, so a checkout without numba
stays pure python.

Each kernel is the *typed-loop transliteration* of one numpy kernel in
:mod:`repro.graphs.frontier` / :mod:`repro.graphs.oracle` and stamps bitwise
identical state:

* BFS distances are intra-level order independent, so the top-down loops may
  visit frontier entries in order and dedupe by stamping (first writer wins —
  any writer stamps the same ``level``).
* The bottom-up loop probes the same bit-packed previous-frontier mask the
  numpy kernel builds, and may short-circuit on the first set bit: membership
  is a disjunction.
* The hop fill takes the *first* CSR slot whose neighbour sits one level
  closer — exactly the lexicographic ``(distance, id)`` minimum the
  transposed composite-key pass computes, because CSR neighbour lists are
  sorted.

All kernels are dtype-generic over the sweep state dtype (int32 below 2**31
flat keys, int64 past it or when forced — see
:func:`repro.graphs.frontier.bfs_dtype`); numba specialises per signature and
:func:`warmup_kernels` pre-compiles both variants so sweeps never JIT inside
a timed region.  ``cache=True`` persists the machine code on disk, so warmup
is only expensive the very first time a given environment runs.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def top_down_csr(indptr, indices, dist, frontier, n, level):
    """Expand *frontier* (flat keys) over CSR; stamp ``level``; return next frontier.

    The stamp doubles as the visited filter *and* the dedupe (matching the
    numpy kernel's mask + claim-scatter pair): a key discovered twice within
    the level is appended only by its first discoverer.
    """
    total = 0
    for i in range(frontier.shape[0]):
        node = frontier[i] % n
        total += indptr[node + 1] - indptr[node]
    nxt = np.empty(total, dist.dtype)
    count = 0
    for i in range(frontier.shape[0]):
        key = frontier[i]
        node = key % n
        base = key - node
        for p in range(indptr[node], indptr[node + 1]):
            nbr_key = base + indices[p]
            if dist[nbr_key] == -1:
                dist[nbr_key] = level
                nxt[count] = nbr_key
                count += 1
    return nxt[:count]


@njit(cache=True)
def top_down_padded(pad, dist, frontier, n, level):
    """Top-down step over the slot-major padded *delta* adjacency.

    ``pad[j, u]`` is ``v - u`` for ``u``'s ``j``-th CSR neighbour (0 in the
    padding slots), so a neighbour's flat key is ``key + pad[j, node]`` and a
    padding slot lands on the owner's own (always visited) key — the same
    self-padding trick the numpy kernel relies on, with no sentinel handling.
    """
    dmax = pad.shape[0]
    nxt = np.empty(frontier.shape[0] * dmax, dist.dtype)
    count = 0
    for i in range(frontier.shape[0]):
        key = frontier[i]
        node = key % n
        for j in range(dmax):
            nbr_key = key + pad[j, node]
            if dist[nbr_key] == -1:
                dist[nbr_key] = level
                nxt[count] = nbr_key
                count += 1
    return nxt[:count]


@njit(cache=True)
def bottom_up_csr(indptr, indices, dist, cand, mask, n, level):
    """Bottom-up step: probe each candidate's neighbours in the frontier mask.

    *mask* is the bit-packed previous frontier (one bit per flat key); a
    candidate joins the level iff any neighbour's bit is set, and the scan
    short-circuits on the first hit.  Stamps *dist* in place and returns the
    per-candidate found flags (the caller splits *cand* on them, matching
    ``_bottom_up_level``'s ``(frontier, remaining)`` contract).
    """
    found = np.zeros(cand.shape[0], np.bool_)
    for i in range(cand.shape[0]):
        key = cand[i]
        node = key % n
        base = key - node
        for p in range(indptr[node], indptr[node + 1]):
            nbr_key = base + indices[p]
            if (mask[nbr_key >> 3] >> (nbr_key & 7)) & 1:
                dist[key] = level
                found[i] = True
                break
    return found


@njit(cache=True)
def next_local_fill(indptr, indices, dist_block, out):
    """Batched hop-table fill: first CSR slot one level closer, else -1.

    Row ``r`` of *dist_block* is a genuine BFS distance array; for every node
    ``u`` with ``dist > 0`` the first CSR neighbour at ``dist - 1`` is the
    lexicographic ``(distance, id)`` minimum (CSR lists are sorted), i.e.
    exactly what :func:`repro.graphs.oracle.next_local_pointers` selects.
    Targets (``dist == 0``) and unreachable nodes (``dist == -1``) keep -1.
    """
    k, n = dist_block.shape
    for r in range(k):
        for u in range(n):
            du = dist_block[r, u]
            hop = -1
            if du > 0:
                want = du - 1
                for p in range(indptr[u], indptr[u + 1]):
                    v = indices[p]
                    if dist_block[r, v] == want:
                        hop = v
                        break
            out[r, u] = hop


def warmup_kernels() -> None:
    """Compile every kernel for both sweep state dtypes on tiny inputs.

    Called (once, timed) through :meth:`KernelBackend.warmup`.  The CSR
    arrays are always int64 (:class:`repro.graphs.graph.Graph` invariant);
    the state dtype is whatever :func:`~repro.graphs.frontier.bfs_dtype`
    picked, so both int32 and int64 signatures are pre-compiled here.
    """
    indptr = np.array([0, 1, 3, 4], dtype=np.int64)  # path 0 - 1 - 2
    indices = np.array([1, 0, 2, 1], dtype=np.int64)
    n = 3
    for dt in (np.int32, np.int64):
        dist = np.full(n, -1, dtype=dt)
        dist[0] = 0
        frontier = np.zeros(1, dtype=dt)
        top_down_csr(indptr, indices, dist, frontier, n, 1)

        pad = np.zeros((2, n), dtype=dt)
        pad[0, 0] = 1
        pad[0, 1] = -1
        pad[1, 1] = 1
        pad[1, 2] = -1
        dist = np.full(n, -1, dtype=dt)
        dist[0] = 0
        top_down_padded(pad, dist, np.zeros(1, dtype=dt), n, 1)

        mask = np.zeros(1, dtype=np.uint8)
        mask[0] = 1  # key 0 is the previous frontier
        dist = np.full(n, -1, dtype=dt)
        dist[0] = 0
        bottom_up_csr(indptr, indices, dist, np.array([1, 2], dtype=dt), mask, n, 1)

        dist_block = np.array([[0, 1, 2]], dtype=dt)
        out = np.full((1, n), -1, dtype=dt)
        next_local_fill(indptr, indices, dist_block, out)
