"""Landmark/pivot approximate distances with exact-BFS fallback.

The :class:`LandmarkOracle` is the ``distance_mode="landmark"`` provider of
:func:`repro.graphs.provider.make_distance_provider`: it BFS's ``L`` pivot
nodes once and answers the *query tier* with the classic triangle-inequality
sketch

    ``est(u, t) = min_l  d(u, l) + d(l, t)``

which is admissible (``est >= d`` everywhere, with equality whenever a
shortest ``u``–``t`` path passes through a pivot — in particular whenever
``u`` or ``t`` *is* a pivot) and costs ``O(L)`` per entry after the one-off
``O(L · BFS)`` preprocessing pass.  At a million nodes this is what turns
the per-source distance surface from "one full-graph BFS per query" into
"one tiny min-plus reduction per query".

The *exact tier* is untouched: :meth:`distances_from`, the ``next_local``
hop tables and :meth:`routing_blocks` are inherited from
:class:`~repro.graphs.oracle.DistanceOracle` verbatim, because greedy
routing's strict-``<`` next-hop comparisons need genuine BFS rows — the
sketch serves estimates (ball profiles, extremal-pair sampling, reporting
stats), never trajectories.

Pivot selection is deterministic in the construction ``seed`` (callers pass
the instance seed): the first pivot is degree-weighted, the rest follow the
farthest-point (k-center) rule — each new pivot maximises its distance to
the pivots already chosen, with unreachable nodes treated as infinitely far
so disconnected components each receive a pivot before any component gets a
second one.  Crucially the pivot rows are fetched through the inherited
*accounted* cache, so a worker that absorbed a sibling's spill rebuilds the
sketch from pure cache hits (zero BFS), and :meth:`export_state` /
``absorb_state`` spill-compatibility is inherited for free — landmark rows
are ordinary distance rows.

The sketch is *pure*: :meth:`query_distances_from` never consults the exact
cache, so an estimate is a function of ``(graph, seed, L)`` alone — the same
whether the exact row happens to be resident, spilled, or never computed.
That purity is what keeps landmark-mode sweeps bitwise-identical across
``--jobs`` / ``--shard`` / ``--resume`` schedules.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.graphs.frontier import UNREACHABLE
from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.utils.validation import check_node_index

__all__ = ["LandmarkOracle", "DEFAULT_NUM_LANDMARKS"]

#: Default pivot count; ``--landmarks`` and ``ExperimentConfig.landmarks``
#: both default to this value.
DEFAULT_NUM_LANDMARKS = 16

#: Exact rows sampled when measuring mean stretch (``distance_stats``).
_STRETCH_SAMPLE_ROWS = 32


class LandmarkOracle(DistanceOracle):
    """A :class:`DistanceOracle` whose query tier rides a landmark sketch.

    Parameters
    ----------
    graph:
        The graph the provider answers queries about.
    num_landmarks:
        Pivot count ``L`` (clamped to the node count).  More pivots mean a
        tighter sketch and a costlier warmup — the stretch/warmup trade-off
        is benched as ``approx_distance`` rows in ``BENCH_routing.json``.
    seed:
        Drives pivot selection deterministically (pass the instance seed).
    max_entries, max_bytes, cold_dir:
        Inherited exact-tier cache knobs (see :class:`DistanceOracle`).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        num_landmarks: int = DEFAULT_NUM_LANDMARKS,
        seed: int = 0,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cold_dir: Optional[str] = None,
    ) -> None:
        if num_landmarks < 1:
            raise ValueError("num_landmarks must be at least 1")
        super().__init__(
            graph, max_entries=max_entries, max_bytes=max_bytes, cold_dir=cold_dir
        )
        self._num_landmarks = int(num_landmarks)
        self._landmark_seed = int(seed)
        #: Pivot node ids (selection order); ``None`` until the lazy build.
        self._landmark_ids: Optional[np.ndarray] = None
        #: ``(L, n)`` pivot distance block with ``UNREACHABLE`` remapped to
        #: ``_huge`` so the min-plus reduction needs no per-row masking.
        self._land_block: Optional[np.ndarray] = None
        # The sketch adds two finite entries, so ``_huge`` must survive one
        # addition without overflow in the compute dtype: int32 holds sums up
        # to 2^31-1, and real distances stay below 2^29 whenever we use it.
        if graph.num_nodes <= (1 << 29) and np.dtype(self._dtype) == np.int32:
            self._sketch_dtype = np.dtype(np.int32)
            self._huge = np.int32((1 << 30) - 1)
        else:
            self._sketch_dtype = np.dtype(np.int64)
            self._huge = np.int64(1 << 61)  # 2*huge still fits int64
        self._sketch_queries = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def mode(self) -> str:
        return "landmark"

    @property
    def num_landmarks(self) -> int:
        """The requested pivot count ``L`` (the build may clamp it)."""
        return self._num_landmarks

    @property
    def landmarks(self) -> np.ndarray:
        """The selected pivot ids, building the sketch on first access."""
        self._ensure_landmarks()
        assert self._landmark_ids is not None
        return self._landmark_ids

    @property
    def sketch_queries(self) -> int:
        """Query-tier rows answered from the sketch (exact fallbacks excluded)."""
        return self._sketch_queries

    def memory_stats(self) -> Dict[str, Optional[int]]:
        stats = super().memory_stats()
        block = self._land_block
        stats["landmark_bytes"] = int(block.nbytes) if block is not None else 0
        return stats

    def distance_stats(self) -> Dict[str, object]:
        """Sketch counters plus the *measured* mean stretch (``--stats``).

        Stretch is sampled lazily against up to ``_STRETCH_SAMPLE_ROWS`` of
        the exact rows the routing blocks already paid for (most recently
        used first, pivot rows excluded): per row, the mean of
        ``est / exact`` over reachable non-trivial targets.  No extra BFS is
        ever run for the measurement.
        """
        built = self._landmark_ids.size if self._landmark_ids is not None else 0
        stats: Dict[str, object] = {
            "mode": self.mode,
            "landmarks": built or self._num_landmarks,
            "landmark_sweeps": int(built),
            "sketch_queries": self._sketch_queries,
            "stretch_rows": 0,
            "mean_stretch": None,
        }
        if self._land_block is None or not self._cache:
            return stats
        pivots = set(self._landmark_ids.tolist())
        ratios = []
        for source in list(self._cache.keys())[::-1]:
            if len(ratios) >= _STRETCH_SAMPLE_ROWS:
                break
            if source in pivots:
                continue
            exact = self._cache[source]
            est = self._sketch_row(source)
            mask = (exact > 0) & (est != UNREACHABLE)
            if not mask.any():
                continue
            ratios.append(float(np.mean(est[mask] / exact[mask])))
        if ratios:
            stats["stretch_rows"] = len(ratios)
            stats["mean_stretch"] = float(np.mean(ratios))
        return stats

    # ------------------------------------------------------------------ #
    # Pivot selection
    # ------------------------------------------------------------------ #

    def _ensure_landmarks(self) -> None:
        """Select the pivots and materialise the ``(L, n)`` sketch block.

        Each pivot row is fetched through the inherited accounted cache
        (:meth:`distances_from`): on a spill-warmed oracle the whole build is
        cache hits, and the rows the build *does* compute stay cached — the
        routing blocks of pivot targets come for free afterwards.
        """
        if self._land_block is not None:
            return
        n = self._graph.num_nodes
        limit = min(self._num_landmarks, n) if n else 0
        if limit == 0:
            self._landmark_ids = np.empty(0, dtype=np.int64)
            self._land_block = np.empty((0, n), dtype=self._sketch_dtype)
            return
        rng = np.random.default_rng(self._landmark_seed)
        degrees = np.diff(self._graph.indptr).astype(np.float64)
        total = float(degrees.sum())
        if total > 0.0:
            first = int(rng.choice(n, p=degrees / total))
        else:
            first = int(rng.integers(0, n))
        block = np.empty((limit, n), dtype=self._sketch_dtype)
        chosen = [first]
        self._fill_pivot_row(block[0], first)
        # Farthest-point coverage: cover[u] = min over chosen pivots of the
        # (huge-masked) distance, so argmax lands in the least-covered region
        # — or in a still-uncovered component, which the huge sentinel makes
        # infinitely attractive.
        cover = block[0].copy()
        while len(chosen) < limit:
            nxt = int(np.argmax(cover))
            if cover[nxt] <= 0:
                break  # every node is already a pivot or adjacent to one at 0
            chosen.append(nxt)
            row = block[len(chosen) - 1]
            self._fill_pivot_row(row, nxt)
            np.minimum(cover, row, out=cover)
        self._landmark_ids = np.asarray(chosen, dtype=np.int64)
        self._land_block = block[: len(chosen)]

    def _fill_pivot_row(self, out: np.ndarray, pivot: int) -> None:
        dist = self.distances_from(pivot)
        np.copyto(out, dist, casting="unsafe")
        out[dist == UNREACHABLE] = self._huge

    # ------------------------------------------------------------------ #
    # Query tier (the sketch)
    # ------------------------------------------------------------------ #

    def _sketch_row(self, source: int) -> np.ndarray:
        """``est(source, ·)`` over all nodes; ``UNREACHABLE`` where no pivot connects."""
        self._ensure_landmarks()
        block = self._land_block
        assert block is not None
        n = self._graph.num_nodes
        if block.shape[0] == 0:
            est = np.full(n, UNREACHABLE, dtype=self._dtype)
            est.setflags(write=False)
            return est
        # min-plus reduce one (n,)-sized temporary at a time: at 10^6 nodes a
        # single (L, n) broadcast temporary would cost L row-buffers at once.
        best = block[0] + block[0, source]
        tmp = np.empty_like(best)
        for i in range(1, block.shape[0]):
            np.add(block[i], block[i, source], out=tmp)
            np.minimum(best, tmp, out=best)
        est = best.astype(self._dtype, copy=True)
        est[best >= self._huge] = UNREACHABLE
        est.setflags(write=False)
        return est

    def query_distances_from(self, source: int) -> np.ndarray:
        """Admissible distance estimates from *source* (sketch tier, no BFS).

        The row is a pure function of ``(graph, seed, L)`` — deliberately
        *not* upgraded to the exact row when one happens to be cached, so
        sampled pairs and ball profiles cannot depend on cache state (which
        would break the bitwise parity of parallel / resumed sweeps).
        """
        source = check_node_index(int(source), self._graph.num_nodes, "source")
        self._sketch_queries += 1
        return self._sketch_row(source)

    def prefetch_query(self, sources: Iterable[int]) -> None:
        """Query-tier warmup: build the sketch once; never runs per-source BFS."""
        self._ensure_landmarks()

    def clear(self) -> None:
        super().clear()
        self._landmark_ids = None
        self._land_block = None
