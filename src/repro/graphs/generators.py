"""Graph generators for every family referenced by the paper.

The paper's statements are universal ("for any n-node graph G"), but its
proofs and corollaries single out specific families:

* **paths** — the hard instance of Theorems 1 and 3 and the canonical
  Ω(√n) example for name-independent schemes,
* **trees** — Corollary 1 gives O(log³ n) with the (M, L) scheme,
* **AT-free graphs** (interval, permutation, co-comparability graphs) —
  Corollary 1 gives O(log² n); interval and permutation graphs are generated
  here as concrete AT-free representatives,
* **d-dimensional meshes/tori** — the classic Kleinberg substrate, used as a
  control whose pathshape is large (Θ(√n) for the 2-D torus),
* assorted random models (Erdős–Rényi, Watts–Strogatz, lollipops, …) used as
  additional universal-scheme workloads.

All generators return connected :class:`~repro.graphs.graph.Graph` instances
with nodes ``0 .. n-1`` and carry a descriptive ``name``.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "balanced_tree",
    "binary_tree",
    "random_tree",
    "caterpillar_graph",
    "spider_graph",
    "lollipop_graph",
    "barbell_graph",
    "random_interval_graph",
    "interval_graph",
    "random_permutation_graph",
    "permutation_graph",
    "erdos_renyi_graph",
    "watts_strogatz_graph",
    "random_regular_graph",
]


# --------------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------------- #

def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - n-1`` (pathshape 1)."""
    n = check_positive_int(n, "n")
    builder = GraphBuilder(n, name=f"path({n})")
    builder.add_path(range(n))
    return builder.build()


def cycle_graph(n: int) -> Graph:
    """The cycle on *n* ≥ 3 nodes."""
    n = check_positive_int(n, "n", minimum=3)
    builder = GraphBuilder(n, name=f"cycle({n})")
    builder.add_cycle(range(n))
    return builder.build()


def complete_graph(n: int) -> Graph:
    """The complete graph K_n."""
    n = check_positive_int(n, "n")
    builder = GraphBuilder(n, name=f"complete({n})")
    builder.add_clique(range(n))
    return builder.build()


def star_graph(n: int) -> Graph:
    """The star with centre 0 and ``n - 1`` leaves."""
    n = check_positive_int(n, "n", minimum=2)
    builder = GraphBuilder(n, name=f"star({n})")
    for leaf in range(1, n):
        builder.add_edge(0, leaf)
    return builder.build()


def grid_graph(dims: Sequence[int]) -> Graph:
    """d-dimensional mesh with side lengths *dims* (open boundaries)."""
    return _lattice(dims, torus=False)


def torus_graph(dims: Sequence[int]) -> Graph:
    """d-dimensional torus (wrap-around mesh) with side lengths *dims*."""
    return _lattice(dims, torus=True)


def _lattice(dims: Sequence[int], *, torus: bool) -> Graph:
    dims = [check_positive_int(d, "dimension") for d in dims]
    if not dims:
        raise ValueError("dims must be non-empty")
    n = int(np.prod(dims))
    strides = np.ones(len(dims), dtype=np.int64)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    def index(coords: Tuple[int, ...]) -> int:
        return int(np.dot(coords, strides))

    kind = "torus" if torus else "grid"
    builder = GraphBuilder(n, name=f"{kind}({'x'.join(map(str, dims))})")
    for coords in itertools.product(*[range(d) for d in dims]):
        u = index(coords)
        for axis, d in enumerate(dims):
            c = coords[axis]
            if c + 1 < d:
                nxt = list(coords)
                nxt[axis] = c + 1
                builder.add_edge(u, index(tuple(nxt)))
            elif torus and d > 2:
                nxt = list(coords)
                nxt[axis] = 0
                builder.add_edge(u, index(tuple(nxt)))
    return builder.build()


def hypercube_graph(dimension: int) -> Graph:
    """The *dimension*-dimensional hypercube on 2^dimension nodes."""
    dimension = check_positive_int(dimension, "dimension")
    n = 1 << dimension
    builder = GraphBuilder(n, name=f"hypercube({dimension})")
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                builder.add_edge(u, v)
    return builder.build()


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete *branching*-ary tree of the given *height* (root = node 0)."""
    branching = check_positive_int(branching, "branching")
    height = check_positive_int(height, "height", minimum=0)
    nodes = [0]
    edges: List[Tuple[int, int]] = []
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                nodes.append(next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Graph.from_edges(next_id, edges, name=f"balanced_tree(b={branching},h={height})")


def binary_tree(n: int) -> Graph:
    """Complete binary tree on exactly *n* nodes (heap ordering)."""
    n = check_positive_int(n, "n")
    edges = [((child - 1) // 2, child) for child in range(1, n)]
    return Graph.from_edges(n, edges, name=f"binary_tree({n})")


def random_tree(n: int, seed: RngLike = None) -> Graph:
    """Uniformly random labelled tree on *n* nodes (random Prüfer sequence)."""
    n = check_positive_int(n, "n")
    if n == 1:
        return Graph.empty(1, name="random_tree(1)")
    if n == 2:
        return Graph.from_edges(2, [(0, 1)], name="random_tree(2)")
    rng = ensure_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges: List[Tuple[int, int]] = []
    # Classic Prüfer decoding with a pointer over the smallest leaf.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph.from_edges(n, edges, name=f"random_tree({n})")


def caterpillar_graph(spine: int, legs_per_node: int = 1) -> Graph:
    """Caterpillar: a spine path with *legs_per_node* pendant leaves per spine node.

    Caterpillars have pathwidth 1 (hence pathshape 1) and are a natural
    small-pathshape family beyond plain paths.
    """
    spine = check_positive_int(spine, "spine")
    legs_per_node = check_positive_int(legs_per_node, "legs_per_node", minimum=0)
    n = spine + spine * legs_per_node
    builder = GraphBuilder(n, name=f"caterpillar(spine={spine},legs={legs_per_node})")
    builder.add_path(range(spine))
    next_id = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            builder.add_edge(s, next_id)
            next_id += 1
    return builder.build()


def spider_graph(legs: int, leg_length: int) -> Graph:
    """Spider (generalised star): *legs* paths of length *leg_length* glued at a centre."""
    legs = check_positive_int(legs, "legs")
    leg_length = check_positive_int(leg_length, "leg_length")
    n = 1 + legs * leg_length
    builder = GraphBuilder(n, name=f"spider(legs={legs},len={leg_length})")
    next_id = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            builder.add_edge(prev, next_id)
            prev = next_id
            next_id += 1
    return builder.build()


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """A clique of *clique_size* nodes attached to a path of *tail_length* nodes.

    A useful control: the tail forces long greedy routes while the clique has
    tiny diameter, so the behaviour is dominated by the path-like part.
    """
    clique_size = check_positive_int(clique_size, "clique_size", minimum=2)
    tail_length = check_positive_int(tail_length, "tail_length", minimum=1)
    n = clique_size + tail_length
    builder = GraphBuilder(n, name=f"lollipop(k={clique_size},tail={tail_length})")
    builder.add_clique(range(clique_size))
    builder.add_edge(clique_size - 1, clique_size)
    builder.add_path(range(clique_size, n))
    return builder.build()


def barbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Two cliques of *clique_size* nodes joined by a path of *bridge_length* nodes."""
    clique_size = check_positive_int(clique_size, "clique_size", minimum=2)
    bridge_length = check_positive_int(bridge_length, "bridge_length", minimum=0)
    n = 2 * clique_size + bridge_length
    builder = GraphBuilder(n, name=f"barbell(k={clique_size},bridge={bridge_length})")
    builder.add_clique(range(clique_size))
    builder.add_clique(range(clique_size + bridge_length, n))
    chain = list(range(clique_size - 1, clique_size + bridge_length + 1))
    builder.add_path(chain)
    return builder.build()


# --------------------------------------------------------------------------- #
# Intersection-model families (AT-free representatives)
# --------------------------------------------------------------------------- #

def interval_graph(intervals: Sequence[Tuple[float, float]], *, name: Optional[str] = None) -> Graph:
    """Intersection graph of the given closed *intervals*.

    Interval graphs are AT-free and have pathlength at most 2 by sweeping the
    line, which makes them the paper's canonical small-pathshape class.
    """
    n = len(intervals)
    builder = GraphBuilder(n, name=name or f"interval_graph({n})")
    ivs = [(float(a), float(b)) for (a, b) in intervals]
    for (a1, b1) in ivs:
        if b1 < a1:
            raise ValueError("interval endpoints must satisfy left <= right")
    # Sweep over intervals sorted by left endpoint: i and j (with a_i <= a_j)
    # intersect exactly when a_j <= b_i, so the inner scan can stop at the
    # first non-overlapping interval.
    order = sorted(range(n), key=lambda idx: ivs[idx])
    for pos, i in enumerate(order):
        a1, b1 = ivs[i]
        for j in order[pos + 1:]:
            a2, _b2 = ivs[j]
            if a2 > b1:
                break
            builder.add_edge(i, j)
    return builder.build()


def random_interval_graph(
    n: int,
    seed: RngLike = None,
    *,
    length_scale: float = 3.0,
    connect: bool = True,
) -> Tuple[Graph, List[Tuple[float, float]]]:
    """Random interval graph on *n* intervals with expected length *length_scale*.

    Interval left endpoints are uniform on ``[0, n)`` and lengths exponential
    with mean *length_scale*; when *connect* is true, extra bridging intervals
    are stretched so the result is connected.

    Returns the graph together with the interval model (needed by the exact
    path-decomposition construction).
    """
    n = check_positive_int(n, "n")
    rng = ensure_rng(seed)
    starts = np.sort(rng.uniform(0.0, float(n), size=n))
    lengths = rng.exponential(length_scale, size=n)
    intervals = [(float(s), float(s + l)) for s, l in zip(starts, lengths)]
    if connect:
        # Sweep left to right; whenever a gap appears, stretch the previous
        # interval so it reaches the next start.  This keeps the model an
        # interval model while guaranteeing connectivity.
        intervals.sort()
        reach = intervals[0][1]
        fixed = [intervals[0]]
        for (a, b) in intervals[1:]:
            if a > reach:
                prev_a, _ = fixed[-1]
                fixed[-1] = (prev_a, a)
                reach = a
            fixed.append((a, b))
            reach = max(reach, b)
        intervals = fixed
    graph = interval_graph(intervals, name=f"random_interval({n})")
    return graph, intervals


def permutation_graph(permutation: Sequence[int], *, name: Optional[str] = None) -> Graph:
    """Permutation graph of *permutation*.

    Nodes ``i < j`` are adjacent whenever the permutation inverts them, i.e.
    ``permutation[i] > permutation[j]``.  Permutation graphs are AT-free.
    """
    perm = np.asarray(list(int(p) for p in permutation), dtype=np.int64)
    n = perm.size
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("permutation must be a permutation of 0..n-1")
    edges: List[Tuple[int, int]] = []
    for i in range(n - 1):
        # Vectorised inversion scan: all j > i with perm[j] < perm[i].
        hits = np.nonzero(perm[i + 1:] < perm[i])[0]
        for offset in hits:
            edges.append((i, i + 1 + int(offset)))
    graph_name = name or f"permutation_graph({n})"
    if not edges:
        return Graph.empty(n, name=graph_name)
    return Graph.from_edges(n, edges, name=graph_name)


def random_permutation_graph(
    n: int,
    seed: RngLike = None,
    *,
    displacement: int = 8,
) -> Tuple[Graph, List[int]]:
    """Random connected permutation graph on *n* nodes.

    A fully uniform random permutation yields a dense graph of tiny diameter,
    which is uninteresting for routing.  Instead the permutation is obtained
    from the identity by random local swaps within windows of size
    *displacement*, giving a sparse, large-diameter permutation graph closer
    to the "path-like" AT-free graphs Corollary 1 targets.  Adjacent
    transpositions are inserted at non-crossed cuts so the result is
    connected.
    """
    n = check_positive_int(n, "n")
    displacement = check_positive_int(displacement, "displacement", minimum=1)
    rng = ensure_rng(seed)
    perm = list(range(n))
    for i in range(n - 1):
        j = min(n - 1, i + int(rng.integers(1, displacement + 1)))
        perm[i], perm[j] = perm[j], perm[i]
    # Connectivity: the permutation graph is disconnected at cut i when
    # max(perm[0..i]) < min(perm[i+1..n-1]) (no inversion crosses the cut).
    # Swapping positions i, i+1 creates the crossing inversion (i, i+1).
    # Suffix minima of the original permutation stay valid because a swap at
    # cut i only touches positions i and i+1, which never belong to the
    # suffix of any later cut.
    suffix_min = [0] * n
    running = n
    for i in range(n - 1, -1, -1):
        running = min(running, perm[i])
        suffix_min[i] = running
    prefix_max = -1
    for i in range(n - 1):
        prefix_max = max(prefix_max, perm[i])
        if prefix_max < suffix_min[i + 1]:
            perm[i], perm[i + 1] = perm[i + 1], perm[i]
            prefix_max = max(prefix_max, perm[i])
    graph = permutation_graph(perm, name=f"random_permutation({n})")
    return graph, perm


# --------------------------------------------------------------------------- #
# Random models
# --------------------------------------------------------------------------- #

def erdos_renyi_graph(n: int, p: float, seed: RngLike = None, *, connect: bool = True) -> Graph:
    """Erdős–Rényi G(n, p); optionally patched into a connected graph.

    When *connect* is true, a uniformly random spanning-tree-like chain over a
    random node permutation is added so the sample is connected (standard
    practice for routing experiments, which require connectivity).
    """
    n = check_positive_int(n, "n")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must lie in [0, 1]")
    rng = ensure_rng(seed)
    builder = GraphBuilder(n, name=f"erdos_renyi({n},p={p:g})")
    if n >= 2 and p > 0:
        # Vectorised sampling of the upper triangle in blocks.
        for u in range(n - 1):
            mask = rng.random(n - u - 1) < p
            for offset in np.nonzero(mask)[0]:
                builder.add_edge(u, u + 1 + int(offset))
    if connect and n >= 2:
        order = rng.permutation(n)
        for a, b in zip(order, order[1:]):
            if not builder.has_edge(int(a), int(b)):
                builder.add_edge(int(a), int(b))
    return builder.build()


def watts_strogatz_graph(n: int, k: int, beta: float, seed: RngLike = None) -> Graph:
    """Watts–Strogatz small-world ring lattice with rewiring probability *beta*.

    Each node is joined to its *k* nearest ring neighbours (*k* even); each
    "forward" edge is rewired to a random target with probability *beta*.
    Rewirings that would create duplicates or self-loops are skipped, which
    keeps the graph simple and connected for the parameter ranges used in the
    experiments.
    """
    n = check_positive_int(n, "n", minimum=4)
    k = check_positive_int(k, "k", minimum=2)
    if k % 2 != 0:
        raise ValueError("k must be even")
    if k >= n:
        raise ValueError("k must be smaller than n")
    if not (0.0 <= beta <= 1.0):
        raise ValueError("beta must lie in [0, 1]")
    rng = ensure_rng(seed)
    builder = GraphBuilder(n, name=f"watts_strogatz({n},k={k},beta={beta:g})")
    half = k // 2
    for u in range(n):
        for d in range(1, half + 1):
            v = (u + d) % n
            if d == 1 or rng.random() >= beta:
                if not builder.has_edge(u, v):
                    builder.add_edge(u, v)
            else:
                w = int(rng.integers(0, n))
                attempts = 0
                while (w == u or builder.has_edge(u, w)) and attempts < 16:
                    w = int(rng.integers(0, n))
                    attempts += 1
                if w != u and not builder.has_edge(u, w):
                    builder.add_edge(u, w)
                elif not builder.has_edge(u, v):
                    builder.add_edge(u, v)
    return builder.build()


def random_regular_graph(n: int, degree: int, seed: RngLike = None, *, max_retries: int = 64) -> Graph:
    """Random *degree*-regular graph via the configuration model with retries.

    Pairings producing self-loops or duplicate edges are rejected and the
    whole pairing resampled (adequate for the moderate degrees used in the
    experiments).
    """
    n = check_positive_int(n, "n", minimum=2)
    degree = check_positive_int(degree, "degree")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = ensure_rng(seed)
    for _ in range(max_retries):
        stubs = np.repeat(np.arange(n), degree)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        seen = set()
        ok = True
        for a, b in pairs:
            a, b = int(a), int(b)
            if a == b:
                ok = False
                break
            key = (a, b) if a < b else (b, a)
            if key in seen:
                ok = False
                break
            seen.add(key)
        if ok:
            return Graph.from_edges(n, sorted(seen), name=f"random_regular({n},d={degree})")
    raise RuntimeError("failed to sample a simple regular graph; try a different seed or degree")
