"""Shortest-path distances (BFS) for unweighted graphs.

Greedy routing only ever needs the distance *to a fixed target*, so the basic
primitive is a single-source BFS returning a distance array; everything else
(APSP matrices, eccentricities, diameters) is layered on top of it.

Distances are returned as ``int64`` arrays with ``UNREACHABLE`` (-1) marking
nodes outside the source's connected component.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "UNREACHABLE",
    "bfs_distances",
    "bfs_tree",
    "multi_source_bfs",
    "distance_matrix",
    "eccentricity",
    "diameter",
    "farthest_node",
    "double_sweep_diameter_lower_bound",
]

UNREACHABLE: int = -1


def bfs_distances(graph: Graph, source: int, *, cutoff: Optional[int] = None) -> np.ndarray:
    """Distances from *source* to every node (``UNREACHABLE`` if disconnected).

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        Start node.
    cutoff:
        Optional radius; nodes strictly beyond it keep ``UNREACHABLE``.
        A truncated BFS costs only ``O(|B(source, cutoff)|)`` edge scans,
        which the Theorem-4 ball scheme relies on.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    if cutoff is not None and cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if cutoff is not None and du >= cutoff:
            continue
        for v in indices[indptr[u]: indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and parent pointers from *source*.

    Returns ``(dist, parent)`` where ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable nodes.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    parent = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u]: indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                parent[v] = u
                queue.append(int(v))
    return dist, parent


def multi_source_bfs(graph: Graph, sources: Iterable[int]) -> np.ndarray:
    """Distance from each node to the *nearest* of the given sources."""
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    queue: deque = deque()
    for s in sources:
        s = check_node_index(int(s), graph.num_nodes, "source")
        if dist[s] == UNREACHABLE:
            dist[s] = 0
            queue.append(s)
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u]: indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def distance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs shortest-path matrix, ``shape (n, n)``.

    Runs one BFS per node; intended for the moderate sizes used by the
    decomposition code and the tests (``n`` up to a few thousand).
    """
    n = graph.num_nodes
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for u in range(n):
        out[u] = bfs_distances(graph, u)
    return out


def eccentricity(graph: Graph, node: int) -> int:
    """Eccentricity of *node* (max distance to any reachable node).

    Raises ``ValueError`` if the graph is disconnected from *node*.
    """
    dist = bfs_distances(graph, node)
    if np.any(dist == UNREACHABLE):
        raise ValueError("graph is not connected; eccentricity undefined")
    return int(dist.max())


def farthest_node(graph: Graph, node: int) -> Tuple[int, int]:
    """Return ``(v, d)`` where *v* is a node at maximum distance *d* from *node*."""
    dist = bfs_distances(graph, node)
    reachable = np.where(dist >= 0, dist, -1)
    v = int(np.argmax(reachable))
    return v, int(reachable[v])


def double_sweep_diameter_lower_bound(graph: Graph, start: int = 0) -> Tuple[int, int, int]:
    """Classic double-sweep heuristic: BFS from *start*, then from the farthest node.

    Returns ``(u, v, d)`` — a pair of nodes at distance *d*, a lower bound on
    the diameter that is exact on trees.  Used by the pair samplers to find
    "hard" source/target pairs without computing full APSP.
    """
    a, _ = farthest_node(graph, start)
    b, d = farthest_node(graph, a)
    return a, b, d


def diameter(graph: Graph, *, exact: bool = True) -> int:
    """Graph diameter.

    With ``exact=True`` (default) runs a BFS from every node (O(nm));
    otherwise returns the double-sweep lower bound.
    """
    if graph.num_nodes == 0:
        return 0
    if not exact:
        return double_sweep_diameter_lower_bound(graph)[2]
    best = 0
    for u in range(graph.num_nodes):
        dist = bfs_distances(graph, u)
        if np.any(dist == UNREACHABLE):
            raise ValueError("graph is not connected; diameter undefined")
        best = max(best, int(dist.max()))
    return best
