"""Shortest-path distances (BFS) for unweighted graphs.

Greedy routing only ever needs the distance *to a fixed target*, so the basic
primitive is a single-source BFS returning a distance array; everything else
(APSP matrices, eccentricities, diameters) is layered on top of it.

Since the frontier-engine PR the public functions here are thin wrappers over
:mod:`repro.graphs.frontier`, the vectorized level-synchronous BFS core:
``bfs_distances`` and ``multi_source_bfs`` delegate to single-frontier sweeps
and ``distance_matrix`` fills its rows in batches through
:func:`repro.graphs.frontier.bfs_distances_many`.  The historical pure-Python
``deque`` traversal is kept as ``legacy_bfs_distances`` — it is the
readable reference implementation the property tests and the engine benchmark
compare against, not a hot path.

Distances are returned as ``int64`` arrays with ``UNREACHABLE`` (-1) marking
nodes outside the source's connected component.

Disconnected-graph contract
---------------------------
``eccentricity`` and ``diameter`` (both ``exact=True`` and ``exact=False``)
raise ``ValueError`` on disconnected graphs — the quantities are undefined
there and silently returning a within-component value proved error-prone.
``double_sweep_diameter_lower_bound`` is the one deliberate exception: it is
*documented* to operate within the start node's component (the pair samplers
rely on that to find hard pairs without a connectivity precheck).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graphs.frontier import (
    UNREACHABLE,
    bfs_distances_many,
    frontier_bfs,
    frontier_bfs_tree,
    frontier_multi_source_bfs,
)
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "UNREACHABLE",
    "bfs_distances",
    "bfs_tree",
    "legacy_bfs_tree",
    "multi_source_bfs",
    "distance_matrix",
    "eccentricity",
    "diameter",
    "farthest_node",
    "double_sweep_diameter_lower_bound",
    "legacy_bfs_distances",
]

#: Row-batch size used by :func:`distance_matrix`; bounds the flat frontier
#: buffer at ``_BATCH_ROWS * n`` int64 entries regardless of ``n``.
_BATCH_ROWS: int = 64


def bfs_distances(graph: Graph, source: int, *, cutoff: Optional[int] = None) -> np.ndarray:
    """Distances from *source* to every node (``UNREACHABLE`` if disconnected).

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        Start node.
    cutoff:
        Optional radius; nodes strictly beyond it keep ``UNREACHABLE``.
        A truncated BFS costs only ``O(|B(source, cutoff)|)`` edge scans,
        which the Theorem-4 ball scheme relies on.
    """
    return frontier_bfs(graph, source, cutoff=cutoff)


def legacy_bfs_distances(
    graph: Graph, source: int, *, cutoff: Optional[int] = None
) -> np.ndarray:
    """Reference pure-Python ``deque`` BFS (the pre-frontier implementation).

    Kept for the property tests and ``benchmarks/test_bench_bfs_engine.py``,
    which assert the vectorized engine is bitwise identical and measure its
    speedup.  Do not use on hot paths.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    if cutoff is not None and cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if cutoff is not None and du >= cutoff:
            continue
        for v in indices[indptr[u]: indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and parent pointers from *source*.

    Returns ``(dist, parent)`` where ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable nodes.

    Runs on the vectorized frontier engine
    (:func:`repro.graphs.frontier.frontier_bfs_tree`), whose first-occurrence
    dedup reproduces the classic queue traversal's parent assignment bitwise
    (the property tests compare against :func:`legacy_bfs_tree`).  The routing
    engine uses these parents as ready-made ``next_local`` pointers on trees,
    where each node's improving neighbour is unique.
    """
    return frontier_bfs_tree(graph, source)


def legacy_bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Reference pure-Python ``deque`` BFS tree (the pre-engine implementation).

    The parent array depends on the intra-level visit order; the frontier
    engine's :func:`bfs_tree` reproduces this deterministic queue order
    exactly, and the property tests assert the two are bitwise identical.
    Do not use on hot paths.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    parent = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u]: indptr[u + 1]]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                parent[v] = u
                queue.append(int(v))
    return dist, parent


def multi_source_bfs(graph: Graph, sources: Iterable[int]) -> np.ndarray:
    """Distance from each node to the *nearest* of the given sources."""
    return frontier_multi_source_bfs(graph, sources)


def distance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs shortest-path matrix, ``shape (n, n)``.

    Rows are filled in batches of ``_BATCH_ROWS`` sources through the
    frontier engine's :func:`~repro.graphs.frontier.bfs_distances_many`, so
    the cost per row is a share of one level-synchronous sweep rather than a
    full Python BFS.
    """
    n = graph.num_nodes
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for lo in range(0, n, _BATCH_ROWS):
        hi = min(lo + _BATCH_ROWS, n)
        out[lo:hi] = bfs_distances_many(graph, range(lo, hi))
    return out


def eccentricity(graph: Graph, node: int) -> int:
    """Eccentricity of *node* (max distance to any reachable node).

    Raises ``ValueError`` if the graph is disconnected from *node*.
    """
    dist = bfs_distances(graph, node)
    if np.any(dist == UNREACHABLE):
        raise ValueError("graph is not connected; eccentricity undefined")
    return int(dist.max())


def farthest_node(graph: Graph, node: int) -> Tuple[int, int]:
    """Return ``(v, d)`` where *v* is a node at maximum distance *d* from *node*."""
    dist = bfs_distances(graph, node)
    reachable = np.where(dist >= 0, dist, -1)
    v = int(np.argmax(reachable))
    return v, int(reachable[v])


def double_sweep_diameter_lower_bound(graph: Graph, start: int = 0) -> Tuple[int, int, int]:
    """Classic double-sweep heuristic: BFS from *start*, then from the farthest node.

    Returns ``(u, v, d)`` — a pair of nodes at distance *d*, a lower bound on
    the diameter that is exact on trees.  Used by the pair samplers to find
    "hard" source/target pairs without computing full APSP.

    On a disconnected graph the sweep deliberately stays inside *start*'s
    component and bounds that component's diameter; if *start* is isolated the
    result degenerates to ``(start, start, 0)``.  Callers that need the whole
    graph's diameter must use :func:`diameter`, which enforces connectivity.
    """
    a, _ = farthest_node(graph, start)
    b, d = farthest_node(graph, a)
    return a, b, d


def diameter(graph: Graph, *, exact: bool = True) -> int:
    """Graph diameter.

    With ``exact=True`` (default) runs a batched BFS from every node (O(nm));
    otherwise returns the double-sweep lower bound.  Both modes raise
    ``ValueError`` on disconnected graphs — the diameter is infinite there,
    and the previously silent within-component answer of ``exact=False``
    masked sampling bugs.
    """
    n = graph.num_nodes
    if n == 0:
        return 0
    if not exact:
        # Inline double sweep so the second sweep's distance array doubles as
        # the connectivity check (no third BFS).
        a, _ = farthest_node(graph, 0)
        dist = bfs_distances(graph, a)
        if np.any(dist == UNREACHABLE):
            raise ValueError("graph is not connected; diameter undefined")
        return int(dist.max())
    best = 0
    for lo in range(0, n, _BATCH_ROWS):
        hi = min(lo + _BATCH_ROWS, n)
        block = bfs_distances_many(graph, range(lo, hi))
        if np.any(block == UNREACHABLE):
            raise ValueError("graph is not connected; diameter undefined")
        best = max(best, int(block.max()))
    return best
