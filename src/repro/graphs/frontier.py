"""Vectorized, direction-optimizing, level-synchronous BFS over CSR graphs.

Every quantity the reproduction measures — greedy diameters, expected step
counts ``E(φ, s, t)``, ball sizes for the Theorem-4 scheme — reduces to BFS
distances, so this module is the hot core everything else builds on.  Instead
of popping one node at a time from a ``deque``, the engine expands the whole
frontier of a level at once with numpy primitives, and **picks an expansion
kernel per level** based on the frontier's size relative to the remaining
unvisited set:

* **sparse** — frontiers of a handful of nodes are expanded with a scalar
  loop; the fixed per-level cost of any numpy pass exceeds the ~1µs/edge
  scalar cost when only a few edges are scanned.
* **top-down, padded** — the workhorse.  Neighbour gathering runs over a
  *self-padded* adjacency table ``pad[u] = [CSR neighbours of u, then u
  itself]`` of shape ``(n, max_degree)``: one 2-D ``take`` replaces the whole
  ``repeat``/``cumsum``/``arange`` CSR gather, and the padding slots cost
  nothing downstream because they point back at the (always already visited)
  owner and fall to the visited mask.  Only built when padding cannot blow
  the slot count up much beyond the true arc count — i.e. for the
  low-degree-variance families (paths, rings, grids, tori, trees) whose
  25k-level sweeps used to be bounded by the fixed cost of the ~20 numpy
  calls the CSR gather needs per level.  Roughly halves the per-level cost,
  which is exactly the regime the ROADMAP flagged for ring/path topologies.
* **top-down, CSR** — the original gather (``np.repeat`` over range starts +
  a flat ``arange`` offset trick) for hub-dominated graphs (stars, lollipop
  heads) where padding is rejected.
* **bottom-up** — when the frontier is a large fraction of the *remaining
  unvisited* set (the mid-sweep levels of expanders and dense random
  graphs), the engine flips direction: instead of scanning every frontier
  edge it scans each unvisited node's neighbours for one at the previous
  level.  That bounds the level's work by the unvisited side, which the
  trigger guarantees is the smaller one — the same level-synchronous-rounds
  economics CONGEST-style algorithms exploit.

Because BFS distances are independent of intra-level visit order, every
kernel stamps the same levels and the result is bitwise identical to the
classic queue-based traversal; the property tests in
``tests/graphs/test_frontier.py`` assert exactly that on random graphs,
trees, grids and disconnected graphs, for every kernel forced individually.
(:func:`frontier_bfs_tree` is the one traversal whose *parent* output does
depend on discovery order; it therefore keeps its first-discoverer top-down
pass unconditionally.)

**Dtype discipline.**  All sweep state — the distance buffer, frontier key
arrays, dedupe claim scratch and parent pointers — runs in ``int32``
whenever the flat key space ``rows * n`` fits (:func:`bfs_dtype`), which
halves the resident bytes and memory traffic of every kernel; ``int64`` is
kept as the reference path for key spaces past ``2**31`` and can be forced
everywhere via the :data:`_FORCE_INT64` knob (the parity tests assert the
two paths are value-for-value identical across the kernel portfolio).  The
bottom-up kernel additionally keeps the *previous frontier* as a bit-packed
``uint8`` mask (one bit per flat key) so its membership probes touch
``total / 8`` bytes instead of an 8-byte distance word per neighbour —
equivalent by construction, because "neighbour at ``level - 1``" is exactly
"neighbour in the previous frontier".

The batched variant :func:`bfs_distances_many` runs ``k`` sources
*simultaneously* by operating on flattened ``(row, node)`` keys in a single
``k·n`` distance block — one numpy pass per level fills a whole block row
range, which is what makes :func:`repro.graphs.distances.distance_matrix` and
the :class:`repro.graphs.oracle.DistanceOracle` prefetch path scale to tens of
thousands of nodes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "UNREACHABLE",
    "bfs_dtype",
    "frontier_bfs",
    "frontier_bfs_tree",
    "frontier_multi_source_bfs",
    "bfs_distances_many",
]

UNREACHABLE: int = -1

#: Force every sweep onto the ``int64`` reference path regardless of key
#: count.  Test hook: the int32/int64 parity tests monkeypatch this to pin
#: both paths against each other on the same inputs.
_FORCE_INT64: bool = False


def bfs_dtype(num_keys: int) -> np.dtype:
    """The engine's state dtype for a flat key space of *num_keys* keys.

    ``int32`` whenever every key (and every slot index of the dedupe claim
    scratch) fits, ``int64`` otherwise or when :data:`_FORCE_INT64` is set.
    Distance values are bounded by key count, so the same dtype covers the
    distance buffers too.  Public BFS results inherit this dtype.
    """
    if _FORCE_INT64 or num_keys > np.iinfo(np.int32).max:
        return np.dtype(np.int64)
    return np.dtype(np.int32)

#: Frontiers at or below this size are expanded with a scalar loop instead of
#: the vectorized gather: the fixed per-level cost of the numpy path (~15µs)
#: exceeds the ~1µs/edge scalar cost when only a handful of edges are scanned.
#: The padded top-down kernel has less than half the CSR gather's fixed cost,
#: so where it applies the scalar loop only wins on even tinier frontiers —
#: the long wind-down tails of ring/path sweeps sit exactly in the 9..32 band
#: where the scalar loop used to cost 3-4x the lean kernel.
_SPARSE_FRONTIER: int = 32
_SPARSE_FRONTIER_PADDED: int = 8

#: The self-padded adjacency is built only when ``n * max_degree`` stays
#: within this factor of the true arc count (plus a small-graph slack) —
#: low-degree-variance families.  Beyond it (hubs, high-variance random
#: graphs) the padded slots the kernel would scan outnumber the real edges
#: enough that the exact CSR gather wins despite its higher fixed cost.
_PAD_SLOT_BLOWUP: float = 1.5

#: Direction switch: a level runs bottom-up when
#: ``frontier_size * _BOTTOM_UP_RATIO > unvisited`` (the unvisited side is
#: then the cheaper one to scan) *and* the frontier is at least
#: ``total_keys >> _BOTTOM_UP_MIN_SHIFT`` (so the one-off ``O(k·n)`` pass
#: that materialises the unvisited key set is amortised by the level's
#: work).  Tests monkeypatch both to force the bottom-up kernel everywhere.
_BOTTOM_UP_RATIO: int = 1
_BOTTOM_UP_MIN_SHIFT: int = 4

#: graph.derived_cache() key of the memoised self-padded adjacency.
_PAD_CACHE_KEY = "frontier_padded_neighbors"


def _check_cutoff(cutoff: Optional[int]) -> Optional[int]:
    if cutoff is None:
        return None
    cutoff = int(cutoff)
    if cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    return cutoff


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbour lists of *nodes* plus per-node counts.

    This is the vectorized replacement for ``for u in nodes: for v in adj[u]``:
    with ``starts[i] = indptr[nodes[i]]`` the flat positions of all neighbour
    slots are ``arange(total) + repeat(starts - exclusive_cumsum(counts), counts)``.
    The returned ``(neighbors, counts)`` satisfy ``neighbors`` being aligned
    with ``np.repeat(nodes, counts)``, which the batched engine uses to carry
    each frontier entry's row offset to its neighbours.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    offsets = np.cumsum(counts) - counts  # exclusive prefix sum
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    return indices[pos], counts


def _padded_neighbors(graph: Graph, dtype: np.dtype = np.dtype(np.int32)) -> Optional[np.ndarray]:
    """Slot-major padded *delta* adjacency ``(max_degree, n)``, or ``None``.

    ``pad[j, u]`` is ``v - u`` for ``u``'s ``j``-th CSR neighbour ``v``, and
    ``0`` in the padding slots.  Two properties make this the cheapest
    possible gather for the frontier kernels:

    * **deltas**: a neighbour's flat key is ``key(u) + (v - u)`` for any row
      offset, so one row-wise broadcast add over the gathered delta block
      turns node ids into batched keys — no per-entry row-offset column
      (numpy's broadcast machinery is several times slower when the
      broadcast axis is the tiny inner one).
    * **self-padding**: a padding slot (delta 0) yields the owner's own key,
      which is always already visited (distance stamped), so the pads vanish
      under the exact same visited mask that filters real revisits — no
      sentinel handling at all.

    Built only when ``n * max_degree`` stays near the true arc count (see
    :data:`_PAD_SLOT_BLOWUP`) and memoised on the graph's
    :meth:`~repro.graphs.graph.Graph.derived_cache` (graphs are immutable),
    so the table is built once per instance no matter how many sweeps run
    over it.  The table is built in the sweep's state *dtype* (so the
    in-place delta-to-key broadcast never crosses dtypes); the ``int32``
    table lives under :data:`_PAD_CACHE_KEY` — the common case — and the
    rare ``int64`` variant (key spaces past ``2**31``, or the forced
    reference path) under its own suffixed key.
    """
    cache = graph.derived_cache()
    dtype = np.dtype(dtype)
    cache_key = _PAD_CACHE_KEY if dtype == np.dtype(np.int32) else _PAD_CACHE_KEY + ":i64"
    if cache_key in cache:
        return cache[cache_key]
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    degrees = np.diff(indptr)
    dmax = int(degrees.max()) if n and indices.size else 0
    pad: Optional[np.ndarray]
    if dmax == 0 or n * dmax > _PAD_SLOT_BLOWUP * indices.size + 64:
        pad = None
    else:
        pad = np.zeros((dmax, n), dtype=dtype)
        owner = np.repeat(np.arange(n, dtype=np.int64), degrees)
        slot_in_node = np.arange(indices.size, dtype=np.int64) - np.repeat(
            indptr[:-1], degrees
        )
        pad[slot_in_node, owner] = indices - owner
    cache[cache_key] = pad
    return pad


def _dedupe(keys: np.ndarray, claim: np.ndarray) -> np.ndarray:
    """Drop duplicate *keys* without sorting.

    Scatters each key's position into *claim* (last write wins) and keeps the
    positions that survived — exactly one occurrence per distinct key, in
    O(len(keys)) with no ``np.unique`` sort/hash pass.  *claim* is a reusable
    scratch array indexed by key; it never needs resetting because stale
    entries are only ever read for keys present in the current batch, which
    the scatter just overwrote.
    """
    slots = np.arange(keys.size, dtype=claim.dtype)
    claim[keys] = slots
    return keys[claim[keys] == slots]


def _dedupe_first(keys: np.ndarray, claim: np.ndarray) -> np.ndarray:
    """Boolean mask keeping the *first* occurrence of every distinct key.

    The scatter runs over the reversed batch so the earliest occurrence's slot
    is the one that survives in *claim* — the mirror image of :func:`_dedupe`
    (whose last-write-wins order is fine for distances but wrong for parent
    pointers, where the queue traversal assigns the first discoverer).
    """
    slots = np.arange(keys.size, dtype=claim.dtype)
    claim[keys[::-1]] = slots[::-1]
    return claim[keys] == slots


def _mask_apply(mask: np.ndarray, keys: np.ndarray, set_bits: bool) -> None:
    """Set (or clear) the bits of *keys* in the packed ``uint8`` *mask*.

    Fully vectorized despite byte-sharing keys: the (unique) keys are sorted
    so every byte's bits form one contiguous run, OR-merged per byte with one
    ``bitwise_or.reduceat``, and scattered with unique byte indices — no
    unbuffered ``ufunc.at`` loop, whose per-element cost would dwarf the
    distance-gather this mask replaces.
    """
    if keys.size == 0:
        return
    keys = np.sort(keys, kind="stable")  # radix sort on ints: O(len(keys))
    byte_idx = keys >> 3
    bits = np.left_shift(np.uint8(1), (keys & 7).astype(np.uint8))
    starts = np.flatnonzero(byte_idx[1:] != byte_idx[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), starts))
    merged = np.bitwise_or.reduceat(bits, starts)
    owners = byte_idx[starts]
    if set_bits:
        mask[owners] |= merged
    else:
        mask[owners] &= ~merged


def _mask_test(mask: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Per-key membership bits (``uint8`` 0/1) of *keys* in the packed mask."""
    return (mask.take(keys >> 3) >> (keys & 7).astype(np.uint8)) & np.uint8(1)


def _bottom_up_level(
    graph: Graph, rows: int, dist: np.ndarray, cand: np.ndarray,
    pad: Optional[np.ndarray], level: int, mask: np.ndarray,
    kb: Optional[kernels.KernelBackend] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bottom-up step: scan the *unvisited* keys for a parent in the previous frontier.

    *cand* holds the unvisited candidate keys (positive degree); each joins
    the new frontier iff any of its neighbours sits at the previous level —
    and because the previous level's key set *is* the previous frontier, the
    probe reads the bit-packed frontier *mask* (one bit per flat key,
    maintained by :func:`_sweep`) instead of an 8-byte distance word per
    neighbour.  Returns ``(frontier, remaining_candidates)`` with the
    frontier stamped.  The padding keys read the candidate's own bit, which
    is 0 (an unvisited key is never in the previous frontier), so the padded
    form needs no extra masking.
    """
    n = graph.num_nodes
    if kb is not None and kb.compiled:
        # Compiled scan: same mask probes, with per-candidate short-circuit
        # on the first set bit (membership is a disjunction, so the early
        # exit cannot change which candidates are found).
        found = kb.bottom_up_csr(
            graph.indptr, graph.indices, dist, cand, mask, n, level
        )
        return cand[found], cand[~found]
    nodes = cand % n if rows > 1 else cand
    if pad is not None:
        nbrs = pad.take(nodes, axis=1)
        nbrs += cand  # delta block -> flat keys, one row-wise broadcast
        found = _mask_test(mask, nbrs.ravel()).reshape(nbrs.shape).any(axis=0)
    else:
        neighbors, counts = _gather_neighbors(graph.indptr, graph.indices, nodes)
        if rows > 1:
            neighbor_keys = np.repeat(cand - nodes, counts) + neighbors
        else:
            neighbor_keys = neighbors
        match = _mask_test(mask, neighbor_keys)
        # counts >= 1 for every candidate (degree-0 keys were filtered when
        # the set was built), so the exclusive prefix offsets are strictly
        # increasing and reduceat sees no empty segment.
        offsets = np.cumsum(counts) - counts
        found = np.logical_or.reduceat(match, offsets)
    frontier = cand[found]
    dist[frontier] = level
    return frontier, cand[~found]


def _sweep(graph: Graph, rows: int, frontier: np.ndarray, cutoff: Optional[int]) -> np.ndarray:
    """Level-synchronous sweep over flat ``row * n + node`` keys.

    The shared core of :func:`frontier_multi_source_bfs` (one row, many
    seeds) and :func:`bfs_distances_many` (one row per source): owns the flat
    ``rows·n`` distance buffer and makes the per-level kernel choice
    described in the module docstring.  The body is one flat loop with
    hoisted locals on purpose — on a 25k-level ring sweep even attribute
    lookups and method dispatch are measurable against the ~10µs levels.

    All kernels stamp identical levels (BFS distances are intra-level
    order-independent), so the per-level choice can never change the output
    bitwise.  State (distances, frontiers, claim scratch) runs in the dtype
    :func:`bfs_dtype` picks for the key space — int32 for everything short
    of ``2**31`` keys — and the value output is dtype-independent.
    """
    n = graph.num_nodes
    total = rows * n
    multi = rows > 1
    dt = bfs_dtype(total)
    # Backend resolution is per-call (mirroring the per-level kernel switch):
    # compiled backends replace the three top-down kernels and the bottom-up
    # probe with typed CSR loops; the direction heuristics, the mask
    # bookkeeping and the padded-table build stay in numpy either way, and
    # every kernel stamps identical levels (see repro.graphs.kernels).
    kb = kernels.active_backend()
    compiled = kb.compiled
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(total, UNREACHABLE, dtype=dt)
    frontier = frontier.astype(dt, copy=False)
    dist[frontier] = 0
    dist_take = dist.take
    unvisited = total - frontier.size
    bu_cand: Optional[np.ndarray] = None  # unvisited key set while bottom-up
    bu_mask: Optional[np.ndarray] = None  # bit-packed previous frontier (bottom-up only)
    pad = _padded_neighbors(graph, dt)
    sparse_limit = _SPARSE_FRONTIER if pad is None else _SPARSE_FRONTIER_PADDED
    claim: Optional[np.ndarray] = None
    slots_buf: Optional[np.ndarray] = None
    min_bu = total >> _BOTTOM_UP_MIN_SHIFT
    level = 0
    while frontier.size and (cutoff is None or level < cutoff):
        level += 1
        f = frontier.size
        # --- direction switch -------------------------------------------- #
        if bu_cand is not None:
            if f * _BOTTOM_UP_RATIO > bu_cand.size:
                prev = frontier
                frontier, bu_cand = _bottom_up_level(
                    graph, rows, dist, bu_cand, pad, level, bu_mask, kb
                )
                _mask_apply(bu_mask, prev, False)
                _mask_apply(bu_mask, frontier, True)
                continue
            unvisited = int(bu_cand.size)  # revert: the frontier stays exact
            bu_cand = None
            bu_mask = None
        elif f * _BOTTOM_UP_RATIO > unvisited and f >= min_bu:
            # Materialise the unvisited key set (one O(rows·n) pass,
            # amortised by the trigger's minimum-frontier-size guard);
            # degree-0 keys can never be discovered and are dropped for good.
            cand = np.nonzero(dist == UNREACHABLE)[0].astype(dt, copy=False)
            degrees = np.diff(indptr)
            bu_cand = cand[degrees.take(cand % n if multi else cand) > 0]
            # The previous frontier, bit-packed: one bit per flat key.  The
            # bottom-up probes test membership here instead of gathering
            # distance words — identical by construction (the ``level - 1``
            # key set IS the previous frontier).
            bu_mask = np.zeros((total + 7) >> 3, dtype=np.uint8)
            _mask_apply(bu_mask, frontier, True)
            prev = frontier
            frontier, bu_cand = _bottom_up_level(
                graph, rows, dist, bu_cand, pad, level, bu_mask, kb
            )
            _mask_apply(bu_mask, prev, False)
            _mask_apply(bu_mask, frontier, True)
            continue
        # --- top-down kernels -------------------------------------------- #
        if compiled:
            # Typed CSR/padded loop: the stamp doubles as visited filter and
            # dedupe, so one pass replaces the gather + mask + claim-scatter
            # pipeline (and subsumes the sparse scalar loop — a tiny frontier
            # is just a short trip through the same compiled loop).
            if pad is not None:
                frontier = kb.top_down_padded(pad, dist, frontier, n, level)
            else:
                frontier = kb.top_down_csr(indptr, indices, dist, frontier, n, level)
        elif f <= sparse_limit:
            # Tiny frontier: plain Python loop, distances stamped (and
            # thereby deduplicated) as we go.
            nxt: list = []
            append = nxt.append
            for key in frontier.tolist():
                node = key % n
                base = key - node
                for v in indices[indptr[node]: indptr[node + 1]].tolist():
                    nbr_key = base + v
                    if dist[nbr_key] == UNREACHABLE:
                        dist[nbr_key] = level
                        append(nbr_key)
            frontier = np.asarray(nxt, dtype=dt)
        else:
            if pad is not None:
                # Lean kernel: one slot-major take over the padded *delta*
                # adjacency gathers every frontier entry's neighbour column,
                # and a single row-wise broadcast add turns the deltas into
                # flat keys.  The visited mask then drops padding keys (the
                # visited owners) and real revisits together, and one
                # scatter/gather claim pass keeps each distinct survivor
                # once.  Less than half the numpy calls of the CSR gather,
                # which is what lifts the high-diameter (ring/path) sweeps
                # whose cost is all per-level fixed overhead.
                nodes = frontier % n if multi else frontier
                nbrs = pad.take(nodes, axis=1)
                nbrs += frontier
                flat = nbrs.ravel()
                sel = flat[dist_take(flat) == UNREACHABLE]
                m = sel.size
                if slots_buf is None or slots_buf.size < m:
                    slots_buf = np.arange(
                        max(m, 4 * f * pad.shape[0], 1024), dtype=dt
                    )
                slots = slots_buf[:m]
                if claim is None:
                    claim = np.empty(total, dtype=dt)
                claim[sel] = slots
                frontier = sel[claim.take(sel) == slots]
                dist[frontier] = level
            else:
                # Reference kernel: exact CSR gather (hub-dominated graphs
                # where padding was rejected).
                if multi:
                    nodes = frontier % n
                    row_base = frontier - nodes  # row * n, carried to neighbours
                else:
                    nodes = frontier
                neighbors, counts = _gather_neighbors(indptr, indices, nodes)
                if neighbors.size == 0:
                    break
                if multi:
                    neighbor_keys = np.repeat(row_base, counts) + neighbors
                else:
                    neighbor_keys = neighbors
                neighbor_keys = neighbor_keys[dist[neighbor_keys] == UNREACHABLE]
                neighbor_keys = neighbor_keys.astype(dt, copy=False)
                if claim is None:
                    claim = np.empty(total, dtype=dt)
                frontier = _dedupe(neighbor_keys, claim)
                dist[frontier] = level
        unvisited -= frontier.size
    return dist


def frontier_bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized BFS distances *and* parent pointers from *source*.

    Returns ``(dist, parent)`` with ``parent[source] == source`` and ``-1``
    outside the source's component.  Parent assignment is bitwise identical to
    the classic queue traversal (``legacy_bfs_tree`` in
    :mod:`repro.graphs.distances`): within a level the frontier is expanded in
    discovery order with CSR-ordered neighbour lists, and the
    first-occurrence dedup keeps the earliest discoverer of every node —
    exactly the node that would have popped first from the deque.  Unlike the
    distance-only sweeps, parent pointers *do* depend on that discovery
    order, so this traversal never takes the bottom-up kernel (which visits
    candidates in key order, not discovery order) and stays top-down.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    n = graph.num_nodes
    dt = bfs_dtype(n)
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(n, UNREACHABLE, dtype=dt)
    parent = np.full(n, -1, dtype=dt)
    dist[source] = 0
    parent[source] = source
    frontier = np.asarray([source], dtype=dt)
    claim: Optional[np.ndarray] = None
    level = 0
    while frontier.size:
        level += 1
        if frontier.size <= _SPARSE_FRONTIER:
            nxt: list = []
            append = nxt.append
            for u in frontier.tolist():
                for v in indices[indptr[u]: indptr[u + 1]].tolist():
                    if dist[v] == UNREACHABLE:
                        dist[v] = level
                        parent[v] = u
                        append(v)
            frontier = np.asarray(nxt, dtype=dt)
        else:
            neighbors, counts = _gather_neighbors(indptr, indices, frontier)
            owners = np.repeat(frontier, counts)
            unvisited = dist[neighbors] == UNREACHABLE
            neighbors = neighbors[unvisited].astype(dt, copy=False)
            owners = owners[unvisited]
            if claim is None:
                claim = np.empty(n, dtype=dt)
            keep = _dedupe_first(neighbors, claim)
            frontier = neighbors[keep]
            parent[frontier] = owners[keep]
            dist[frontier] = level
    return dist, parent


def frontier_bfs(graph: Graph, source: int, *, cutoff: Optional[int] = None) -> np.ndarray:
    """Single-source BFS distances via frontier batching.

    Drop-in replacement for the legacy queue BFS: returns an integer array
    (dtype per :func:`bfs_dtype`) with ``UNREACHABLE`` (-1) outside the
    source's component and, with
    *cutoff*, leaves nodes strictly beyond the radius unreached (the truncated
    search still costs only ``O(|B(source, cutoff)|)`` edge scans).
    """
    source = check_node_index(source, graph.num_nodes, "source")
    return frontier_multi_source_bfs(graph, [source], cutoff=cutoff)


def frontier_multi_source_bfs(
    graph: Graph, sources: Iterable[int], *, cutoff: Optional[int] = None
) -> np.ndarray:
    """Distance from each node to the *nearest* of the given sources."""
    cutoff = _check_cutoff(cutoff)
    n = graph.num_nodes
    seeds = [check_node_index(int(s), n, "source") for s in sources]
    if not seeds:
        return np.full(n, UNREACHABLE, dtype=bfs_dtype(n))
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    return _sweep(graph, 1, frontier, cutoff)


def bfs_distances_many(
    graph: Graph,
    sources: Sequence[int],
    *,
    cutoff: Optional[int] = None,
) -> np.ndarray:
    """Batched BFS: distance block of shape ``(len(sources), n)`` in one sweep.

    All sources advance level-synchronously in the same numpy pass by encoding
    the per-source state as flat keys ``row * n + node`` into a shared
    ``k·n`` distance buffer.  One iteration of the loop expands the combined
    frontier of *every* source — with the per-level kernel switch described in
    the module docstring — so the per-level Python overhead is amortised
    across the whole batch; on high-diameter instances (rings, paths) the
    padded top-down kernel roughly halves the fixed per-level cost on top of
    that (see ``benchmarks/test_bench_bfs_engine.py``).

    Duplicate sources are allowed and each row is an independent BFS, bitwise
    identical to ``bfs_distances(graph, s, cutoff=cutoff)`` for its source.
    """
    cutoff = _check_cutoff(cutoff)
    n = graph.num_nodes
    seeds = np.asarray([check_node_index(int(s), n, "source") for s in sources], dtype=np.int64)
    k = seeds.size
    if k == 0 or n == 0:
        return np.full((k, n), UNREACHABLE, dtype=bfs_dtype(max(k, 1) * max(n, 1)))
    frontier_keys = np.arange(k, dtype=np.int64) * n + seeds
    return _sweep(graph, k, frontier_keys, cutoff).reshape(k, n)
