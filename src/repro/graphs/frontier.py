"""Vectorized, level-synchronous BFS engine over CSR graphs.

Every quantity the reproduction measures — greedy diameters, expected step
counts ``E(φ, s, t)``, ball sizes for the Theorem-4 scheme — reduces to BFS
distances, so this module is the hot core everything else builds on.  Instead
of popping one node at a time from a ``deque``, the engine expands the whole
frontier of a level at once with numpy primitives:

1. gather the CSR neighbour ranges of every frontier node in one shot
   (``np.repeat`` over range starts + a flat ``arange`` offset trick),
2. drop already-visited neighbours with a mask lookup,
3. de-duplicate the survivors (``np.unique``) to obtain the next frontier and
   stamp their distance.

Because BFS distances are independent of intra-level visit order, the result
is bitwise identical to the classic queue-based traversal; the property tests
in ``tests/graphs/test_frontier.py`` assert exactly that on random graphs,
trees, grids and disconnected graphs.

The batched variant :func:`bfs_distances_many` runs ``k`` sources
*simultaneously* by operating on flattened ``(row, node)`` keys in a single
``k·n`` distance block — one numpy pass per level fills a whole block row
range, which is what makes :func:`repro.graphs.distances.distance_matrix` and
the :class:`repro.graphs.oracle.DistanceOracle` prefetch path scale to tens of
thousands of nodes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import check_node_index

__all__ = [
    "UNREACHABLE",
    "frontier_bfs",
    "frontier_bfs_tree",
    "frontier_multi_source_bfs",
    "bfs_distances_many",
]

UNREACHABLE: int = -1

#: Frontiers at or below this size are expanded with a scalar loop instead of
#: the vectorized gather: the fixed per-level cost of the numpy path (~15µs)
#: exceeds the ~1µs/edge scalar cost when only a handful of edges are scanned.
#: This adaptive switch is what keeps the engine competitive on high-diameter
#: graphs (paths, rings) whose frontiers never grow past a few nodes, while
#: meshes, expanders and batched sweeps take the vectorized path.
_SPARSE_FRONTIER: int = 32


def _check_cutoff(cutoff: Optional[int]) -> Optional[int]:
    if cutoff is None:
        return None
    cutoff = int(cutoff)
    if cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    return cutoff


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbour lists of *nodes* plus per-node counts.

    This is the vectorized replacement for ``for u in nodes: for v in adj[u]``:
    with ``starts[i] = indptr[nodes[i]]`` the flat positions of all neighbour
    slots are ``arange(total) + repeat(starts - exclusive_cumsum(counts), counts)``.
    The returned ``(neighbors, counts)`` satisfy ``neighbors`` being aligned
    with ``np.repeat(nodes, counts)``, which the batched engine uses to carry
    each frontier entry's row offset to its neighbours.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    offsets = np.cumsum(counts) - counts  # exclusive prefix sum
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    return indices[pos], counts


def _dedupe(keys: np.ndarray, claim: np.ndarray) -> np.ndarray:
    """Drop duplicate *keys* without sorting.

    Scatters each key's position into *claim* (last write wins) and keeps the
    positions that survived — exactly one occurrence per distinct key, in
    O(len(keys)) with no ``np.unique`` sort/hash pass.  *claim* is a reusable
    scratch array indexed by key; it never needs resetting because stale
    entries are only ever read for keys present in the current batch, which
    the scatter just overwrote.
    """
    slots = np.arange(keys.size, dtype=np.int64)
    claim[keys] = slots
    return keys[claim[keys] == slots]


def _dedupe_first(keys: np.ndarray, claim: np.ndarray) -> np.ndarray:
    """Boolean mask keeping the *first* occurrence of every distinct key.

    The scatter runs over the reversed batch so the earliest occurrence's slot
    is the one that survives in *claim* — the mirror image of :func:`_dedupe`
    (whose last-write-wins order is fine for distances but wrong for parent
    pointers, where the queue traversal assigns the first discoverer).
    """
    slots = np.arange(keys.size, dtype=np.int64)
    claim[keys[::-1]] = slots[::-1]
    return claim[keys] == slots


def frontier_bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized BFS distances *and* parent pointers from *source*.

    Returns ``(dist, parent)`` with ``parent[source] == source`` and ``-1``
    outside the source's component.  Parent assignment is bitwise identical to
    the classic queue traversal (``legacy_bfs_tree`` in
    :mod:`repro.graphs.distances`): within a level the frontier is expanded in
    discovery order with CSR-ordered neighbour lists, and the
    first-occurrence dedup keeps the earliest discoverer of every node —
    exactly the node that would have popped first from the deque.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = np.asarray([source], dtype=np.int64)
    claim: Optional[np.ndarray] = None
    level = 0
    while frontier.size:
        level += 1
        if frontier.size <= _SPARSE_FRONTIER:
            nxt: list = []
            append = nxt.append
            for u in frontier.tolist():
                for v in indices[indptr[u]: indptr[u + 1]].tolist():
                    if dist[v] == UNREACHABLE:
                        dist[v] = level
                        parent[v] = u
                        append(v)
            frontier = np.asarray(nxt, dtype=np.int64)
        else:
            neighbors, counts = _gather_neighbors(indptr, indices, frontier)
            owners = np.repeat(frontier, counts)
            unvisited = dist[neighbors] == UNREACHABLE
            neighbors = neighbors[unvisited]
            owners = owners[unvisited]
            if claim is None:
                claim = np.empty(n, dtype=np.int64)
            keep = _dedupe_first(neighbors, claim)
            frontier = neighbors[keep]
            parent[frontier] = owners[keep]
            dist[frontier] = level
    return dist, parent


def frontier_bfs(graph: Graph, source: int, *, cutoff: Optional[int] = None) -> np.ndarray:
    """Single-source BFS distances via frontier batching.

    Drop-in replacement for the legacy queue BFS: returns an ``int64`` array
    with ``UNREACHABLE`` (-1) outside the source's component and, with
    *cutoff*, leaves nodes strictly beyond the radius unreached (the truncated
    search still costs only ``O(|B(source, cutoff)|)`` edge scans).
    """
    source = check_node_index(source, graph.num_nodes, "source")
    return frontier_multi_source_bfs(graph, [source], cutoff=cutoff)


def frontier_multi_source_bfs(
    graph: Graph, sources: Iterable[int], *, cutoff: Optional[int] = None
) -> np.ndarray:
    """Distance from each node to the *nearest* of the given sources."""
    cutoff = _check_cutoff(cutoff)
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    seeds = [check_node_index(int(s), n, "source") for s in sources]
    if not seeds:
        return dist
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    dist[frontier] = 0
    claim: Optional[np.ndarray] = None
    level = 0
    while frontier.size and (cutoff is None or level < cutoff):
        level += 1
        if frontier.size <= _SPARSE_FRONTIER:
            # Scalar expansion: cheaper than the numpy fixed cost on tiny
            # frontiers.  Distances are stamped as we go, which also
            # deduplicates within the level.
            nxt: list = []
            append = nxt.append
            for u in frontier.tolist():
                for v in indices[indptr[u]: indptr[u + 1]].tolist():
                    if dist[v] == UNREACHABLE:
                        dist[v] = level
                        append(v)
            frontier = np.asarray(nxt, dtype=np.int64)
        else:
            neighbors, _ = _gather_neighbors(indptr, indices, frontier)
            neighbors = neighbors[dist[neighbors] == UNREACHABLE]
            if claim is None:
                claim = np.empty(n, dtype=np.int64)
            frontier = _dedupe(neighbors, claim)
            dist[frontier] = level
    return dist


def bfs_distances_many(
    graph: Graph,
    sources: Sequence[int],
    *,
    cutoff: Optional[int] = None,
) -> np.ndarray:
    """Batched BFS: distance block of shape ``(len(sources), n)`` in one sweep.

    All sources advance level-synchronously in the same numpy pass by encoding
    the per-source state as flat keys ``row * n + node`` into a shared
    ``k·n`` distance buffer.  One iteration of the loop expands the combined
    frontier of *every* source, so the per-level Python overhead is amortised
    across the whole batch — the speedup over ``k`` sequential queue BFS runs
    on a 50k-node grid is two orders of magnitude (see
    ``benchmarks/test_bench_bfs_engine.py``).

    Duplicate sources are allowed and each row is an independent BFS, bitwise
    identical to ``bfs_distances(graph, s, cutoff=cutoff)`` for its source.
    """
    cutoff = _check_cutoff(cutoff)
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    seeds = np.asarray([check_node_index(int(s), n, "source") for s in sources], dtype=np.int64)
    k = seeds.size
    dist = np.full(k * n, UNREACHABLE, dtype=np.int64)
    if k == 0 or n == 0:
        return dist.reshape(k, n)
    frontier_keys = np.arange(k, dtype=np.int64) * n + seeds
    dist[frontier_keys] = 0
    claim: Optional[np.ndarray] = None
    level = 0
    while frontier_keys.size and (cutoff is None or level < cutoff):
        level += 1
        if frontier_keys.size <= _SPARSE_FRONTIER:
            # Scalar expansion of a tiny combined frontier (see
            # _SPARSE_FRONTIER); keys decompose as row * n + node.
            nxt: list = []
            append = nxt.append
            for key in frontier_keys.tolist():
                node = key % n
                base = key - node
                for v in indices[indptr[node]: indptr[node + 1]].tolist():
                    nbr_key = base + v
                    if dist[nbr_key] == UNREACHABLE:
                        dist[nbr_key] = level
                        append(nbr_key)
            frontier_keys = np.asarray(nxt, dtype=np.int64)
        else:
            nodes = frontier_keys % n
            row_base = frontier_keys - nodes  # row * n, carried to the neighbours
            neighbors, counts = _gather_neighbors(indptr, indices, nodes)
            if neighbors.size == 0:
                break
            neighbor_keys = np.repeat(row_base, counts) + neighbors
            neighbor_keys = neighbor_keys[dist[neighbor_keys] == UNREACHABLE]
            if claim is None:
                claim = np.empty(k * n, dtype=np.int64)
            frontier_keys = _dedupe(neighbor_keys, claim)
            dist[frontier_keys] = level
    return dist.reshape(k, n)
