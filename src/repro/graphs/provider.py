"""The pluggable distance-provider layer: one protocol, many distance sources.

Every routing-adjacent subsystem — the lane engine, the simulator, the
Theorem-4 ball scheme, the decomposition measures, the experiment pipeline,
the session facade and the serve daemon — consumes distances through the same
surface.  Historically that surface *was* the concrete
:class:`~repro.graphs.oracle.DistanceOracle`; this module names it as a
:class:`typing.Protocol` so "what the routing layers consume" is decoupled
from "how distances are produced":

* the **exact tier** (``distances_from/_to/_to_many``, ``next_local_to`` /
  ``next_local_to_many``, ``routing_blocks``) always answers with genuine BFS
  arrays.  Greedy routing's correctness depends on this: the next-hop tables
  need the exact strict-``<`` neighbour at ``dist - 1``, and the lane
  engine's step comparisons consume the same rows — an approximate row here
  would corrupt trajectories, not just estimates,
* the **query tier** (``query_distances_from``, ``prefetch_query``) is where
  bulk distance *queries* — ball profiles, extremal-pair sampling, reporting
  stats — go.  An exact provider serves the same cached BFS rows on both
  tiers; an approximate provider (:class:`~repro.graphs.landmark.LandmarkOracle`)
  answers the query tier from a landmark sketch instead, which is what makes
  million-node cells *cheap* and not merely memory-bounded.

Selection is by ``distance_mode``: :func:`make_distance_provider` maps the
mode names in :data:`DISTANCE_MODES` to constructors, and everything above
the graphs layer (GraphStore, ExperimentConfig, ``open_session``, the CLI)
threads the mode through rather than naming a concrete class.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle

__all__ = [
    "DISTANCE_MODES",
    "DistanceProvider",
    "make_distance_provider",
]

#: Recognised ``distance_mode`` names, in CLI/choices order.  ``"exact"`` is
#: the plain :class:`DistanceOracle`; ``"landmark"`` the pivot sketch with
#: exact-BFS fallback for the routing blocks.
DISTANCE_MODES = ("exact", "landmark")


@runtime_checkable
class DistanceProvider(Protocol):
    """What every distance consumer may assume about its distance source.

    The protocol is structural: :class:`DistanceOracle` satisfies it without
    inheriting anything, and so does any test double exposing the same
    surface.  Methods fall into the exact tier (trajectory-bearing, always
    genuine BFS), the query tier (estimate-bearing, may be approximate), and
    the bookkeeping surface the store/stats layers read.
    """

    # -- identity ------------------------------------------------------- #

    @property
    def graph(self) -> Graph: ...

    @property
    def mode(self) -> str:
        """The provider's ``distance_mode`` name (``"exact"``, ``"landmark"``)."""
        ...

    # -- exact tier (routing correctness) ------------------------------- #

    def distances_from(self, source: int) -> np.ndarray: ...

    def distances_to(self, target: int) -> np.ndarray: ...

    def distances_to_many(self, targets: Sequence[int]) -> np.ndarray: ...

    def next_local_to(self, target: int) -> np.ndarray: ...

    def next_local_to_many(self, targets: Sequence[int]) -> np.ndarray: ...

    def routing_blocks(self, targets: Sequence[int]) -> tuple: ...

    def prefetch(self, sources: Iterable[int]) -> None: ...

    def ball(self, center: int, radius: int) -> np.ndarray: ...

    def ball_size(self, center: int, radius: int) -> int: ...

    def __call__(self, u: int, v: int) -> int: ...

    # -- query tier (bulk estimates; may ride a sketch) ----------------- #

    def query_distances_from(self, source: int) -> np.ndarray:
        """Distance array for *bulk queries* (ball profiles, pair sampling).

        Exact providers return the cached BFS row; approximate providers may
        return an admissible estimate (every entry ``>=`` the true distance,
        ``UNREACHABLE`` preserved).  Consumers that feed trajectories (hop
        tables, routing blocks) must use the exact tier instead.
        """
        ...

    def prefetch_query(self, sources: Iterable[int]) -> None:
        """Warm the query tier for *sources* (exact: batched BFS; sketch: no-op)."""
        ...

    # -- stats / export surface ---------------------------------------- #

    @property
    def hits(self) -> int: ...

    @property
    def misses(self) -> int: ...

    @property
    def preloaded(self) -> int: ...

    def cache_size(self) -> int: ...

    def next_local_cache_size(self) -> int: ...

    def resident_bytes(self) -> int: ...

    def memory_stats(self) -> Dict[str, Optional[int]]: ...

    def distance_stats(self) -> Dict[str, object]:
        """Mode, landmark counts, sketch-query counters and measured stretch."""
        ...

    def clear(self) -> None: ...

    def export_state(self) -> Dict[str, np.ndarray]: ...

    def absorb_state(self, state: Dict[str, np.ndarray], *, copy: bool = True) -> None: ...


def make_distance_provider(
    graph: Graph,
    mode: str = "exact",
    *,
    landmarks: int = 16,
    seed: int = 0,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
    cold_dir: Optional[str] = None,
) -> DistanceProvider:
    """Build the :class:`DistanceProvider` for *mode* over *graph*.

    ``"exact"`` ignores ``landmarks``/``seed`` and returns a plain
    :class:`DistanceOracle`; ``"landmark"`` returns a
    :class:`~repro.graphs.landmark.LandmarkOracle` whose pivot selection is
    deterministic in *seed* (callers pass the instance seed, so every worker
    building the same instance picks the same pivots).  Unknown modes raise
    :class:`ValueError` naming the available ones.
    """
    if mode == "exact":
        return DistanceOracle(
            graph, max_entries=max_entries, max_bytes=max_bytes, cold_dir=cold_dir
        )
    if mode == "landmark":
        from repro.graphs.landmark import LandmarkOracle

        return LandmarkOracle(
            graph,
            num_landmarks=landmarks,
            seed=seed,
            max_entries=max_entries,
            max_bytes=max_bytes,
            cold_dir=cold_dir,
        )
    raise ValueError(
        f"unknown distance_mode {mode!r}; available: {', '.join(DISTANCE_MODES)}"
    )
