"""EXP-4 — Corollary 1: trees and AT-free graphs route polylogarithmically under (M, L).

Reproduces
----------
``EXPERIMENT_ID = "EXP-4"`` — Corollary 1, which instantiates Theorem 2 on
two families:

* **trees** — treewidth 1, hence pathwidth (and pathshape) ``O(log n)`` via
  the centroid conversion, giving greedy diameter ``O(log³ n)``;
* **AT-free graphs** (the paper cites co-comparability, interval and
  permutation graphs) — constant pathlength, hence pathshape ``O(1)``, giving
  greedy diameter ``O(log² n)``.

At simulation sizes the *absolute* polylog bounds exceed ``√n`` (``log³ n``
passes ``√n`` only around ``n ≈ 10⁹``), so — as for EXP-3 — the observable
signatures are (a) the growth *exponent* of the ancestor-driven scheme on
large-diameter members of these families is far below the ``≈ 0.5`` of the
uniform scheme, and (b) the measured diameters stay within a small constant
of a polylog envelope (``c · log³ n`` resp. ``c · log² n``) across the whole
sweep, which a ``√n``-growing curve cannot do.

Tree representatives are caterpillars and spiders (diameter ``Θ(n)`` — the
regime where the claim is falsifiable); the AT-free representative is a
connected random interval graph whose exact clique-path decomposition (the
pathshape-1 witness) is handed to the scheme.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept ``n``; ``num_pairs``, ``trials`` and
``pair_strategy`` control the Monte-Carlo effort per cell; ``seed`` drives
the per-cell instance generation (random interval graphs) and routing
streams.

Cells
-----
One cell per ``(family, n)``; the instance (graph + exact decomposition) is
built once and all three schemes share it and one :class:`DistanceOracle`.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult
from repro.analysis.scaling import fit_polylog
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.decomposition.exact import path_decomposition_of_interval_graph
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    cell_payload,
    collect_series,
    derive_cell_seed,
    derive_instance_seed,
    ensure_store,
    route_point,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-4"
TITLE = "Corollary 1: trees (log^3 n) and AT-free graphs (log^2 n)"
PAPER_CLAIM = (
    "The scheme of Theorem 2 yields greedy diameter O(log^3 n) on n-node trees and "
    "O(log^2 n) on AT-free graphs (Corollary 1)."
)

InstanceFactory = Callable[[int, int], object]


def _interval_instance(n: int, seed: int) -> Tuple[Graph, Dict[str, object]]:
    """Connected random interval graph plus its exact clique-path decomposition.

    The decomposition rides along as an instance *extra*, so the GraphStore
    memoises it with the graph: every scheme (and every later experiment run
    over the same instance) reuses the one exact decomposition.
    """
    graph, intervals = generators.random_interval_graph(n, seed=seed, length_scale=3.0)
    decomposition = path_decomposition_of_interval_graph(intervals)
    return graph, {"decomposition": decomposition}


def _tree_instances() -> Dict[str, InstanceFactory]:
    return {
        "tree/caterpillar": lambda n, seed: generators.caterpillar_graph(max(2, n // 2), 1),
        "tree/spider": lambda n, seed: generators.spider_graph(4, max(1, (n - 1) // 4)),
        "atfree/interval": _interval_instance,
    }


#: polylog degree asserted by the corollary for each family prefix.
_POLYLOG_DEGREE = {"tree": 3.0, "atfree": 2.0}


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (family, n)."""
    return [(family, n) for family in _tree_instances() for n in config.effective_sizes()]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route the three scheme variants on one shared instance + decomposition.

    The instance (graph, oracle and — for the interval family — the exact
    clique-path decomposition) comes from the sweep-wide *store*.
    """
    cell_seed = derive_cell_seed(config.seed, EXPERIMENT_ID, family, n)
    instance_seed = derive_instance_seed(config.seed, family, n)
    entry = ensure_store(store, oracle_factory).instance(
        family, n, instance_seed, _tree_instances()[family]
    )
    graph, oracle = entry.graph, entry.oracle
    decomposition = entry.extras.get("decomposition")
    schemes = [
        (
            f"ancestor_only/{family}",
            Theorem2Scheme(graph, decomposition, uniform_mixture=0.0, seed=cell_seed),
        ),
        (f"theorem2/{family}", Theorem2Scheme(graph, decomposition, seed=cell_seed)),
        (f"uniform/{family}", UniformScheme(graph, seed=cell_seed)),
    ]
    series = {
        name: route_point(
            graph, scheme, config, seed=cell_seed, oracle=oracle, pair_seed=instance_seed
        )
        for name, scheme in schemes
    }
    return cell_payload(entry, cell_seed, series)


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for family in _tree_instances():
        result.add_series(collect_series(cells, family, f"ancestor_only/{family}", config))
        result.add_series(collect_series(cells, family, f"theorem2/{family}", config))
        result.add_series(collect_series(cells, family, f"uniform/{family}", config))

    # Conclusion: exponent gaps + polylog envelope ratios for the ancestor-driven scheme.
    notes = []
    for family in _tree_instances():
        prefix = family.split("/", 1)[0]
        degree = _POLYLOG_DEGREE[prefix]
        anc = result.get_series(f"ancestor_only/{family}")
        uni = result.get_series(f"uniform/{family}")
        anc_fit, uni_fit = anc.power_law(), uni.power_law()
        polylog = fit_polylog(anc.sizes, anc.values, degree) if anc.sizes else None
        if anc_fit and uni_fit and polylog:
            notes.append(
                f"{family}: exponent {anc_fit.exponent:.2f} vs uniform {uni_fit.exponent:.2f}, "
                f"log^{degree:g} envelope spread {polylog.ratio_spread:.2f}"
            )
    result.conclusion = (
        "; ".join(notes)
        + " — bounded envelope spreads and sub-sqrt(n) exponents are the finite-size signature of the "
        "corollary's polylog bounds."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
