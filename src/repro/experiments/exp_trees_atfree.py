"""EXP-4 — Corollary 1: trees and AT-free graphs route polylogarithmically under (M, L).

Corollary 1 instantiates Theorem 2 on two families:

* **trees** — treewidth 1, hence pathwidth (and pathshape) ``O(log n)`` via
  the centroid conversion, giving greedy diameter ``O(log³ n)``;
* **AT-free graphs** (the paper cites co-comparability, interval and
  permutation graphs) — constant pathlength, hence pathshape ``O(1)``, giving
  greedy diameter ``O(log² n)``.

At simulation sizes the *absolute* polylog bounds exceed ``√n`` (``log³ n``
passes ``√n`` only around ``n ≈ 10⁹``), so — as for EXP-3 — the observable
signatures are (a) the growth *exponent* of the ancestor-driven scheme on
large-diameter members of these families is far below the ``≈ 0.5`` of the
uniform scheme, and (b) the measured diameters stay within a small constant
of a polylog envelope (``c · log³ n`` resp. ``c · log² n``) across the whole
sweep, which a ``√n``-growing curve cannot do.

Tree representatives are caterpillars and spiders (diameter ``Θ(n)`` — the
regime where the claim is falsifiable); the AT-free representative is a
connected random interval graph whose exact clique-path decomposition (the
pathshape-1 witness) is handed to the scheme.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.analysis.scaling import fit_polylog
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.decomposition.exact import path_decomposition_of_interval_graph
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.routing.simulator import estimate_greedy_diameter

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-4"
TITLE = "Corollary 1: trees (log^3 n) and AT-free graphs (log^2 n)"
PAPER_CLAIM = (
    "The scheme of Theorem 2 yields greedy diameter O(log^3 n) on n-node trees and "
    "O(log^2 n) on AT-free graphs (Corollary 1)."
)


def _interval_instance(n: int, seed: int) -> Tuple[Graph, object]:
    """Connected random interval graph plus its exact clique-path decomposition."""
    graph, intervals = generators.random_interval_graph(n, seed=seed, length_scale=3.0)
    decomposition = path_decomposition_of_interval_graph(intervals)
    return graph, decomposition


def _tree_instances() -> Dict[str, object]:
    return {
        "tree/caterpillar": lambda n, seed: (generators.caterpillar_graph(max(2, n // 2), 1), None),
        "tree/spider": lambda n, seed: (generators.spider_graph(4, max(1, (n - 1) // 4)), None),
        "atfree/interval": _interval_instance,
    }


#: polylog degree asserted by the corollary for each family prefix.
_POLYLOG_DEGREE = {"tree": 3.0, "atfree": 2.0}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for family_name, instance_factory in _tree_instances().items():
        ancestor_series = SeriesResult(name=f"ancestor_only/{family_name}")
        full_series = SeriesResult(name=f"theorem2/{family_name}")
        uniform_series = SeriesResult(name=f"uniform/{family_name}")
        for idx, n in enumerate(config.effective_sizes()):
            seed = config.seed + idx
            graph, decomposition = instance_factory(n, seed)
            schemes = [
                (ancestor_series, Theorem2Scheme(graph, decomposition, uniform_mixture=0.0, seed=seed)),
                (full_series, Theorem2Scheme(graph, decomposition, seed=seed)),
                (uniform_series, UniformScheme(graph, seed=seed)),
            ]
            for series, scheme in schemes:
                estimate = estimate_greedy_diameter(
                    graph,
                    scheme,
                    num_pairs=config.num_pairs,
                    trials=config.trials,
                    seed=seed,
                    pair_strategy=config.pair_strategy,
                )
                series.add(graph.num_nodes, estimate.diameter)
        for series in (ancestor_series, full_series, uniform_series):
            result.add_series(series)

    # Conclusion: exponent gaps + polylog envelope ratios for the ancestor-driven scheme.
    notes = []
    for family_name in _tree_instances():
        prefix = family_name.split("/", 1)[0]
        degree = _POLYLOG_DEGREE[prefix]
        anc = result.get_series(f"ancestor_only/{family_name}")
        uni = result.get_series(f"uniform/{family_name}")
        anc_fit, uni_fit = anc.power_law(), uni.power_law()
        polylog = fit_polylog(anc.sizes, anc.values, degree) if anc.sizes else None
        if anc_fit and uni_fit and polylog:
            notes.append(
                f"{family_name}: exponent {anc_fit.exponent:.2f} vs uniform {uni_fit.exponent:.2f}, "
                f"log^{degree:g} envelope spread {polylog.ratio_spread:.2f}"
            )
    result.conclusion = (
        "; ".join(notes)
        + " — bounded envelope spreads and sub-sqrt(n) exponents are the finite-size signature of the "
        "corollary's polylog bounds."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
