"""EXP-5 — Theorem 3: labels of ε·log n bits cannot give polylog greedy diameter on the path.

Theorem 3: any matrix-based augmentation-labeling scheme for the n-node path
that uses labels of only ``ε·log n`` bits (at most ``n^ε`` distinct labels)
has greedy diameter ``Ω(n^β)`` for every ``β < (1 - ε)/3``.  Intuitively,
with so few labels most labels are *popular*, some interval of length
``n^β`` contains only popular labels, and the expected number of long links
landing inside it is below one — so routing across it degenerates to walking.

The experiment sweeps ``ε ∈ {0.25, 0.5, 0.75}``.  For each ``ε`` and ``n``
the path is labeled with ``k = ⌈n^ε⌉`` contiguous blocks
(:func:`repro.core.adversarial.block_labeling` — the natural best-effort
labeling at that label budget) and driven by the harmonic label matrix (the
strongest of the candidate matrices on the path under identity labeling).
The measured greedy diameter must grow polynomially, with exponent at least
about ``(1 - ε)/3`` and in practice close to ``(1 - ε)/2`` (routing inside a
block is effectively uniform), and must *decrease* as ε grows — richer label
spaces help, exactly as the bound predicts.  A full-label-budget control
(ε = 1, identity labeling) is included to show the contrast with the
polylog-capable regime.
"""

from __future__ import annotations

import math

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.adversarial import block_labeling
from repro.core.matrix import MatrixScheme, harmonic_label_matrix
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.routing.simulator import estimate_expected_steps

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-5"
TITLE = "Theorem 3: small label spaces force polynomial greedy diameter on the path"
PAPER_CLAIM = (
    "Any matrix-based augmentation-labeling scheme using labels of eps*log(n) bits on the "
    "n-node path yields greedy diameter Omega(n^beta) for every beta < (1 - eps)/3 (Theorem 3)."
)

EPSILONS = (0.25, 0.5, 0.75)


def _hard_pair(n: int) -> tuple:
    """The standard hard pair on the path: the two nodes a third / two thirds along."""
    return (n // 3, (2 * n) // 3)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "epsilons": EPSILONS},
    )
    for eps in EPSILONS:
        series = SeriesResult(name=f"eps={eps:g}")
        for idx, n in enumerate(config.effective_sizes()):
            seed = config.seed + idx
            graph = generators.path_graph(n)
            num_labels = max(2, int(math.ceil(n ** eps)))
            labels = block_labeling(n, num_labels)
            matrix = harmonic_label_matrix(num_labels, exponent=1.0)
            scheme = MatrixScheme(graph, matrix, labels=labels, seed=seed)
            s, t = _hard_pair(n)
            estimate = estimate_expected_steps(
                graph, scheme, [(s, t), (t, s)], trials=config.trials, seed=seed
            )
            series.add(n, estimate.diameter)
            series.metadata[f"num_labels_n{n}"] = num_labels
        result.add_series(series)

    # Full-label-budget control: identity labeling (eps = 1).
    control = SeriesResult(name="eps=1 (identity labels)")
    for idx, n in enumerate(config.effective_sizes()):
        seed = config.seed + idx
        graph = generators.path_graph(n)
        matrix = harmonic_label_matrix(n, exponent=1.0)
        scheme = MatrixScheme(graph, matrix, seed=seed)
        s, t = _hard_pair(n)
        estimate = estimate_expected_steps(
            graph, scheme, [(s, t), (t, s)], trials=config.trials, seed=seed
        )
        control.add(n, estimate.diameter)
    result.add_series(control)

    rows = []
    for eps in EPSILONS:
        fit = result.get_series(f"eps={eps:g}").power_law()
        if fit:
            rows.append((eps, fit.exponent, (1 - eps) / 3))
    text = ", ".join(
        f"eps={eps:g}: measured {expo:.3f} >= bound {bound:.3f}" for eps, expo, bound in rows
    )
    control_fit = control.power_law()
    result.conclusion = (
        f"{text}; exponents decrease with eps and always exceed the theorem's (1-eps)/3 floor, "
        f"while the identity-labeling control grows with exponent {control_fit.exponent:.3f}"
        if control_fit
        else text
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
