"""EXP-5 — Theorem 3: labels of ε·log n bits cannot give polylog greedy diameter on the path.

Reproduces
----------
``EXPERIMENT_ID = "EXP-5"`` — Theorem 3: any matrix-based
augmentation-labeling scheme for the n-node path that uses labels of only
``ε·log n`` bits (at most ``n^ε`` distinct labels) has greedy diameter
``Ω(n^β)`` for every ``β < (1 - ε)/3``.  Intuitively, with so few labels
most labels are *popular*, some interval of length ``n^β`` contains only
popular labels, and the expected number of long links landing inside it is
below one — so routing across it degenerates to walking.

The experiment sweeps ``ε ∈ {0.25, 0.5, 0.75}``.  For each ``ε`` and ``n``
the path is labeled with ``k = ⌈n^ε⌉`` contiguous blocks
(:func:`repro.core.adversarial.block_labeling` — the natural best-effort
labeling at that label budget) and driven by the harmonic label matrix (the
strongest of the candidate matrices on the path under identity labeling).
The measured greedy diameter must grow polynomially, with exponent at least
about ``(1 - ε)/3`` and in practice close to ``(1 - ε)/2`` (routing inside a
block is effectively uniform), and must *decrease* as ε grows — richer label
spaces help, exactly as the bound predicts.  A full-label-budget control
(ε = 1, identity labeling) is included to show the contrast with the
polylog-capable regime.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept path lengths; ``trials`` controls the
long-link resamplings on the fixed hard pair (``num_pairs`` /
``pair_strategy`` are unused — the hard pair is the deterministic
third/two-thirds pair); ``seed`` drives the per-cell routing streams.

Cells
-----
One cell per ``(ε-series, n)``, including the ``eps=1`` identity control;
every cell on the same ``n`` routes the same two path nodes, and within a
cell both routing directions share one :class:`DistanceOracle`.
"""

from __future__ import annotations

import math
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.adversarial import block_labeling
from repro.core.matrix import MatrixScheme, harmonic_label_matrix
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    cell_payload,
    derive_cell_seed,
    derive_instance_seed,
    ensure_store,
    route_point,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs.store import GraphStore
from repro.graphs import generators

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-5"
TITLE = "Theorem 3: small label spaces force polynomial greedy diameter on the path"
PAPER_CLAIM = (
    "Any matrix-based augmentation-labeling scheme using labels of eps*log(n) bits on the "
    "n-node path yields greedy diameter Omega(n^beta) for every beta < (1 - eps)/3 (Theorem 3)."
)

EPSILONS = (0.25, 0.5, 0.75)

#: series name of the full-label-budget control (ε = 1, identity labeling).
CONTROL_SERIES = "eps=1 (identity labels)"


def _series_names() -> List[str]:
    return [f"eps={eps:g}" for eps in EPSILONS] + [CONTROL_SERIES]


def _epsilon_of(family: str) -> Optional[float]:
    """The ε of a series family, or ``None`` for the identity control."""
    for eps in EPSILONS:
        if family == f"eps={eps:g}":
            return eps
    if family == CONTROL_SERIES:
        return None
    raise KeyError(f"unknown EXP-5 family {family!r}")


def _hard_pair(n: int) -> tuple:
    """The standard hard pair on the path: the two nodes a third / two thirds along."""
    return (n // 3, (2 * n) // 3)


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (ε-series, n), control included."""
    return [(family, n) for family in _series_names() for n in config.effective_sizes()]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route the harmonic matrix at one (label budget, n) on the hard pair.

    Every ε-series measures the *same* path graph, so all of this
    experiment's cells at one ``n`` — and the other path-sweeping
    experiments — share one canonical ``"path"`` instance in the sweep-wide
    *store*.
    """
    seed = derive_cell_seed(config.seed, EXPERIMENT_ID, family, n)
    entry = ensure_store(store, oracle_factory).instance(
        "path",
        n,
        derive_instance_seed(config.seed, "path", n),
        lambda size, _seed: generators.path_graph(size),
    )
    graph, oracle = entry.graph, entry.oracle
    eps = _epsilon_of(family)
    if eps is None:
        num_labels = n
        matrix = harmonic_label_matrix(n, exponent=1.0)
        scheme = MatrixScheme(graph, matrix, seed=seed)
    else:
        num_labels = max(2, int(math.ceil(n ** eps)))
        labels = block_labeling(n, num_labels)
        matrix = harmonic_label_matrix(num_labels, exponent=1.0)
        scheme = MatrixScheme(graph, matrix, labels=labels, seed=seed)
    s, t = _hard_pair(n)
    point = route_point(
        graph, scheme, config, seed=seed, oracle=oracle, pairs=[(s, t), (t, s)]
    )
    point["num_labels"] = int(num_labels)
    return cell_payload(entry, seed, {family: point}, family=family)


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "epsilons": EPSILONS},
    )
    for family in _series_names():
        series = SeriesResult(name=family)
        for n in config.effective_sizes():
            payload = cells.get((family, n))
            if payload is None:
                continue
            point = payload["series"][family]
            series.add(point["n"], point["value"])
            if family != CONTROL_SERIES:
                series.metadata[f"num_labels_n{point['n']}"] = point["num_labels"]
        result.add_series(series)

    rows = []
    for eps in EPSILONS:
        fit = result.get_series(f"eps={eps:g}").power_law()
        if fit:
            rows.append((eps, fit.exponent, (1 - eps) / 3))
    text = ", ".join(
        f"eps={eps:g}: measured {expo:.3f} >= bound {bound:.3f}" for eps, expo, bound in rows
    )
    control_fit = result.get_series(CONTROL_SERIES).power_law()
    result.conclusion = (
        f"{text}; exponents decrease with eps and always exceed the theorem's (1-eps)/3 floor, "
        f"while the identity-labeling control grows with exponent {control_fit.exponent:.3f}"
        if control_fit
        else text
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
