"""EXP-8 (extension) — ablation of the ball scheme's level mixture.

Reproduces
----------
``EXPERIMENT_ID = "EXP-8"`` — an extension probing Theorem 4's construction.
The theorem's scheme draws the radius scale ``2^k`` with ``k`` *uniform*
over ``{1, …, ⌈log n⌉}``.  The proof needs every scale: small balls finish
the route near the target (phases 4–5), large balls reach the
``n^{2/3}``-size target ball in the first place (phase 1), and the
intermediate scales drive the doubling/halving argument of phases 3–4.

This ablation replaces the uniform level mixture by degenerate alternatives
on the ring (where the uniform scheme is Θ(√n)-tight):

* ``smallest level only`` — contacts always within distance 2 (no long
  shortcuts at all): expect ~linear growth, far worse than √n,
* ``largest level only``  — contacts uniform in a ball that covers the whole
  graph, i.e. essentially the uniform scheme: expect the √n regime,
* ``uniform levels`` (the paper's choice) and, as context, the plain uniform
  scheme.

The paper's mixture must be the only variant in the ``n^{1/3}`` regime; the
ablation quantifies how much of the improvement each ingredient carries.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept ring sizes; ``num_pairs``, ``trials``
and ``pair_strategy`` control the Monte-Carlo effort per cell; ``seed``
drives the deterministic per-cell seeding.

Cells
-----
One cell per ring size; all four variants share the ring instance and one
:class:`DistanceOracle` (the three ball variants additionally pool their
``B(u, 2^k)`` lookups through it).
"""

from __future__ import annotations

import math
import sys
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.core.ball_scheme import BallScheme
from repro.core.uniform import UniformScheme
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    collect_series,
    run_experiment,
    scaling_cell,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-8"
TITLE = "Ablation: the ball scheme's uniform level mixture (extension)"
PAPER_CLAIM = (
    "Theorem 4's construction mixes all radius scales 2^k, k in {1..ceil(log n)}, uniformly; "
    "the proof uses every scale, so degenerate level choices should lose the n^(1/3) behaviour."
)

FAMILY = "ring"

VARIANTS = (
    "uniform levels (paper)",
    "smallest level only",
    "largest level only",
    "uniform scheme",
)


def _one_hot(num_levels: int, level: int) -> np.ndarray:
    probs = np.zeros(num_levels)
    probs[level - 1] = 1.0
    return probs


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per ring size."""
    return [(FAMILY, n) for n in config.effective_sizes()]


def _levels(graph) -> int:
    """The paper's level count ``⌈log₂ n⌉`` for the ablation's one-hot variants."""
    return max(1, int(math.ceil(math.log2(graph.num_nodes))))


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route all four level-mixture variants on one shared ring instance.

    The ring instance comes from the sweep-wide *store*: it is the same
    ``("ring", n)`` instance the other experiments sweep, so its BFS arrays
    are usually already warm when this ablation runs.
    """
    return scaling_cell(
        EXPERIMENT_ID,
        family,
        n,
        lambda size, seed: generators.cycle_graph(size),
        {
            "uniform levels (paper)": lambda g, s, o: BallScheme(g, seed=s, oracle=o),
            "smallest level only": lambda g, s, o: BallScheme(
                g, radius_distribution=_one_hot(_levels(g), 1), seed=s, oracle=o
            ),
            "largest level only": lambda g, s, o: BallScheme(
                g, radius_distribution=_one_hot(_levels(g), _levels(g)), seed=s, oracle=o
            ),
            "uniform scheme": lambda g, s, o: UniformScheme(g, seed=s),
        },
        config,
        oracle_factory=oracle_factory,
        store=store,
    )


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "family": FAMILY},
    )
    for name in VARIANTS:
        result.add_series(collect_series(cells, FAMILY, name, config))

    fits = {name: result.get_series(name).power_law() for name in VARIANTS}
    parts = [
        f"{name}: n^{fit.exponent:.2f}" for name, fit in fits.items() if fit is not None
    ]
    result.conclusion = (
        "fitted growth on the ring — "
        + ", ".join(parts)
        + "; only the paper's uniform level mixture reaches the n^(1/3) regime, the smallest-level "
        "variant degenerates towards walking and the largest-level variant reproduces the uniform "
        "scheme's sqrt(n) behaviour."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the ablation sweep on rings and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
