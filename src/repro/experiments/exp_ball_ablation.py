"""EXP-8 (extension) — ablation of the ball scheme's level mixture.

Theorem 4's scheme draws the radius scale ``2^k`` with ``k`` *uniform* over
``{1, …, ⌈log n⌉}``.  The proof needs every scale: small balls finish the
route near the target (phases 4–5), large balls reach the ``n^{2/3}``-size
target ball in the first place (phase 1), and the intermediate scales drive
the doubling/halving argument of phases 3–4.

This ablation replaces the uniform level mixture by degenerate alternatives
on the ring (where the uniform scheme is Θ(√n)-tight):

* ``smallest level only`` — contacts always within distance 2 (no long
  shortcuts at all): expect ~linear growth, far worse than √n,
* ``largest level only``  — contacts uniform in a ball that covers the whole
  graph, i.e. essentially the uniform scheme: expect the √n regime,
* ``uniform levels`` (the paper's choice) and, as context, the plain uniform
  scheme.

The paper's mixture must be the only variant in the ``n^{1/3}`` regime; the
ablation quantifies how much of the improvement each ingredient carries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.ball_scheme import BallScheme
from repro.core.uniform import UniformScheme
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.routing.simulator import estimate_greedy_diameter

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-8"
TITLE = "Ablation: the ball scheme's uniform level mixture (extension)"
PAPER_CLAIM = (
    "Theorem 4's construction mixes all radius scales 2^k, k in {1..ceil(log n)}, uniformly; "
    "the proof uses every scale, so degenerate level choices should lose the n^(1/3) behaviour."
)


def _one_hot(num_levels: int, level: int) -> np.ndarray:
    probs = np.zeros(num_levels)
    probs[level - 1] = 1.0
    return probs


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the ablation sweep on rings and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "family": "ring"},
    )
    variants = ("uniform levels (paper)", "smallest level only", "largest level only", "uniform scheme")
    series = {name: SeriesResult(name=name) for name in variants}
    for idx, n in enumerate(config.effective_sizes()):
        seed = config.seed + idx
        graph = generators.cycle_graph(n)
        num_levels = max(1, int(math.ceil(math.log2(n))))
        schemes = [
            ("uniform levels (paper)", BallScheme(graph, seed=seed)),
            (
                "smallest level only",
                BallScheme(graph, radius_distribution=_one_hot(num_levels, 1), seed=seed),
            ),
            (
                "largest level only",
                BallScheme(graph, radius_distribution=_one_hot(num_levels, num_levels), seed=seed),
            ),
            ("uniform scheme", UniformScheme(graph, seed=seed)),
        ]
        for name, scheme in schemes:
            estimate = estimate_greedy_diameter(
                graph,
                scheme,
                num_pairs=config.num_pairs,
                trials=config.trials,
                seed=seed,
                pair_strategy=config.pair_strategy,
            )
            series[name].add(n, estimate.diameter)
    for name in variants:
        result.add_series(series[name])

    fits = {name: series[name].power_law() for name in variants}
    parts = [
        f"{name}: n^{fit.exponent:.2f}" for name, fit in fits.items() if fit is not None
    ]
    result.conclusion = (
        "fitted growth on the ring — "
        + ", ".join(parts)
        + "; only the paper's uniform level mixture reaches the n^(1/3) regime, the smallest-level "
        "variant degenerates towards walking and the largest-level variant reproduces the uniform "
        "scheme's sqrt(n) behaviour."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
