"""Experiment harness: one module per claim of the paper (see DESIGN.md §2).

Each experiment module exposes

* ``EXPERIMENT_ID`` / ``TITLE`` / ``PAPER_CLAIM`` constants,
* the cell protocol — ``cell_keys(config)``, ``run_cell(config, family, n)``
  and ``assemble(config, cells)`` — that the sweep pipeline
  (:class:`~repro.experiments.runner.SweepExecutor`) fans out over processes
  and persists as JSON artifacts (see :mod:`repro.experiments.common`),
* ``run(config) -> ExperimentResult`` — the classic one-call sweep, and
* ``main()`` — a CLI entry point printing the text report.

The benchmarks under ``benchmarks/`` call ``run`` with a small
:class:`~repro.experiments.config.ExperimentConfig` so they finish quickly;
``python -m repro experiment --markdown`` regenerates the full-size sweep
recorded in EXPERIMENTS.md (``--jobs``/``--out``/``--resume`` parallelise and
checkpoint it).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments import (
    exp_uniform,
    exp_name_independent,
    exp_matrix_label,
    exp_trees_atfree,
    exp_label_size,
    exp_ball_scheme,
    exp_kleinberg,
    exp_ball_ablation,
)
from repro.experiments.runner import (
    EXPERIMENT_MODULES,
    SweepExecutor,
    results_from_artifacts,
    run_all,
)

__all__ = [
    "ExperimentConfig",
    "exp_uniform",
    "exp_name_independent",
    "exp_matrix_label",
    "exp_trees_atfree",
    "exp_label_size",
    "exp_ball_scheme",
    "exp_kleinberg",
    "exp_ball_ablation",
    "run_all",
    "results_from_artifacts",
    "SweepExecutor",
    "EXPERIMENT_MODULES",
]
