"""Experiment harness: one module per claim of the paper (see DESIGN.md §2).

Each experiment module exposes

* ``EXPERIMENT_ID`` / ``TITLE`` / ``PAPER_CLAIM`` constants,
* ``run(config) -> ExperimentResult`` — the full parameter sweep, and
* ``main()`` — a CLI entry point printing the text report.

The benchmarks under ``benchmarks/`` call ``run`` with a small
:class:`~repro.experiments.config.ExperimentConfig` so they finish quickly;
``python -m repro.experiments.exp_ball_scheme`` (etc.) runs the full-size
sweep recorded in EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments import (
    exp_uniform,
    exp_name_independent,
    exp_matrix_label,
    exp_trees_atfree,
    exp_label_size,
    exp_ball_scheme,
    exp_kleinberg,
    exp_ball_ablation,
)
from repro.experiments.runner import run_all, EXPERIMENT_MODULES

__all__ = [
    "ExperimentConfig",
    "exp_uniform",
    "exp_name_independent",
    "exp_matrix_label",
    "exp_trees_atfree",
    "exp_label_size",
    "exp_ball_scheme",
    "exp_kleinberg",
    "exp_ball_ablation",
    "run_all",
    "EXPERIMENT_MODULES",
]
