"""Shared building blocks for the experiment modules.

The experiment pipeline is *cell-based*: every experiment decomposes into
independent **cells** keyed ``(family, n)`` — one generated graph instance and
every scheme the experiment measures on it.  Each exp module exposes

* ``cell_keys(config)``     — the list of ``(family, n)`` cells of its sweep,
* ``run_cell(config, family, n)`` — compute one cell, returning a JSON-safe
  payload (this is the unit of work the
  :class:`~repro.experiments.runner.SweepExecutor` fans out over processes and
  persists as an artifact),
* ``assemble(config, cells)`` — fold the cell payloads back into an
  :class:`~repro.analysis.reporting.ExperimentResult` (pure, deterministic, so
  reports can be regenerated from artifacts alone), and
* ``run(config)``            — the classic one-call API, implemented as
  ``assemble`` over locally computed cells.

Within a cell every scheme shares a single :class:`DistanceOracle`, so the
BFS array computed for a routing target under the first scheme is a cache hit
for every other scheme.  *Across* cells — and across whole experiments — the
same pooling runs through the :class:`~repro.graphs.store.GraphStore`: graph
generation and pair sampling are seeded **per instance**
(:func:`derive_instance_seed`, a function of ``(master_seed, family, n)``
only), while schemes and Monte-Carlo trials stay seeded **per cell**
(:func:`derive_cell_seed`, which folds in the experiment id).  Two
experiments sweeping the same ``(family, n)`` therefore measure the *same
graph over the same pairs* with decorrelated randomness — so the second
experiment's BFS sweeps are all store-served cache hits — exactly the
cross-experiment redundancy the store exists to eliminate.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import SeriesResult
from repro.core.base import AugmentationScheme
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DistanceProvider
from repro.graphs.store import GraphStore, StoreEntry
from repro.routing.simulator import (
    RoutingEstimate,
    estimate_expected_steps,
    estimate_greedy_diameter,
)

__all__ = [
    "GraphFactory",
    "SchemeFactory",
    "OracleFactory",
    "CellPayload",
    "GraphInstance",
    "SweepCache",
    "derive_cell_seed",
    "derive_instance_seed",
    "ensure_store",
    "cell_payload",
    "make_oracle",
    "route_point",
    "scaling_cell",
    "collect_series",
    "run_experiment",
    "measure_scaling",
    "standard_graph_families",
]

GraphFactory = Callable[[int, int], Graph]
#: Builds a scheme for one cell: ``(graph, seed, provider) -> scheme``.  Schemes
#: that can pool BFS work (e.g. ``BallScheme``) should pass the provider
#: through; the others simply ignore it.
SchemeFactory = Callable[[Graph, int, DistanceProvider], AugmentationScheme]
#: Builds the per-cell distance provider; tests inject counting/recording
#: factories here (and the store builds mode-selected providers by default).
OracleFactory = Callable[[Graph], DistanceProvider]
#: JSON-safe payload of one computed cell (see :func:`scaling_cell`).
CellPayload = Dict[str, object]


def derive_cell_seed(master_seed: int, experiment_id: str, family: str, n: int) -> int:
    """Deterministic per-cell seed, independent of cell execution order.

    The seed depends only on ``(master_seed, experiment_id, family, n)`` so a
    cell computes identical numbers whether it runs serially, in a process
    pool, or alone during a ``--resume`` backfill.  It drives the *random*
    parts of a cell — scheme construction and Monte-Carlo trials; graph
    generation and pair sampling use :func:`derive_instance_seed` instead so
    they are shared across experiments.
    """
    key = f"{master_seed}:{experiment_id}:{family}:{n}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:4], "big") & 0x7FFFFFFF


def derive_instance_seed(master_seed: int, family: str, n: int) -> int:
    """Deterministic per-*instance* seed: no experiment id in the key.

    Graph generation and pair sampling are seeded with this value, so every
    experiment sweeping ``(family, n)`` under one master seed builds the
    *identical* graph and routes the *identical* pair set — which is what
    lets the :class:`~repro.graphs.store.GraphStore` serve the second and
    later experiments entirely from cache (zero graph builds, zero repeat
    BFS).  The constant ``"instance"`` tag keeps the key-space disjoint from
    :func:`derive_cell_seed`'s ``EXP-*`` experiment ids.
    """
    key = f"{master_seed}:instance:{family}:{n}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:4], "big") & 0x7FFFFFFF


def make_oracle(oracle_factory: Optional[OracleFactory], graph: Graph) -> DistanceProvider:
    """Instantiate the cell provider (default exact :class:`DistanceOracle`)."""
    factory = oracle_factory if oracle_factory is not None else DistanceOracle
    return factory(graph)


def ensure_store(
    store: Optional[GraphStore], oracle_factory: Optional[OracleFactory] = None
) -> GraphStore:
    """Return *store*, or a private single-cell :class:`GraphStore`.

    Experiment ``run_cell`` functions accept an optional shared store (the
    sweep executor threads one through the whole run); standalone calls fall
    back to a fresh private store, which reproduces the historical
    one-graph-one-oracle-per-cell behaviour exactly.
    """
    if store is not None:
        return store
    return GraphStore(oracle_factory=oracle_factory)


#: Kept as the public name of the store's entry type: experiment code reads
#: ``instance.graph`` / ``instance.oracle`` off it.
GraphInstance = StoreEntry


class SweepCache:
    """Thin adapter presenting a :class:`GraphStore` under the legacy API.

    Shared between successive :func:`measure_scaling` calls (one per scheme)
    so every scheme of an experiment sees the *same* graph instance and pools
    BFS arrays through the same oracle.  New code should use a
    :class:`~repro.graphs.store.GraphStore` directly; this wrapper remains
    because ``measure_scaling`` predates the store.
    """

    def __init__(
        self,
        *,
        oracle_factory: Optional[OracleFactory] = None,
        store: Optional[GraphStore] = None,
    ) -> None:
        self._store = store if store is not None else GraphStore(oracle_factory=oracle_factory)

    @property
    def store(self) -> GraphStore:
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def instance(
        self, family: str, n: int, seed: int, graph_factory: GraphFactory
    ) -> GraphInstance:
        """Return the cached instance for ``(family, n, seed)``, generating on miss."""
        return self._store.instance(family, n, seed, graph_factory)


def standard_graph_families() -> Dict[str, GraphFactory]:
    """The graph families used as universal-scheme workloads.

    Keys are family names; values map ``(n, seed)`` to a connected graph with
    approximately ``n`` nodes.
    """

    def torus(n: int, seed: int) -> Graph:
        side = max(3, int(round(n ** 0.5)))
        return generators.torus_graph([side, side])

    return {
        "ring": lambda n, seed: generators.cycle_graph(n),
        "path": lambda n, seed: generators.path_graph(n),
        "torus2d": torus,
        "random_tree": lambda n, seed: generators.random_tree(n, seed=seed),
        "lollipop": lambda n, seed: generators.lollipop_graph(max(4, n // 8), n - max(4, n // 8)),
    }


def route_point(
    graph: Graph,
    scheme: AugmentationScheme,
    config: ExperimentConfig,
    *,
    seed: int,
    oracle: DistanceProvider,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    pair_seed: Optional[int] = None,
) -> Dict[str, object]:
    """Route one (graph, scheme) measurement point; returns a JSON-safe dict.

    With ``pairs`` the expected steps over exactly those pairs are estimated
    (the lower-bound experiments route the proofs' hard pairs); without, the
    config's pair strategy samples diameter-biased pairs — from ``pair_seed``
    when given (the per-*instance* seed, so every scheme and every experiment
    measured on one graph instance routes the identical pair set and reuses
    its BFS arrays).  Either way the shared *oracle* serves every distance
    array (and, under the default lane engine, the precomputed per-target
    ``next_local`` hop tables), and ``config.engine`` selects the Monte-Carlo
    engine.
    """
    if pairs is not None:
        estimate: RoutingEstimate = estimate_expected_steps(
            graph,
            scheme,
            pairs,
            trials=config.trials,
            seed=seed,
            oracle=oracle,
            engine=config.engine,
        )
    else:
        estimate = estimate_greedy_diameter(
            graph,
            scheme,
            num_pairs=config.num_pairs,
            trials=config.trials,
            seed=seed,
            pair_strategy=config.pair_strategy,
            oracle=oracle,
            engine=config.engine,
            pair_seed=pair_seed,
        )
    return {
        "n": int(graph.num_nodes),
        "value": float(estimate.diameter),
        "mean": float(estimate.mean),
        "long_link_fraction": float(estimate.long_link_fraction),
        "failed_trials": int(estimate.failed_trials),
    }


def cell_payload(
    entry: GraphInstance,
    cell_seed: int,
    series: Dict[str, Dict[str, object]],
    *,
    family: Optional[str] = None,
) -> CellPayload:
    """Assemble the JSON-safe payload of one computed cell.

    Besides the measured ``series``, the payload records the cell seed, the
    instance seed the graph/pairs were derived from and the graph's CSR
    content fingerprint — so a persisted artifact pins down *exactly* which
    instance it measured (the same fingerprint guards the GraphStore's disk
    spill round-trip).  *family* overrides the payload's family for
    experiments whose cell families are series names (``"eps=0.5"``) sharing
    one canonical store instance (``"path"``).
    """
    return {
        "family": entry.family if family is None else str(family),
        "requested_n": int(entry.requested_n),
        "seed": int(cell_seed),
        "instance_seed": int(entry.seed),
        "graph_fingerprint": entry.fingerprint,
        "series": series,
    }


def scaling_cell(
    experiment_id: str,
    family: str,
    n: int,
    graph_factory: GraphFactory,
    scheme_factories: Dict[str, SchemeFactory],
    config: ExperimentConfig,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Compute one standard scaling cell: every scheme on one graph instance.

    The returned payload is JSON-serializable (see :func:`cell_payload`).
    The graph instance and its oracle come from *store* — the sweep executor
    passes one store across the whole run, so a ``(family, n)`` instance
    already measured by an earlier experiment is reused outright: no graph
    build, and (pairs being instance-seeded) no repeat BFS.  All schemes of
    the cell share the instance's oracle, so the second and later schemes hit
    the cached BFS arrays of the first.
    """
    cell_seed = derive_cell_seed(config.seed, experiment_id, family, n)
    instance_seed = derive_instance_seed(config.seed, family, n)
    entry = ensure_store(store, oracle_factory).instance(
        family, n, instance_seed, graph_factory
    )
    graph, oracle = entry.graph, entry.oracle
    series: Dict[str, Dict[str, object]] = {}
    for series_name, factory in scheme_factories.items():
        scheme = factory(graph, cell_seed, oracle)
        series[series_name] = route_point(
            graph, scheme, config, seed=cell_seed, oracle=oracle, pair_seed=instance_seed
        )
    return cell_payload(entry, cell_seed, series)


def collect_series(
    cells: Dict[Tuple[str, int], CellPayload],
    family: str,
    series_name: str,
    config: ExperimentConfig,
    *,
    metadata_key: Optional[str] = "long_link_fraction",
) -> SeriesResult:
    """Fold the per-cell payloads of one ``(family, series)`` into a curve.

    Cells missing from *cells* (e.g. filtered out) are skipped, so a partial
    artifact directory still assembles into a partial-but-valid report.
    """
    series = SeriesResult(name=series_name)
    for n in config.effective_sizes():
        payload = cells.get((family, n))
        if payload is None:
            continue
        point = payload["series"].get(series_name)  # type: ignore[union-attr]
        if point is None:
            continue
        series.add(point["n"], point["value"])
        if metadata_key is not None and metadata_key in point:
            series.metadata[f"{metadata_key}_n{point['n']}"] = float(point[metadata_key])
    return series


def run_experiment(
    module,
    config: Optional[ExperimentConfig] = None,
    *,
    oracle_factory=None,
    store: Optional[GraphStore] = None,
):
    """Default ``run()`` implementation: compute every cell locally, assemble.

    *module* is an experiment module following the cell protocol documented in
    the module docstring above.  One :class:`GraphStore` is shared across the
    experiment's cells (cells of one experiment never repeat a ``(family, n)``
    instance, but a caller-supplied *store* lets several ``run()`` calls pool
    instances the way the sweep executor does).
    """
    config = config or ExperimentConfig.full()
    store = ensure_store(store, oracle_factory)
    cells = {
        (family, n): module.run_cell(
            config, family, n, oracle_factory=oracle_factory, store=store
        )
        for family, n in module.cell_keys(config)
    }
    return module.assemble(config, cells)


def measure_scaling(
    family_name: str,
    graph_factory: GraphFactory,
    scheme_factory: SchemeFactory,
    config: ExperimentConfig,
    *,
    series_name: Optional[str] = None,
    quantity: str = "diameter",
    cache: Optional[SweepCache] = None,
    experiment_id: str = "",
) -> SeriesResult:
    """Measure the greedy-diameter scaling of one (family, scheme) combination.

    Parameters
    ----------
    family_name:
        Name used for caching, seeding and for the default series name.
    graph_factory, scheme_factory:
        Build the graph for a size and the scheme for a
        ``(graph, seed, oracle)`` triple.
    config:
        Sweep parameters.
    quantity:
        ``"diameter"`` (max per-pair mean — the greedy diameter) or
        ``"mean"`` (average over pairs).
    cache:
        Optional :class:`SweepCache` shared between schemes so each graph
        instance is generated once — and, crucially, so every scheme measured
        on it shares one :class:`DistanceOracle` and reuses its BFS arrays.
    experiment_id:
        Folded into the per-size seeds so different experiments decorrelate.
    """
    if quantity not in ("diameter", "mean"):
        raise ValueError(f"unknown quantity {quantity!r}; use 'diameter' or 'mean'")
    cache = cache if cache is not None else SweepCache()
    series = SeriesResult(name=series_name or family_name)
    for n in config.effective_sizes():
        cell_seed = derive_cell_seed(config.seed, experiment_id, family_name, n)
        instance_seed = derive_instance_seed(config.seed, family_name, n)
        inst = cache.instance(family_name, n, instance_seed, graph_factory)
        scheme = scheme_factory(inst.graph, cell_seed, inst.oracle)
        point = route_point(
            inst.graph,
            scheme,
            config,
            seed=cell_seed,
            oracle=inst.oracle,
            pair_seed=instance_seed,
        )
        series.add(point["n"], point["value"] if quantity == "diameter" else point["mean"])
        series.metadata[f"long_link_fraction_n{point['n']}"] = point["long_link_fraction"]
    return series
