"""Shared building blocks for the experiment modules."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.reporting import SeriesResult
from repro.core.base import AugmentationScheme
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.routing.simulator import RoutingEstimate, estimate_greedy_diameter

__all__ = ["GraphFactory", "SchemeFactory", "measure_scaling", "standard_graph_families"]

GraphFactory = Callable[[int, int], Graph]
SchemeFactory = Callable[[Graph, int], AugmentationScheme]


def standard_graph_families() -> Dict[str, GraphFactory]:
    """The graph families used as universal-scheme workloads.

    Keys are family names; values map ``(n, seed)`` to a connected graph with
    approximately ``n`` nodes.
    """

    def torus(n: int, seed: int) -> Graph:
        side = max(3, int(round(n ** 0.5)))
        return generators.torus_graph([side, side])

    return {
        "ring": lambda n, seed: generators.cycle_graph(n),
        "path": lambda n, seed: generators.path_graph(n),
        "torus2d": torus,
        "random_tree": lambda n, seed: generators.random_tree(n, seed=seed),
        "lollipop": lambda n, seed: generators.lollipop_graph(max(4, n // 8), n - max(4, n // 8)),
    }


def measure_scaling(
    family_name: str,
    graph_factory: GraphFactory,
    scheme_factory: SchemeFactory,
    config: ExperimentConfig,
    *,
    series_name: Optional[str] = None,
    quantity: str = "diameter",
    graph_cache: Optional[Dict[Tuple[str, int], Graph]] = None,
) -> SeriesResult:
    """Measure the greedy-diameter scaling of one (family, scheme) combination.

    Parameters
    ----------
    family_name:
        Name used for caching and for the default series name.
    graph_factory, scheme_factory:
        Build the graph for a size and the scheme for a graph.
    config:
        Sweep parameters.
    quantity:
        ``"diameter"`` (max per-pair mean — the greedy diameter) or
        ``"mean"`` (average over pairs).
    graph_cache:
        Optional cache shared between schemes so each graph instance is
        generated once per experiment.
    """
    series = SeriesResult(name=series_name or family_name)
    for idx, n in enumerate(config.effective_sizes()):
        seed = config.seed + idx
        key = (family_name, n)
        if graph_cache is not None and key in graph_cache:
            graph = graph_cache[key]
        else:
            graph = graph_factory(n, seed)
            if graph_cache is not None:
                graph_cache[key] = graph
        scheme = scheme_factory(graph, seed)
        estimate: RoutingEstimate = estimate_greedy_diameter(
            graph,
            scheme,
            num_pairs=config.num_pairs,
            trials=config.trials,
            seed=seed,
            pair_strategy=config.pair_strategy,
        )
        value = estimate.diameter if quantity == "diameter" else estimate.mean
        series.add(graph.num_nodes, value)
        series.metadata[f"long_link_fraction_n{graph.num_nodes}"] = estimate.long_link_fraction
    return series
