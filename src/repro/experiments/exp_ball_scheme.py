"""EXP-6 — Theorem 4: the ball scheme beats the √n barrier (Õ(n^{1/3})).

The paper's main result: the a-posteriori scheme that picks a level ``k``
uniformly in ``{1, …, ⌈log n⌉}`` and a contact uniform in ``B(u, 2^k)`` gives
greedy diameter ``Õ(n^{1/3})`` on *every* graph.

The experiment runs the ball scheme and the uniform scheme side by side on
the standard families and compares fitted exponents: the ball scheme's
exponent should sit clearly below the uniform scheme's on the 1-dimensional
families (where uniform is Θ(√n)), approaching 1/3 up to polylog corrections.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.ball_scheme import BallScheme
from repro.core.uniform import UniformScheme
from repro.experiments.common import measure_scaling, standard_graph_families
from repro.experiments.config import ExperimentConfig

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-6"
TITLE = "Theorem 4: ball scheme achieves ~n^(1/3) greedy diameter"
PAPER_CLAIM = (
    "There exists a universal augmentation scheme phi such that greedy routing in (G, phi) "
    "performs in O~(n^(1/3)) expected steps for every n-node graph G (Theorem 4)."
)

#: families where the uniform scheme is essentially tight at sqrt(n), making
#: the comparison against n^(1/3) meaningful.
_ONE_DIMENSIONAL = ("ring", "path", "lollipop")


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    families = standard_graph_families()
    cache: dict = {}
    for family_name, factory in families.items():
        ball_series = measure_scaling(
            family_name,
            factory,
            lambda graph, seed: BallScheme(graph, seed=seed),
            config,
            series_name=f"ball/{family_name}",
            graph_cache=cache,
        )
        result.add_series(ball_series)
        uniform_series = measure_scaling(
            family_name,
            factory,
            lambda graph, seed: UniformScheme(graph, seed=seed),
            config,
            series_name=f"uniform/{family_name}",
            graph_cache=cache,
        )
        result.add_series(uniform_series)
    gaps = []
    for family_name in _ONE_DIMENSIONAL:
        try:
            ball_fit = result.get_series(f"ball/{family_name}").power_law()
            uniform_fit = result.get_series(f"uniform/{family_name}").power_law()
        except KeyError:
            continue
        if ball_fit and uniform_fit:
            gaps.append((family_name, uniform_fit.exponent - ball_fit.exponent))
    gap_text = ", ".join(f"{fam}: {gap:+.3f}" for fam, gap in gaps)
    result.conclusion = (
        "exponent gap (uniform - ball) on sqrt(n)-hard families: "
        f"{gap_text}; Theorem 4 predicts a positive gap approaching 1/2 - 1/3 = 1/6 "
        "(modulo polylog factors)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
