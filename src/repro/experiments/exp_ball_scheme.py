"""EXP-6 — Theorem 4: the ball scheme beats the √n barrier (Õ(n^{1/3})).

Reproduces
----------
``EXPERIMENT_ID = "EXP-6"`` — the paper's main result (Theorem 4): the
a-posteriori scheme that picks a level ``k`` uniformly in
``{1, …, ⌈log n⌉}`` and a contact uniform in ``B(u, 2^k)`` gives greedy
diameter ``Õ(n^{1/3})`` on *every* graph.

The experiment runs the ball scheme and the uniform scheme side by side on
the standard families and compares fitted exponents: the ball scheme's
exponent should sit clearly below the uniform scheme's on the 1-dimensional
families (where uniform is Θ(√n)), approaching 1/3 up to polylog corrections.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept ``n``; ``num_pairs``, ``trials`` and
``pair_strategy`` control the Monte-Carlo effort per cell; ``seed`` drives
the deterministic per-cell seeding.

Cells
-----
One cell per ``(family, n)``; *both* schemes and the routing simulator pool
one :class:`DistanceOracle` per cell — the ball scheme's ``B(u, 2^k)``
lookups reuse the BFS arrays the simulator computed for the routing targets
(and vice versa), which is the pipeline's biggest BFS saving.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult
from repro.core.ball_scheme import BallScheme
from repro.core.uniform import UniformScheme
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    collect_series,
    run_experiment,
    scaling_cell,
    standard_graph_families,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-6"
TITLE = "Theorem 4: ball scheme achieves ~n^(1/3) greedy diameter"
PAPER_CLAIM = (
    "There exists a universal augmentation scheme phi such that greedy routing in (G, phi) "
    "performs in O~(n^(1/3)) expected steps for every n-node graph G (Theorem 4)."
)

#: families where the uniform scheme is essentially tight at sqrt(n), making
#: the comparison against n^(1/3) meaningful.
_ONE_DIMENSIONAL = ("ring", "path", "lollipop")


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (family, n)."""
    return [
        (family, n)
        for family in standard_graph_families()
        for n in config.effective_sizes()
    ]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route the ball and uniform schemes on one shared (family, n) instance.

    *store* is the sweep-wide :class:`GraphStore`: the instance (and every
    BFS array another experiment already computed on it) is reused outright.
    """
    factory = standard_graph_families()[family]
    return scaling_cell(
        EXPERIMENT_ID,
        family,
        n,
        factory,
        {
            f"ball/{family}": lambda graph, seed, oracle: BallScheme(
                graph, seed=seed, oracle=oracle
            ),
            f"uniform/{family}": lambda graph, seed, oracle: UniformScheme(graph, seed=seed),
        },
        config,
        oracle_factory=oracle_factory,
        store=store,
    )


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for family in standard_graph_families():
        result.add_series(collect_series(cells, family, f"ball/{family}", config))
        result.add_series(collect_series(cells, family, f"uniform/{family}", config))
    gaps = []
    for family_name in _ONE_DIMENSIONAL:
        try:
            ball_fit = result.get_series(f"ball/{family_name}").power_law()
            uniform_fit = result.get_series(f"uniform/{family_name}").power_law()
        except KeyError:
            continue
        if ball_fit and uniform_fit:
            gaps.append((family_name, uniform_fit.exponent - ball_fit.exponent))
    gap_text = ", ".join(f"{fam}: {gap:+.3f}" for fam, gap in gaps)
    result.conclusion = (
        "exponent gap (uniform - ball) on sqrt(n)-hard families: "
        f"{gap_text}; Theorem 4 predicts a positive gap approaching 1/2 - 1/3 = 1/6 "
        "(modulo polylog factors)."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
