"""EXP-7 — context: Kleinberg's harmonic scheme on the 2-D torus (reference [13]).

Reproduces
----------
``EXPERIMENT_ID = "EXP-7"``.  The paper's framework descends from
Kleinberg's small-world model: on the d-dimensional mesh, links drawn with
probability ``∝ dist^{-r}`` make greedy routing polylogarithmic exactly at
``r = d``, and polynomially slow for any other exponent.  The paper cites
this as the canonical *class-specific* scheme that its universal schemes
generalise away from.

This experiment reproduces the familiar U-shaped exponent-sensitivity curve
on the 2-D torus (sweep ``r ∈ {0, 1, 2, 3, 4}`` at a fixed size, plus a size
sweep at ``r = 2``).  It is primarily a calibration of the routing engine:
if the classic curve comes out wrong, none of the other experiments can be
trusted.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the size sweep (the sensitivity sweep runs at
the largest effective size); ``num_pairs``, ``trials`` and ``pair_strategy``
control the Monte-Carlo effort per cell; ``seed`` drives the per-cell
seeding.

Cells
-----
One ``("exponent sweep", n_max)`` cell routing all five exponents on a
single torus through one shared :class:`DistanceOracle` (five schemes, one
BFS working set), plus one ``("size sweep", n)`` cell per size routing both
the critical ``r = 2`` and the ``r = 0`` control on the same torus instance.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.kleinberg import DistancePowerScheme
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    cell_payload,
    derive_cell_seed,
    derive_instance_seed,
    ensure_store,
    route_point,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-7"
TITLE = "Kleinberg harmonic scheme on the 2-D torus (routing-engine calibration)"
PAPER_CLAIM = (
    "d-dimensional meshes are O(log^2 n)-navigable with the distance-power exponent r = d, "
    "and only then (Kleinberg [13], recalled in Section 1)."
)

EXPONENTS = (0.0, 1.0, 2.0, 3.0, 4.0)

#: cell family of the exponent-sensitivity sweep (one cell at the largest size).
SENSITIVITY_FAMILY = "exponent sweep"
#: cell family of the per-size sweeps (r = 2 and the r = 0 control share a cell).
SIZE_SWEEP_FAMILY = "size sweep"

_CRITICAL_SERIES = "size sweep / critical r=2"
_UNIFORMISH_SERIES = "size sweep / r=0 (uniform-like)"


def _torus(n: int, seed: int = 0):
    """The canonical ~n-node torus — the same construction as the standard
    ``torus2d`` family, so the store instance is shared with EXP-1/EXP-6."""
    side = max(3, int(round(n ** 0.5)))
    return generators.torus_graph([side, side])


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """The sensitivity cell at the largest size plus one size-sweep cell per n."""
    sizes = config.effective_sizes()
    return [(SENSITIVITY_FAMILY, max(sizes))] + [(SIZE_SWEEP_FAMILY, n) for n in sizes]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Compute the sensitivity sweep or one size-sweep point on a shared torus.

    The torus comes from the sweep-wide *store* under the canonical
    ``"torus2d"`` key, and the pair set is instance-seeded — so all thirteen
    sensitivity exponents, both size-sweep series and every *other*
    experiment's torus cell route the same pairs over one warmed oracle.
    """
    seed = derive_cell_seed(config.seed, EXPERIMENT_ID, family, n)
    instance_seed = derive_instance_seed(config.seed, "torus2d", n)
    entry = ensure_store(store, oracle_factory).instance(
        "torus2d", n, instance_seed, _torus
    )
    graph, oracle = entry.graph, entry.oracle
    if family == SENSITIVITY_FAMILY:
        points: Dict[str, Dict[str, object]] = {}
        for r in EXPONENTS:
            scheme = DistancePowerScheme(graph, r, seed=seed)
            points[f"{r:g}"] = route_point(
                graph,
                scheme,
                config,
                seed=seed + int(10 * r),
                oracle=oracle,
                pair_seed=instance_seed,
            )
        series = {SENSITIVITY_FAMILY: {"n": int(graph.num_nodes), "points": points}}
    elif family == SIZE_SWEEP_FAMILY:
        series = {}
        for r, series_name in ((2.0, _CRITICAL_SERIES), (0.0, _UNIFORMISH_SERIES)):
            scheme = DistancePowerScheme(graph, r, seed=seed)
            series[series_name] = route_point(
                graph, scheme, config, seed=seed, oracle=oracle, pair_seed=instance_seed
            )
    else:
        raise KeyError(f"unknown EXP-7 family {family!r}")
    return cell_payload(entry, seed, series, family=family)


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "exponents": EXPONENTS},
    )
    sizes = config.effective_sizes()

    sensitivity = None
    payload = cells.get((SENSITIVITY_FAMILY, max(sizes)))
    if payload is not None:
        cell = payload["series"][SENSITIVITY_FAMILY]
        sensitivity = SeriesResult(name=f"exponent sweep (n={cell['n']})")
        for r in EXPONENTS:
            point = cell["points"].get(f"{r:g}")
            if point is None:
                continue
            # Abuse "sizes" to hold the exponent axis (scaled by 100 to stay integral).
            sensitivity.add(int(round(100 * r)) + 1, point["value"])
            sensitivity.metadata[f"r={r:g}"] = point["value"]
        result.add_series(sensitivity)

    for series_name in (_CRITICAL_SERIES, _UNIFORMISH_SERIES):
        series = SeriesResult(name=series_name)
        for n in sizes:
            payload = cells.get((SIZE_SWEEP_FAMILY, n))
            if payload is None:
                continue
            point = payload["series"][series_name]
            series.add(point["n"], point["value"])
        result.add_series(series)

    if sensitivity is not None and sensitivity.metadata:
        best_r = min(sensitivity.metadata, key=lambda key: sensitivity.metadata[key])
        critical = result.get_series(_CRITICAL_SERIES).power_law()
        uniformish = result.get_series(_UNIFORMISH_SERIES).power_law()
        result.conclusion = (
            f"exponent sweep minimised at {best_r} (expected r=2 on the 2-D torus); size-sweep "
            f"exponents: critical {critical.exponent:.3f} vs r=0 {uniformish.exponent:.3f} — the "
            "critical exponent grows far slower, reproducing Kleinberg's dichotomy."
            if critical and uniformish
            else f"exponent sweep minimised at {best_r}"
        )
    else:
        result.conclusion = "sensitivity cell missing; size sweeps only"
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
