"""EXP-7 — context: Kleinberg's harmonic scheme on the 2-D torus (reference [13]).

The paper's framework descends from Kleinberg's small-world model: on the
d-dimensional mesh, links drawn with probability ``∝ dist^{-r}`` make greedy
routing polylogarithmic exactly at ``r = d``, and polynomially slow for any
other exponent.  The paper cites this as the canonical *class-specific*
scheme that its universal schemes generalise away from.

This experiment reproduces the familiar U-shaped exponent-sensitivity curve
on the 2-D torus (sweep ``r ∈ {0, 1, 2, 3, 4}`` at a fixed size, plus a size
sweep at ``r = 2``).  It is primarily a calibration of the routing engine:
if the classic curve comes out wrong, none of the other experiments can be
trusted.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.kleinberg import DistancePowerScheme
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.routing.simulator import estimate_greedy_diameter

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-7"
TITLE = "Kleinberg harmonic scheme on the 2-D torus (routing-engine calibration)"
PAPER_CLAIM = (
    "d-dimensional meshes are O(log^2 n)-navigable with the distance-power exponent r = d, "
    "and only then (Kleinberg [13], recalled in Section 1)."
)

EXPONENTS = (0.0, 1.0, 2.0, 3.0, 4.0)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config, "exponents": EXPONENTS},
    )
    sizes = config.effective_sizes()
    largest = max(sizes)
    side = max(4, int(round(largest ** 0.5)))
    torus = generators.torus_graph([side, side])

    # Sweep the exponent at the largest size: the U-shaped sensitivity curve.
    sensitivity = SeriesResult(name=f"exponent sweep (n={torus.num_nodes})")
    for r in EXPONENTS:
        scheme = DistancePowerScheme(torus, r, seed=config.seed)
        estimate = estimate_greedy_diameter(
            torus,
            scheme,
            num_pairs=config.num_pairs,
            trials=config.trials,
            seed=config.seed + int(10 * r),
            pair_strategy=config.pair_strategy,
        )
        # Abuse "sizes" to hold the exponent axis (scaled by 100 to stay integral).
        sensitivity.add(int(round(100 * r)) + 1, estimate.diameter)
        sensitivity.metadata[f"r={r:g}"] = estimate.diameter
    result.add_series(sensitivity)

    # Size sweep at the critical exponent r = 2 (polylog) vs r = 0 (uniform-like, ~sqrt n).
    for r, label in ((2.0, "critical r=2"), (0.0, "r=0 (uniform-like)")):
        series = SeriesResult(name=f"size sweep / {label}")
        for idx, n in enumerate(sizes):
            side_n = max(4, int(round(n ** 0.5)))
            graph = generators.torus_graph([side_n, side_n])
            scheme = DistancePowerScheme(graph, r, seed=config.seed + idx)
            estimate = estimate_greedy_diameter(
                graph,
                scheme,
                num_pairs=config.num_pairs,
                trials=config.trials,
                seed=config.seed + idx,
                pair_strategy=config.pair_strategy,
            )
            series.add(graph.num_nodes, estimate.diameter)
        result.add_series(series)

    best_r = min(sensitivity.metadata, key=lambda key: sensitivity.metadata[key])
    critical = result.get_series("size sweep / critical r=2").power_law()
    uniformish = result.get_series("size sweep / r=0 (uniform-like)").power_law()
    result.conclusion = (
        f"exponent sweep minimised at {best_r} (expected r=2 on the 2-D torus); size-sweep "
        f"exponents: critical {critical.exponent:.3f} vs r=0 {uniformish.exponent:.3f} — the "
        "critical exponent grows far slower, reproducing Kleinberg's dichotomy."
        if critical and uniformish
        else f"exponent sweep minimised at {best_r}"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
