"""EXP-1 — the uniform scheme is universal with greedy diameter O(√n) (Peleg's bound).

Reproduces
----------
``EXPERIMENT_ID = "EXP-1"``.  The paper recalls (Introduction) that giving
every node a uniformly random long-range contact makes *every* n-node graph
``O(√n)``-navigable.  The experiment sweeps graph families and sizes,
estimates the greedy diameter of ``(G, φ_unif)`` and fits the growth
exponent: it should be at most ≈ 0.5 everywhere, and very close to 0.5 on
the 1-dimensional families (ring, path) where the bound is tight.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept ``n`` (one sweep cell per
``(family, n)``); ``num_pairs``, ``trials`` and ``pair_strategy`` control the
Monte-Carlo effort per cell; ``seed`` drives the deterministic per-cell
seeding (see :func:`repro.experiments.common.derive_cell_seed`).

Cells
-----
One cell per ``(family, n)`` over :func:`standard_graph_families`; the single
uniform scheme shares the cell's :class:`DistanceOracle` with the routing
simulator.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult
from repro.core.uniform import UniformScheme
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    collect_series,
    run_experiment,
    scaling_cell,
    standard_graph_families,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-1"
TITLE = "Uniform scheme: O(sqrt(n)) universal upper bound"
PAPER_CLAIM = (
    "For any n-node graph G, greedy routing in (G, phi_unif) performs in O(sqrt(n)) "
    "expected steps (Peleg's observation, Section 1)."
)


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (family, n)."""
    return [
        (family, n)
        for family in standard_graph_families()
        for n in config.effective_sizes()
    ]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route the uniform scheme on one (family, n) graph instance.

    *store* is the sweep-wide :class:`GraphStore`; when another experiment
    already measured this ``(family, n)`` instance the cell reuses its graph
    and warmed oracle outright.
    """
    factory = standard_graph_families()[family]
    return scaling_cell(
        EXPERIMENT_ID,
        family,
        n,
        factory,
        {f"uniform/{family}": lambda graph, seed, oracle: UniformScheme(graph, seed=seed)},
        config,
        oracle_factory=oracle_factory,
        store=store,
    )


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for family in standard_graph_families():
        result.add_series(collect_series(cells, family, f"uniform/{family}", config))
    exponents = {
        s.name: s.power_law().exponent for s in result.series if s.power_law() is not None
    }
    worst = max(exponents.values()) if exponents else float("nan")
    result.conclusion = (
        f"largest fitted exponent {worst:.3f}; the paper's O(sqrt(n)) bound predicts "
        "exponents <= 0.5 (up to sampling noise), tight on ring/path."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
