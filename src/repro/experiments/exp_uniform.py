"""EXP-1 — the uniform scheme is universal with greedy diameter O(√n) (Peleg's bound).

The paper recalls (Introduction) that giving every node a uniformly random
long-range contact makes *every* n-node graph ``O(√n)``-navigable.  The
experiment sweeps graph families and sizes, estimates the greedy diameter of
``(G, φ_unif)`` and fits the growth exponent: it should be at most ≈ 0.5
everywhere, and very close to 0.5 on the 1-dimensional families (ring, path)
where the bound is tight.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult
from repro.core.uniform import UniformScheme
from repro.experiments.common import measure_scaling, standard_graph_families
from repro.experiments.config import ExperimentConfig

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-1"
TITLE = "Uniform scheme: O(sqrt(n)) universal upper bound"
PAPER_CLAIM = (
    "For any n-node graph G, greedy routing in (G, phi_unif) performs in O(sqrt(n)) "
    "expected steps (Peleg's observation, Section 1)."
)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    families = standard_graph_families()
    cache: dict = {}
    for family_name, factory in families.items():
        series = measure_scaling(
            family_name,
            factory,
            lambda graph, seed: UniformScheme(graph, seed=seed),
            config,
            series_name=f"uniform/{family_name}",
            graph_cache=cache,
        )
        result.add_series(series)
    exponents = {
        s.name: s.power_law().exponent for s in result.series if s.power_law() is not None
    }
    worst = max(exponents.values()) if exponents else float("nan")
    result.conclusion = (
        f"largest fitted exponent {worst:.3f}; the paper's O(sqrt(n)) bound predicts "
        "exponents <= 0.5 (up to sampling noise), tight on ring/path."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
