"""Run every experiment and collect the reports (used to regenerate EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import ExperimentResult
from repro.experiments import (
    exp_ball_ablation,
    exp_ball_scheme,
    exp_kleinberg,
    exp_label_size,
    exp_matrix_label,
    exp_name_independent,
    exp_trees_atfree,
    exp_uniform,
)
from repro.experiments.config import ExperimentConfig

__all__ = ["EXPERIMENT_MODULES", "run_all", "render_markdown"]

#: Experiment modules in DESIGN.md order.
EXPERIMENT_MODULES = (
    exp_uniform,
    exp_name_independent,
    exp_matrix_label,
    exp_trees_atfree,
    exp_label_size,
    exp_ball_scheme,
    exp_kleinberg,
    exp_ball_ablation,
)


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    only: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Dict[str, ExperimentResult]:
    """Run all (or the selected) experiments with one shared configuration.

    Parameters
    ----------
    config:
        Shared configuration; defaults to :meth:`ExperimentConfig.full`.
    only:
        Optional iterable of experiment ids (``"EXP-1"`` …) to restrict to.
    verbose:
        Print each report as it completes.
    """
    config = config or ExperimentConfig.full()
    wanted = {x.upper() for x in only} if only else None
    results: Dict[str, ExperimentResult] = {}
    for module in EXPERIMENT_MODULES:
        exp_id = module.EXPERIMENT_ID
        if wanted is not None and exp_id.upper() not in wanted:
            continue
        result = module.run(config)
        results[exp_id] = result
        if verbose:
            print(result.to_text())
            print()
    return results


def render_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Concatenate the Markdown reports of *results* in experiment order."""
    parts: List[str] = []
    for module in EXPERIMENT_MODULES:
        exp_id = module.EXPERIMENT_ID
        if exp_id in results:
            parts.append(results[exp_id].to_markdown())
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description="Run the reproduction experiments")
    parser.add_argument("--quick", action="store_true", help="use the small benchmark configuration")
    parser.add_argument("--only", nargs="*", help="experiment ids to run (e.g. EXP-6)")
    parser.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    args = parser.parse_args()
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    results = run_all(config, only=args.only, verbose=not args.markdown)
    if args.markdown:
        print(render_markdown(results))


if __name__ == "__main__":  # pragma: no cover
    main()
