"""The oracle-backed experiment pipeline: cell sweep, artifacts, reports.

The paper's headline claims are scaling curves, so a full reproduction is a
*sweep* over ``(experiment, family, n)`` cells.  This module turns that sweep
into an explicit pipeline:

1. every experiment module decomposes into independent cells (see the cell
   protocol in :mod:`repro.experiments.common`); within a cell all schemes
   share one :class:`~repro.graphs.oracle.DistanceOracle`, so BFS arrays are
   computed once per graph instance instead of once per scheme,
2. the :class:`SweepExecutor` runs the cells — serially or fanned out over a
   ``ProcessPoolExecutor`` (``jobs``) with deterministic per-cell seeding, so
   parallel runs are bitwise-identical to serial ones; one
   :class:`~repro.graphs.store.GraphStore` is shared across *all* experiments
   of the run (instances are keyed ``(family, n, instance_seed)`` with no
   experiment id), so the second and later experiments over a given instance
   perform zero graph builds and zero repeat BFS sweeps — with
   ``graph_cache`` the store also spills its BFS/``next_local`` arrays to
   fingerprint-checked raw ``.spill`` files (memory-mapped on reload) that
   pool the work across worker processes and across runs,
3. each computed cell is persisted as a JSON
   :class:`~repro.analysis.reporting.CellArtifact` (``artifacts_dir``) and a
   resumed sweep (``resume=True``) skips every cell whose artifact already
   exists under a matching configuration,
4. :func:`run_all` / :func:`results_from_artifacts` assemble the cell
   payloads into :class:`ExperimentResult` objects and
   :func:`render_markdown` renders the EXPERIMENTS.md report — assembly is a
   pure function of the payloads, so reports regenerate from artifacts alone.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import (
    CellArtifact,
    ExperimentResult,
    artifact_path,
    iter_cell_artifacts,
    load_cell_artifact,
    write_cell_artifact,
)
from repro.experiments import (
    exp_ball_ablation,
    exp_ball_scheme,
    exp_kleinberg,
    exp_label_size,
    exp_matrix_label,
    exp_name_independent,
    exp_trees_atfree,
    exp_uniform,
)
from repro.experiments import lease as lease_module
from repro.experiments.common import OracleFactory
from repro.experiments.config import ExperimentConfig
from repro.experiments.lease import DEFAULT_LEASE_TTL
from repro.graphs import kernels
from repro.graphs.store import GraphStore, process_store

__all__ = [
    "EXPERIMENT_MODULES",
    "SweepCell",
    "SweepExecutor",
    "available_experiment_ids",
    "select_modules",
    "run_all",
    "results_from_artifacts",
    "render_markdown",
]

#: Experiment modules in DESIGN.md order.
EXPERIMENT_MODULES = (
    exp_uniform,
    exp_name_independent,
    exp_matrix_label,
    exp_trees_atfree,
    exp_label_size,
    exp_ball_scheme,
    exp_kleinberg,
    exp_ball_ablation,
)


def available_experiment_ids() -> List[str]:
    """The experiment ids accepted by ``only=`` filters, in report order."""
    return [module.EXPERIMENT_ID for module in EXPERIMENT_MODULES]


def select_modules(only: Optional[Sequence[str]]) -> List:
    """Resolve an ``only=`` filter to modules (report order preserved).

    Raises ``ValueError`` listing the available ids when any requested id is
    unknown — a typo must not silently produce an empty sweep.  ``None`` *and*
    an empty filter select everything (an argparse ``nargs="*"`` flag given
    with no values must not mean "run nothing").
    """
    if only is None or not list(only):
        return list(EXPERIMENT_MODULES)
    by_id = {module.EXPERIMENT_ID.upper(): module for module in EXPERIMENT_MODULES}
    unknown = [x for x in only if x.upper() not in by_id]
    if unknown:
        raise ValueError(
            f"unknown experiment id(s) {', '.join(repr(x) for x in unknown)}; "
            f"available: {', '.join(available_experiment_ids())}"
        )
    wanted = {x.upper() for x in only}
    return [m for m in EXPERIMENT_MODULES if m.EXPERIMENT_ID.upper() in wanted]


def _module_by_id(experiment_id: str):
    for module in EXPERIMENT_MODULES:
        if module.EXPERIMENT_ID == experiment_id:
            return module
    raise KeyError(f"no experiment module with id {experiment_id!r}")


@dataclass(frozen=True)
class SweepCell:
    """Key of one unit of sweep work: ``(experiment, family, n)``."""

    experiment_id: str
    family: str
    n: int


def _run_cell_worker(
    experiment_id: str,
    family: str,
    n: int,
    config: ExperimentConfig,
    graph_cache: Optional[str] = None,
    oracle_max_bytes: Optional[int] = None,
) -> Tuple[str, str, int, dict, dict]:
    """Process-pool entry point: compute one cell (module-level: picklable).

    Each worker process keeps one :func:`~repro.graphs.store.process_store`
    per cache directory: cells landing in the same worker share graph
    instances and warmed oracles in memory, and — with ``graph_cache`` — the
    store spills every instance it warmed after the cell, so *other* workers
    reload the BFS arrays from disk instead of recomputing them.  Either way
    the payload is bitwise identical to a serial run: the store only ever
    serves arrays a fresh BFS would reproduce exactly — including under a
    compiled kernel backend, whose selection workers inherit through the
    ``REPRO_KERNEL_BACKEND`` environment variable.  The returned backend
    snapshot feeds ``--stats``: a worker that silently fell back to numpy
    (numba missing on a shard host) is visible there, not just slower.
    """
    module = _module_by_id(experiment_id)
    # Warm the JIT before any timed work; idempotent per process (and free
    # for numpy), so the first cell pays compile time at most once.
    kernels.warmup_active()
    # The store key includes the distance-provider knobs: a landmark sweep
    # sharing a worker process with an exact sweep must not share oracles
    # (the spill *files* are mode-agnostic — exact BFS rows either way).
    store = process_store(
        graph_cache, oracle_max_bytes, config.distance_mode, config.landmarks
    )
    payload = module.run_cell(config, family, n, store=store)
    store.spill()
    return experiment_id, family, n, payload, kernels.backend_stats()


class SweepExecutor:
    """Runs the sweep's cells, with optional process fan-out and artifacts.

    Parameters
    ----------
    config:
        Shared :class:`ExperimentConfig`; its fingerprint is stored in every
        artifact and checked on resume.
    jobs:
        Worker processes.  ``1`` (default) runs in-process; cells are
        independent and deterministically seeded, so any ``jobs`` value
        produces identical payloads.
    artifacts_dir:
        When set, every computed cell is persisted there as a
        :class:`CellArtifact` JSON file.
    resume:
        Skip cells whose artifact already exists in ``artifacts_dir`` with a
        matching config fingerprint (requires ``artifacts_dir``).
    oracle_factory:
        Test hook building the per-cell oracle (e.g. a counting oracle).
        Factories are generally not picklable, so setting one forces
        in-process execution regardless of ``jobs``.
    graph_cache:
        Directory for the :class:`~repro.graphs.store.GraphStore`'s disk
        spill.  Serial runs spill each warmed instance after its cell;
        ``--jobs`` workers additionally *reload* instances other workers
        spilled, so BFS work is shared across processes (and across separate
        sweep invocations pointing at the same directory).
    store:
        Explicit :class:`GraphStore` to run on (tests inject counting
        stores).  Stores are not picklable, so setting one forces in-process
        execution; default is a run-wide store spilling to ``graph_cache``.
    shard:
        Run as one worker of a multi-process drain of ``artifacts_dir``
        (requires it; implies resume semantics).  Cells are claimed through
        atomic ``.lease`` files (see :mod:`repro.experiments.lease`), so any
        number of shard processes — started independently, even on different
        machines sharing the directory — compute each cell exactly once in
        the common case and assemble identical reports.  A shard runs its
        claimed cells serially in-process; scale by starting more shard
        processes, not by raising ``jobs``.
    lease_ttl:
        Seconds before another shard may take over an untouched lease
        (crashed-worker recovery).
    poll_interval:
        Sleep between drain passes while every remaining cell is leased to
        some other shard.
    oracle_max_bytes:
        Byte budget for every default-constructed oracle (the memory-tiered
        cache's ``max_bytes``), forwarded to the run's store and to pool
        workers.

    After :meth:`run`, :attr:`executed` and :attr:`skipped` list the cells
    that were computed fresh vs served from artifacts, and :attr:`store` is
    the run's (serial-path) graph store with its cache-hit statistics.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        jobs: int = 1,
        artifacts_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        oracle_factory: Optional[OracleFactory] = None,
        graph_cache: Optional[Union[str, Path]] = None,
        store: Optional[GraphStore] = None,
        shard: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.1,
        oracle_max_bytes: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if resume and artifacts_dir is None:
            raise ValueError("resume=True requires an artifacts_dir to resume from")
        if shard and artifacts_dir is None:
            raise ValueError("shard=True requires an artifacts_dir to drain")
        if shard and jobs != 1:
            raise ValueError(
                "shard mode runs its claimed cells serially; start more shard "
                "processes instead of raising jobs"
            )
        self._config = config
        self._fingerprint = config.fingerprint()
        self._jobs = jobs
        self._artifacts_dir = Path(artifacts_dir) if artifacts_dir is not None else None
        self._resume = resume
        self._shard = shard
        self._lease_ttl = float(lease_ttl)
        self._poll_interval = float(poll_interval)
        self._oracle_factory = oracle_factory
        self._graph_cache = Path(graph_cache) if graph_cache is not None else None
        self._oracle_max_bytes = oracle_max_bytes
        if store is None:
            store = GraphStore(
                spill_dir=self._graph_cache,
                oracle_factory=oracle_factory,
                oracle_max_bytes=oracle_max_bytes,
                distance_mode=config.distance_mode,
                landmarks=config.landmarks,
            )
            self._private_store = True
        else:
            self._private_store = False
        self.store = store
        self.executed: List[SweepCell] = []
        self.skipped: List[SweepCell] = []
        #: Per-computed-cell kernel-backend snapshot (``--stats``): which
        #: backend actually served the cell and what its JIT warmup cost.
        self.cell_backends: Dict[SweepCell, dict] = {}

    # ------------------------------------------------------------------ #
    # Artifact handling
    # ------------------------------------------------------------------ #

    def _load_resumable(self, cell: SweepCell) -> Optional[dict]:
        """Payload of a prior run's artifact for *cell*, or ``None``.

        An artifact only counts when it parses, carries the current schema
        version and was computed under the *same* config fingerprint —
        anything else is recomputed rather than silently mixed in.
        """
        assert self._artifacts_dir is not None
        path = artifact_path(self._artifacts_dir, cell.experiment_id, cell.family, cell.n)
        if not path.is_file():
            return None
        try:
            artifact = load_cell_artifact(path)
        except (ValueError, KeyError):
            return None
        if (
            artifact.experiment_id != cell.experiment_id
            or artifact.family != cell.family
            or artifact.n != cell.n
            or artifact.config != self._fingerprint
        ):
            return None
        return artifact.payload

    def _persist(self, cell: SweepCell, payload: dict) -> None:
        if self._artifacts_dir is None:
            return
        artifact = CellArtifact(
            experiment_id=cell.experiment_id,
            family=cell.family,
            n=cell.n,
            config=self._fingerprint,
            payload=payload,
        )
        write_cell_artifact(self._artifacts_dir, artifact)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, modules: Sequence) -> Dict[str, Dict[Tuple[str, int], dict]]:
        """Compute (or load) every cell of *modules*; returns payloads per id."""
        payloads: Dict[str, Dict[Tuple[str, int], dict]] = {
            module.EXPERIMENT_ID: {} for module in modules
        }
        pending: List[SweepCell] = []
        for module in modules:
            for family, n in module.cell_keys(self._config):
                cell = SweepCell(module.EXPERIMENT_ID, family, int(n))
                # Shard mode defers artifact checks to the drain loop, which
                # re-checks every pass (other shards finish cells mid-run).
                if self._resume and not self._shard:
                    payload = self._load_resumable(cell)
                    if payload is not None:
                        payloads[cell.experiment_id][(cell.family, cell.n)] = payload
                        self.skipped.append(cell)
                        continue
                pending.append(cell)

        if self._shard:
            self._run_sharded(payloads, pending)
            return payloads

        in_process = (
            self._jobs == 1
            or self._oracle_factory is not None
            or not self._private_store
            or len(pending) <= 1
        )
        if in_process:
            if pending:
                kernels.warmup_active()
            for cell in pending:
                module = _module_by_id(cell.experiment_id)
                payload = module.run_cell(
                    self._config,
                    cell.family,
                    cell.n,
                    oracle_factory=self._oracle_factory,
                    store=self.store,
                )
                # Spill after every cell so an interrupted sweep still leaves
                # its BFS arrays behind for the next (or a parallel) run.
                self.store.spill()
                self._finish(payloads, cell, payload, kernels.backend_stats())
        else:
            graph_cache = str(self._graph_cache) if self._graph_cache is not None else None
            with concurrent.futures.ProcessPoolExecutor(max_workers=self._jobs) as pool:
                futures = {
                    pool.submit(
                        _run_cell_worker,
                        cell.experiment_id,
                        cell.family,
                        cell.n,
                        self._config,
                        graph_cache,
                        self._oracle_max_bytes,
                    ): cell
                    for cell in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    cell = futures[future]
                    _, _, _, payload, backend = future.result()
                    self._finish(payloads, cell, payload, backend)
        return payloads

    def _run_sharded(self, payloads, pending: List[SweepCell]) -> None:
        """Drain *pending* as one shard of a multi-process work queue.

        Each pass over the remaining cells either loads a finished artifact
        (another shard — or a prior run — computed it), claims the cell's
        lease and computes it, or defers it because some live shard holds the
        lease.  A pass with no progress means everything left is being
        computed elsewhere, so the shard sleeps briefly before re-polling.
        The loop terminates because every deferred cell's lease either turns
        into an artifact, is released (picked up here next pass), or goes
        stale past the TTL and is taken over.
        """
        assert self._artifacts_dir is not None
        self._artifacts_dir.mkdir(parents=True, exist_ok=True)
        remaining = list(pending)
        while remaining:
            progressed = False
            deferred: List[SweepCell] = []
            for cell in remaining:
                payload = self._load_resumable(cell)
                if payload is not None:
                    payloads[cell.experiment_id][(cell.family, cell.n)] = payload
                    self.skipped.append(cell)
                    progressed = True
                    continue
                apath = artifact_path(
                    self._artifacts_dir, cell.experiment_id, cell.family, cell.n
                )
                if not lease_module.try_acquire(apath, ttl=self._lease_ttl):
                    deferred.append(cell)
                    continue
                try:
                    module = _module_by_id(cell.experiment_id)
                    kernels.warmup_active()
                    payload = module.run_cell(
                        self._config,
                        cell.family,
                        cell.n,
                        oracle_factory=self._oracle_factory,
                        store=self.store,
                    )
                    self.store.spill()
                    self._finish(payloads, cell, payload, kernels.backend_stats())
                finally:
                    lease_module.release(apath)
                progressed = True
            remaining = deferred
            if remaining and not progressed:
                time.sleep(self._poll_interval)

    def _finish(
        self, payloads, cell: SweepCell, payload: dict, backend: Optional[dict] = None
    ) -> None:
        payloads[cell.experiment_id][(cell.family, cell.n)] = payload
        self._persist(cell, payload)
        self.executed.append(cell)
        if backend is not None:
            self.cell_backends[cell] = backend


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    only: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    artifacts_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    oracle_factory: Optional[OracleFactory] = None,
    graph_cache: Optional[Union[str, Path]] = None,
    store: Optional[GraphStore] = None,
    stats: Optional[dict] = None,
    shard: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    oracle_max_bytes: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run all (or the selected) experiments with one shared configuration.

    Parameters
    ----------
    config:
        Shared configuration; defaults to :meth:`ExperimentConfig.full`.
    only:
        Optional iterable of experiment ids (``"EXP-1"`` …) to restrict to.
        Unknown ids raise ``ValueError`` listing the available ids.
    verbose:
        Print each report as it completes.
    jobs:
        Worker processes for the cell sweep (see :class:`SweepExecutor`).
    artifacts_dir:
        Persist every computed cell as a JSON artifact in this directory.
    resume:
        Skip cells whose artifact already exists (requires ``artifacts_dir``);
        the report is assembled from the mix of loaded and fresh cells.
    oracle_factory:
        Test hook for the per-cell distance oracle (forces in-process runs).
    graph_cache:
        Directory for the GraphStore's BFS/next_local ``.spill`` files
        (shares instances across worker processes and across separate runs).
    store:
        Explicit :class:`~repro.graphs.store.GraphStore` shared across the
        run's experiments (forces in-process runs; tests inject counting
        stores here, and successive ``run_all`` calls can pool instances by
        passing the same store).
    stats:
        Optional dict populated with ``"executed"`` / ``"skipped"`` cell
        lists, the ``"store"`` cache-hit counters and the per-cell
        ``"kernel_backends"`` snapshots (which backend served each computed
        cell, plus its JIT warmup time).
    shard:
        Drain ``artifacts_dir`` as one worker of a lease-coordinated
        multi-process queue (see :class:`SweepExecutor`); every shard ends
        with the complete payload set, so each assembles the full report.
    lease_ttl:
        Stale-lease takeover threshold for shard mode, in seconds.
    oracle_max_bytes:
        Byte budget for default-constructed distance oracles.
    """
    config = config or ExperimentConfig.full()
    modules = select_modules(only)
    executor = SweepExecutor(
        config,
        jobs=jobs,
        artifacts_dir=artifacts_dir,
        resume=resume,
        oracle_factory=oracle_factory,
        graph_cache=graph_cache,
        store=store,
        shard=shard,
        lease_ttl=lease_ttl,
        oracle_max_bytes=oracle_max_bytes,
    )
    payloads = executor.run(modules)
    results: Dict[str, ExperimentResult] = {}
    for module in modules:
        result = module.assemble(config, payloads[module.EXPERIMENT_ID])
        results[module.EXPERIMENT_ID] = result
        if verbose:
            print(result.to_text())
            print()
    if stats is not None:
        stats["executed"] = list(executor.executed)
        stats["skipped"] = list(executor.skipped)
        stats["store"] = executor.store.stats()
        stats["kernel_backends"] = dict(executor.cell_backends)
    return results


def results_from_artifacts(
    artifacts_dir: Union[str, Path],
    *,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, ExperimentResult]:
    """Regenerate experiment results from persisted artifacts alone.

    No routing runs: the artifacts' payloads are assembled directly.  The
    configuration is reconstructed from the artifacts' stored fingerprint
    (artifacts from mixed configurations raise ``ValueError``).
    """
    modules = select_modules(only)
    wanted = {module.EXPERIMENT_ID for module in modules}
    artifacts = [a for a in iter_cell_artifacts(artifacts_dir) if a.experiment_id in wanted]
    if not artifacts:
        raise ValueError(f"no experiment artifacts found under {artifacts_dir}")
    def _freeze(value):
        return tuple(value) if isinstance(value, list) else value

    fingerprints = {
        tuple((k, _freeze(v)) for k, v in sorted(a.config.items())) for a in artifacts
    }
    if len(fingerprints) > 1:
        raise ValueError(
            f"artifacts under {artifacts_dir} come from {len(fingerprints)} different "
            "configurations; assemble them separately"
        )
    config = ExperimentConfig(**artifacts[0].config)
    cells: Dict[str, Dict[Tuple[str, int], dict]] = {}
    for artifact in artifacts:
        cells.setdefault(artifact.experiment_id, {})[(artifact.family, artifact.n)] = (
            artifact.payload
        )
    results: Dict[str, ExperimentResult] = {}
    for module in modules:
        if module.EXPERIMENT_ID in cells:
            results[module.EXPERIMENT_ID] = module.assemble(config, cells[module.EXPERIMENT_ID])
    return results


def render_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Concatenate the Markdown reports of *results* in experiment order."""
    parts: List[str] = []
    for module in EXPERIMENT_MODULES:
        exp_id = module.EXPERIMENT_ID
        if exp_id in results:
            parts.append(results[exp_id].to_markdown())
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description="Run the reproduction experiments")
    parser.add_argument("--quick", action="store_true", help="use the small benchmark configuration")
    parser.add_argument("--only", nargs="*", help="experiment ids to run (e.g. EXP-6)")
    parser.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes for the cell sweep")
    parser.add_argument("--out", help="directory for per-cell JSON artifacts")
    parser.add_argument(
        "--resume", action="store_true", help="skip cells whose artifact already exists in --out"
    )
    parser.add_argument("--graph-cache", help="directory for the GraphStore's BFS spill files")
    args = parser.parse_args()
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    results = run_all(
        config,
        only=args.only,
        verbose=not args.markdown,
        jobs=args.jobs,
        artifacts_dir=args.out,
        resume=args.resume,
        graph_cache=args.graph_cache,
    )
    if args.markdown:
        print(render_markdown(results))


if __name__ == "__main__":  # pragma: no cover
    main()
