"""EXP-2 — Theorem 1: no name-independent matrix scheme beats Ω(√n) on the path.

Reproduces
----------
``EXPERIMENT_ID = "EXP-2"`` — Theorem 1's lower bound.  For *any*
augmentation matrix ``A`` there is a labeling of the n-node path on which
greedy routing needs ``Ω(√n)`` expected steps: the proof exhibits a set
``I`` of ``√n`` labels with internal probability mass below one, places those
labels on ``√n`` consecutive path nodes and routes between two nodes inside
that segment — with constant probability no long-range link lands inside the
segment, forcing ``Ω(√n)`` local steps.

The experiment takes several natural candidate matrices (uniform, harmonic
over label distance, local block diffusion), builds the adversarial labeling
of :func:`repro.core.adversarial.adversarial_path_labeling` for each size and
measures ``E(φ, s, t)`` on the proof's hard pair.  The fitted exponent must
stay at or above ≈ 0.5 for every matrix — i.e. no candidate matrix escapes
the barrier — which is the empirical face of the lower bound.  As a contrast,
the same matrices under the *favourable* identity labeling are also measured
(the harmonic matrix then routes polylogarithmically, showing that the
adversarial labeling, not the matrix, is what forces √n).

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept path lengths; ``trials`` controls the
long-link resamplings on the proof's hard pair (``num_pairs`` and
``pair_strategy`` are unused — the pairs come from the proof); ``seed``
drives the per-cell adversarial labeling and routing streams.

Cells
-----
One cell per ``(matrix, n)``: the adversarial and identity labelings route
the *same* hard pair on the same path instance, so the second labeling's
distance lookups are pure cache hits on the shared oracle.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.adversarial import adversarial_path_labeling
from repro.core.matrix import (
    AugmentationMatrix,
    MatrixScheme,
    block_diffusion_matrix,
    harmonic_label_matrix,
    uniform_matrix,
)
from repro.experiments.common import (
    CellPayload,
    OracleFactory,
    cell_payload,
    derive_cell_seed,
    derive_instance_seed,
    ensure_store,
    route_point,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-2"
TITLE = "Theorem 1: name-independent matrix schemes hit the sqrt(n) barrier on the path"
PAPER_CLAIM = (
    "For any augmentation matrix A of size n, the corresponding name-independent scheme "
    "applied to the n-node path yields greedy diameter Omega(sqrt(n)) (Theorem 1)."
)

MatrixFactory = Callable[[int], AugmentationMatrix]


def _candidate_matrices() -> Dict[str, MatrixFactory]:
    return {
        "uniform": uniform_matrix,
        "harmonic": lambda n: harmonic_label_matrix(n, exponent=1.0),
        "block": lambda n: block_diffusion_matrix(n, block=max(1, int(round(n ** 0.5)))),
    }


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (candidate matrix, n)."""
    return [
        (matrix_name, n)
        for matrix_name in _candidate_matrices()
        for n in config.effective_sizes()
    ]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route one matrix under the adversarial and identity labelings.

    Every candidate matrix measures the *same* path graph, so all cells at
    one ``n`` (and the other path-sweeping experiments) share one canonical
    ``"path"`` instance in the sweep-wide *store*.
    """
    seed = derive_cell_seed(config.seed, EXPERIMENT_ID, family, n)
    entry = ensure_store(store, oracle_factory).instance(
        "path",
        n,
        derive_instance_seed(config.seed, "path", n),
        lambda size, _seed: generators.path_graph(size),
    )
    graph, oracle = entry.graph, entry.oracle
    matrix = _candidate_matrices()[family](n)
    # Adversarial labeling + the proof's hard (s, t) pair.
    instance = adversarial_path_labeling(matrix, n, seed=seed)
    pairs = [(instance.source, instance.target), (instance.target, instance.source)]
    adversarial = MatrixScheme(graph, matrix, labels=instance.labels, seed=seed)
    adversarial_point = route_point(
        graph, adversarial, config, seed=seed, oracle=oracle, pairs=pairs
    )
    adversarial_point["internal_mass"] = float(instance.internal_mass)
    # Favourable identity labeling, same hard pair positions, for contrast.
    friendly = MatrixScheme(graph, matrix, labels=None, seed=seed)
    friendly_point = route_point(graph, friendly, config, seed=seed, oracle=oracle, pairs=pairs)
    return cell_payload(
        entry,
        seed,
        {
            f"adversarial/{family}": adversarial_point,
            f"identity/{family}": friendly_point,
        },
        family=family,
    )


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for matrix_name in _candidate_matrices():
        adversarial_series = SeriesResult(name=f"adversarial/{matrix_name}")
        friendly_series = SeriesResult(name=f"identity/{matrix_name}")
        for n in config.effective_sizes():
            payload = cells.get((matrix_name, n))
            if payload is None:
                continue
            adv = payload["series"][f"adversarial/{matrix_name}"]
            adversarial_series.add(adv["n"], adv["value"])
            adversarial_series.metadata[f"internal_mass_n{adv['n']}"] = adv["internal_mass"]
            fri = payload["series"][f"identity/{matrix_name}"]
            friendly_series.add(fri["n"], fri["value"])
        result.add_series(adversarial_series)
        result.add_series(friendly_series)

    exponents = []
    for matrix_name in _candidate_matrices():
        fit = result.get_series(f"adversarial/{matrix_name}").power_law()
        if fit:
            exponents.append((matrix_name, fit.exponent))
    text = ", ".join(f"{name}: {expo:.3f}" for name, expo in exponents)
    result.conclusion = (
        f"adversarial-labeling exponents ({text}) all sit at or above ~0.5, matching the "
        "Omega(sqrt(n)) lower bound; the identity-labeling contrast shows the barrier comes from "
        "the worst-case labeling, not from the matrices themselves."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
