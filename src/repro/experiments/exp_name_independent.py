"""EXP-2 — Theorem 1: no name-independent matrix scheme beats Ω(√n) on the path.

For *any* augmentation matrix ``A`` there is a labeling of the n-node path on
which greedy routing needs ``Ω(√n)`` expected steps: the proof exhibits a set
``I`` of ``√n`` labels with internal probability mass below one, places those
labels on ``√n`` consecutive path nodes and routes between two nodes inside
that segment — with constant probability no long-range link lands inside the
segment, forcing ``Ω(√n)`` local steps.

The experiment takes several natural candidate matrices (uniform, harmonic
over label distance, local block diffusion), builds the adversarial labeling
of :func:`repro.core.adversarial.adversarial_path_labeling` for each size and
measures ``E(φ, s, t)`` on the proof's hard pair.  The fitted exponent must
stay at or above ≈ 0.5 for every matrix — i.e. no candidate matrix escapes
the barrier — which is the empirical face of the lower bound.  As a contrast,
the same matrices under the *favourable* identity labeling are also measured
(the harmonic matrix then routes polylogarithmically, showing that the
adversarial labeling, not the matrix, is what forces √n).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.reporting import ExperimentResult, SeriesResult
from repro.core.adversarial import adversarial_path_labeling
from repro.core.matrix import (
    AugmentationMatrix,
    MatrixScheme,
    block_diffusion_matrix,
    harmonic_label_matrix,
    uniform_matrix,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.routing.simulator import estimate_expected_steps
from repro.utils.rng import ensure_rng

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "run", "main"]

EXPERIMENT_ID = "EXP-2"
TITLE = "Theorem 1: name-independent matrix schemes hit the sqrt(n) barrier on the path"
PAPER_CLAIM = (
    "For any augmentation matrix A of size n, the corresponding name-independent scheme "
    "applied to the n-node path yields greedy diameter Omega(sqrt(n)) (Theorem 1)."
)

MatrixFactory = Callable[[int], AugmentationMatrix]


def _candidate_matrices() -> Dict[str, MatrixFactory]:
    return {
        "uniform": uniform_matrix,
        "harmonic": lambda n: harmonic_label_matrix(n, exponent=1.0),
        "block": lambda n: block_diffusion_matrix(n, block=max(1, int(round(n ** 0.5)))),
    }


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    config = config or ExperimentConfig.full()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    rng = ensure_rng(config.seed)
    for matrix_name, matrix_factory in _candidate_matrices().items():
        adversarial_series = SeriesResult(name=f"adversarial/{matrix_name}")
        friendly_series = SeriesResult(name=f"identity/{matrix_name}")
        for idx, n in enumerate(config.effective_sizes()):
            seed = config.seed + idx
            graph = generators.path_graph(n)
            matrix = matrix_factory(n)
            # Adversarial labeling + the proof's hard (s, t) pair.
            instance = adversarial_path_labeling(matrix, n, seed=int(rng.integers(0, 2**31 - 1)))
            scheme = MatrixScheme(graph, matrix, labels=instance.labels, seed=seed)
            estimate = estimate_expected_steps(
                graph,
                scheme,
                [(instance.source, instance.target), (instance.target, instance.source)],
                trials=config.trials,
                seed=seed,
            )
            adversarial_series.add(n, estimate.diameter)
            adversarial_series.metadata[f"internal_mass_n{n}"] = instance.internal_mass
            # Favourable identity labeling, same hard pair positions, for contrast.
            friendly = MatrixScheme(graph, matrix, labels=None, seed=seed)
            friendly_estimate = estimate_expected_steps(
                graph,
                friendly,
                [(instance.source, instance.target), (instance.target, instance.source)],
                trials=config.trials,
                seed=seed,
            )
            friendly_series.add(n, friendly_estimate.diameter)
        result.add_series(adversarial_series)
        result.add_series(friendly_series)

    exponents = []
    for matrix_name in _candidate_matrices():
        fit = result.get_series(f"adversarial/{matrix_name}").power_law()
        if fit:
            exponents.append((matrix_name, fit.exponent))
    text = ", ".join(f"{name}: {expo:.3f}" for name, expo in exponents)
    result.conclusion = (
        f"adversarial-labeling exponents ({text}) all sit at or above ~0.5, matching the "
        "Omega(sqrt(n)) lower bound; the identity-labeling contrast shows the barrier comes from "
        "the worst-case labeling, not from the matrices themselves."
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
