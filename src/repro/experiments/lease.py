"""Claim/lease files: an artifact directory as a multi-process work queue.

The sweep's resume protocol already makes a cell's artifact the durable
record of completed work (``--out`` + ``--resume``).  This module adds the
*claim* half: before computing a cell, a ``--shard`` worker atomically
creates ``<artifact>.lease`` (``O_CREAT | O_EXCL`` — the filesystem is the
arbiter, no server, no locks), computes, persists the artifact, and releases
the lease.  Independent processes — or machines sharing the directory over a
network filesystem — drain one artifact directory concurrently: every cell
is computed by exactly one worker in the common case, and the assembled
report is bitwise-identical to a serial run because cell payloads are pure
functions of ``(experiment, family, n, config)``.

Crashed workers must not wedge the queue, so leases carry a TTL: a lease
whose file is older than ``ttl`` seconds is *stale* and may be taken over.
Takeover is itself race-free — the contender first renames the stale lease
to a private name (exactly one renamer wins; the loser sees
``FileNotFoundError`` and retries the normal path) and only then creates a
fresh lease.  The worst case on TTL expiry of a *live* worker is a benign
double-compute: payloads are deterministic and artifact writes are atomic
renames, so the two writers agree bitwise.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "DEFAULT_LEASE_TTL",
    "lease_path",
    "try_acquire",
    "refresh",
    "release",
]

#: Default seconds before an untouched lease counts as abandoned.
DEFAULT_LEASE_TTL = 300.0


def lease_path(artifact: Union[str, Path]) -> Path:
    """The lease file guarding *artifact* (sibling, ``.lease`` suffix added)."""
    artifact = Path(artifact)
    return artifact.with_name(artifact.name + ".lease")


def _owner_payload(owner: Optional[str]) -> bytes:
    payload = {
        "owner": owner if owner is not None else f"{socket.gethostname()}:{os.getpid()}",
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "acquired_at": time.time(),
    }
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _create_exclusive(path: Path, owner: Optional[str]) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    try:
        os.write(fd, _owner_payload(owner))
    finally:
        os.close(fd)
    return True


def try_acquire(
    artifact: Union[str, Path],
    *,
    ttl: float = DEFAULT_LEASE_TTL,
    owner: Optional[str] = None,
) -> bool:
    """Try to claim *artifact*'s cell; ``True`` iff this caller now holds it.

    Fast path: an ``O_CREAT | O_EXCL`` create of the lease file — atomic on
    every POSIX filesystem, so exactly one contender wins.  If the lease
    already exists but its mtime is older than *ttl* seconds, stale-lease
    takeover runs: rename it to a private name (one winner; losers get
    ``FileNotFoundError`` and report the cell as held) and create a fresh
    lease.  The parent directory must exist.
    """
    path = lease_path(artifact)
    if _create_exclusive(path, owner):
        return True
    try:
        age = time.time() - path.stat().st_mtime
    except FileNotFoundError:
        # Holder released between our create attempt and the stat: retry once.
        return _create_exclusive(path, owner)
    if age <= ttl:
        return False
    # Stale: exactly one contender wins the rename; the fresh create below
    # can still lose to a third racer, which is a plain "held" answer.
    private = path.with_name(f"{path.name}.stale.{os.getpid()}.{id(path)}")
    try:
        os.rename(path, private)
    except FileNotFoundError:
        return _create_exclusive(path, owner)
    try:
        private.unlink()
    except FileNotFoundError:  # pragma: no cover - best-effort cleanup
        pass
    return _create_exclusive(path, owner)


def refresh(artifact: Union[str, Path]) -> None:
    """Touch the lease so a long-running cell does not look abandoned."""
    os.utime(lease_path(artifact))


def release(artifact: Union[str, Path]) -> None:
    """Drop the lease (idempotent; missing files are fine)."""
    lease_path(artifact).unlink(missing_ok=True)
