"""EXP-3 — Theorem 2: the (M, L) scheme routes in O(min{ps(G)·log² n, √n}).

Reproduces
----------
``EXPERIMENT_ID = "EXP-3"`` — Theorem 2's upper bound.  The matrix
``M = (A + U)/2`` combines two components whose roles the proof separates
explicitly:

* the ancestor matrix ``A`` (together with the labeling ``L`` derived from a
  path decomposition) performs the dyadic landmark jumps that give
  ``O(ps(G)·log² n)`` on graphs of small pathshape,
* the uniform matrix ``U`` preserves the ``O(√n)`` universal fallback on
  graphs of large pathshape, at the cost of a factor 2.

At simulation sizes (n ≤ a few thousand) ``log² n`` is numerically *larger*
than ``√n``, so the min in the bound is attained by the √n term and the full
(M, L) scheme is expected to track the uniform scheme within a factor ≈ 2 on
every family — that is the first check.  To expose the polylog component the
experiment also runs the ancestor-only variant (``uniform_mixture = 0``): on
small-pathshape families (path, caterpillar, spider) its fitted growth
exponent must fall well below the uniform scheme's ≈ 0.5, while on the
large-pathshape control (2-D torus) it degrades — exactly the behaviour the
mixture is designed to repair.

Configuration knobs
-------------------
``sizes`` / ``max_size`` set the swept ``n``; ``num_pairs``, ``trials`` and
``pair_strategy`` control the Monte-Carlo effort per cell; ``seed`` drives
the deterministic per-cell seeding.

Cells
-----
One cell per ``(family, n)``; the three schemes (full (M, L), ancestor-only,
uniform) share the cell's graph, its path decomposition work and one
:class:`DistanceOracle` — identical per-cell pair seeds make the second and
third schemes' target-distance lookups pure cache hits.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ExperimentResult
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.decomposition.pathshape import estimate_pathshape
from repro.experiments.common import (
    CellPayload,
    GraphFactory,
    OracleFactory,
    cell_payload,
    collect_series,
    derive_cell_seed,
    derive_instance_seed,
    ensure_store,
    route_point,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.graphs import generators
from repro.graphs.store import GraphStore

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_CLAIM", "cell_keys", "run_cell", "assemble", "run", "main"]

EXPERIMENT_ID = "EXP-3"
TITLE = "Theorem 2: the (M, L) matrix + labeling scheme"
PAPER_CLAIM = (
    "There exist a matrix M and a labeling L (from a path decomposition) such that greedy "
    "routing in (G, (M, L)) performs in O(min{ps(G) * log^2 n, sqrt(n)}) expected steps (Theorem 2)."
)


def _families() -> Dict[str, GraphFactory]:
    return {
        "path": lambda n, seed: generators.path_graph(n),
        "caterpillar": lambda n, seed: generators.caterpillar_graph(max(2, n // 2), 1),
        "spider": lambda n, seed: generators.spider_graph(4, max(1, (n - 1) // 4)),
        "torus2d": lambda n, seed: generators.torus_graph(
            [max(3, int(round(n ** 0.5)))] * 2
        ),
    }


#: families whose pathshape is polylogarithmic (the polylog branch of the bound).
SMALL_PATHSHAPE = ("path", "caterpillar", "spider")
#: control family with pathshape Θ(√n) (the √n branch of the bound).
LARGE_PATHSHAPE = ("torus2d",)


def cell_keys(config: ExperimentConfig) -> List[Tuple[str, int]]:
    """One cell per (family, n)."""
    return [(family, n) for family in _families() for n in config.effective_sizes()]


def run_cell(
    config: ExperimentConfig,
    family: str,
    n: int,
    *,
    oracle_factory: Optional[OracleFactory] = None,
    store: Optional[GraphStore] = None,
) -> CellPayload:
    """Route the three scheme variants on one shared (family, n) instance.

    The path decomposition depends only on the graph, so it is memoised as an
    instance *extra* on the sweep-wide *store*: both Theorem-2 variants — and
    any later experiment over the same instance — reuse one estimate.
    """
    cell_seed = derive_cell_seed(config.seed, EXPERIMENT_ID, family, n)
    instance_seed = derive_instance_seed(config.seed, family, n)
    entry = ensure_store(store, oracle_factory).instance(
        family, n, instance_seed, _families()[family]
    )
    graph, oracle = entry.graph, entry.oracle
    decomposition = entry.extra(
        "pathshape_decomposition", lambda: estimate_pathshape(graph).decomposition
    )
    schemes = [
        (f"theorem2/{family}", Theorem2Scheme(graph, decomposition, seed=cell_seed)),
        (
            f"ancestor_only/{family}",
            Theorem2Scheme(graph, decomposition, uniform_mixture=0.0, seed=cell_seed),
        ),
        (f"uniform/{family}", UniformScheme(graph, seed=cell_seed)),
    ]
    series = {
        name: route_point(
            graph, scheme, config, seed=cell_seed, oracle=oracle, pair_seed=instance_seed
        )
        for name, scheme in schemes
    }
    return cell_payload(entry, cell_seed, series)


def assemble(
    config: ExperimentConfig, cells: Dict[Tuple[str, int], CellPayload]
) -> ExperimentResult:
    """Fold cell payloads into the structured result (pure, artifact-friendly)."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        parameters={"config": config},
    )
    for family in _families():
        result.add_series(collect_series(cells, family, f"theorem2/{family}", config))
        result.add_series(collect_series(cells, family, f"ancestor_only/{family}", config))
        result.add_series(collect_series(cells, family, f"uniform/{family}", config))

    # Check 1: the full (M, L) scheme stays within a small factor of uniform everywhere.
    worst_ratio = 0.0
    for family in _families():
        t2 = result.get_series(f"theorem2/{family}")
        uni = result.get_series(f"uniform/{family}")
        for v_t2, v_uni in zip(t2.values, uni.values):
            if v_uni > 0:
                worst_ratio = max(worst_ratio, v_t2 / v_uni)
    # Check 2: the ancestor component beats the sqrt(n) exponent on small-pathshape families.
    gaps = []
    for family in SMALL_PATHSHAPE:
        anc = result.get_series(f"ancestor_only/{family}").power_law()
        uni = result.get_series(f"uniform/{family}").power_law()
        if anc and uni:
            gaps.append((family, uni.exponent - anc.exponent))
    gap_text = ", ".join(f"{fam}: {gap:+.3f}" for fam, gap in gaps)
    result.conclusion = (
        f"(M,L) vs uniform worst-case ratio {worst_ratio:.2f} (the U component preserves the "
        f"sqrt(n) fallback within a small factor); exponent gap (uniform - ancestor-only) on "
        f"small-pathshape families: {gap_text} (the A component captures the ps(G)*log^2 n branch)."
    )
    return result


def run(
    config: ExperimentConfig | None = None, *, oracle_factory: Optional[OracleFactory] = None
) -> ExperimentResult:
    """Run the sweep and return the structured result."""
    return run_experiment(sys.modules[__name__], config, oracle_factory=oracle_factory)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig.full()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
