"""Experiment configuration shared by every experiment module."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling the size / statistical effort of an experiment.

    Attributes
    ----------
    sizes:
        Graph sizes ``n`` to sweep.
    num_pairs:
        Source/target pairs per (graph, scheme) point.
    trials:
        Long-link resamplings per pair.
    seed:
        Master seed; everything downstream is derived from it.
    pair_strategy:
        ``"extremal"`` (greedy-diameter biased) or ``"uniform"``.
    max_size:
        Optional cap applied to ``sizes`` (used by the quick benchmark runs).
    engine:
        Routing engine driving the Monte-Carlo trials: ``"lane"`` (default,
        the vectorized step-synchronous engine) or ``"scalar"`` (the
        per-route reference loop).  Part of the artifact fingerprint: the two
        engines are statistically equivalent but draw different random
        streams, so their cells must not be mixed silently on ``--resume``.
    distance_mode:
        Distance provider every instance oracle uses: ``"exact"`` (default;
        plain BFS oracle) or ``"landmark"`` (pivot sketch for bulk queries,
        exact BFS for routing blocks).  Part of the fingerprint because the
        sketch changes sampled pairs and ball profiles — landmark cells must
        never be resumed into an exact artifact (or vice versa).
    landmarks:
        Pivot count for ``distance_mode="landmark"``; fingerprinted for the
        same reason (ignored in exact mode but kept stable so exact
        fingerprints round-trip unchanged).
    """

    sizes: List[int] = field(default_factory=lambda: [256, 512, 1024, 2048, 4096])
    num_pairs: int = 8
    trials: int = 12
    seed: int = 20070610  # SPAA 2007 submission vintage
    pair_strategy: str = "extremal"
    max_size: Optional[int] = None
    engine: str = "lane"
    distance_mode: str = "exact"
    landmarks: int = 16

    def effective_sizes(self) -> List[int]:
        """Sizes after applying ``max_size``."""
        if self.max_size is None:
            return list(self.sizes)
        return [n for n in self.sizes if n <= self.max_size] or [min(self.sizes)]

    def scaled(self, **changes) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def fingerprint(self) -> Dict[str, object]:
        """JSON-safe dict identifying this configuration.

        Stored inside every persisted sweep artifact and compared on
        ``--resume``: an artifact computed under a different fingerprint is
        recomputed rather than silently mixed into the report.  The dict
        round-trips through ``ExperimentConfig(**fingerprint)``.
        """
        return asdict(self)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Small configuration used by the pytest benchmarks (seconds, not minutes)."""
        return cls(sizes=[128, 256, 512], num_pairs=4, trials=6)

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Full configuration used to produce the numbers in EXPERIMENTS.md."""
        return cls(sizes=[256, 512, 1024, 2048, 4096], num_pairs=8, trials=12)
