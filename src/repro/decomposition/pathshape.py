"""Pathshape estimation.

``ps(G)`` (Definition 2) is the minimum, over all path decompositions of
``G``, of the maximum bag shape.  Computing it exactly is NP-hard (it
generalises pathwidth), but Theorem 2 only ever *uses* a concrete path
decomposition: the guarantee ``O(min{ps(G)·log² n, √n})`` holds with ``ps(G)``
replaced by the shape of whatever decomposition the labeling was built from.

:func:`estimate_pathshape` therefore tries a portfolio of constructions —
exact ones when the graph belongs to a recognised class (path, caterpillar,
tree), heuristic elimination-order + centroid-conversion otherwise — and
returns the best witnessed shape together with the winning decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decomposition.bags import DistanceOracle
from repro.decomposition.elimination import (
    min_degree_ordering,
    min_fill_ordering,
    tree_decomposition_from_ordering,
)
from repro.decomposition.exact import (
    is_caterpillar,
    is_cycle_graph,
    is_path_graph,
    is_tree,
    path_decomposition_of_caterpillar,
    path_decomposition_of_cycle,
    path_decomposition_of_path,
    path_decomposition_of_tree,
)
from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.tree_to_path import tree_decomposition_to_path
from repro.graphs.graph import Graph

__all__ = ["PathshapeEstimate", "estimate_pathshape"]


@dataclass(frozen=True)
class PathshapeEstimate:
    """Result of :func:`estimate_pathshape`.

    Attributes
    ----------
    shape:
        The best (smallest) witnessed maximum bag shape — an upper bound on
        the true ``ps(G)``.
    width:
        Width of the winning decomposition (upper bound on pathwidth).
    decomposition:
        The winning path decomposition.
    strategy:
        Name of the construction that produced it.
    candidates:
        Shape witnessed by every strategy that was tried (for reporting).
    """

    shape: int
    width: int
    decomposition: PathDecomposition
    strategy: str
    candidates: Dict[str, int]


def _candidate_decompositions(
    graph: Graph, strategies: Sequence[str]
) -> List[Tuple[str, PathDecomposition]]:
    out: List[Tuple[str, PathDecomposition]] = []
    for strategy in strategies:
        try:
            if strategy == "path" and is_path_graph(graph):
                out.append((strategy, path_decomposition_of_path(graph)))
            elif strategy == "cycle" and is_cycle_graph(graph):
                out.append((strategy, path_decomposition_of_cycle(graph)))
            elif strategy == "caterpillar" and is_caterpillar(graph):
                out.append((strategy, path_decomposition_of_caterpillar(graph)))
            elif strategy == "tree" and is_tree(graph):
                out.append((strategy, path_decomposition_of_tree(graph)))
            elif strategy == "min_degree":
                td = tree_decomposition_from_ordering(graph, min_degree_ordering(graph))
                out.append((strategy, tree_decomposition_to_path(td)))
            elif strategy == "min_fill":
                td = tree_decomposition_from_ordering(graph, min_fill_ordering(graph))
                out.append((strategy, tree_decomposition_to_path(td)))
            elif strategy == "trivial":
                out.append((strategy, PathDecomposition.trivial(graph)))
        except ValueError:
            continue
    return out


def estimate_pathshape(
    graph: Graph,
    *,
    strategies: Optional[Sequence[str]] = None,
    compute_length: bool = False,
    external: Optional[Dict[str, PathDecomposition]] = None,
) -> PathshapeEstimate:
    """Upper-bound the pathshape of *graph* with a portfolio of constructions.

    Parameters
    ----------
    graph:
        Connected graph to decompose.
    strategies:
        Which constructions to try; defaults to every applicable one except
        the expensive ``"min_fill"`` for graphs above 2000 nodes.
    compute_length:
        When true, per-bag *length* is evaluated (one memoised BFS per
        distinct bag member), so the reported shape uses the full
        ``min(width, length)`` definition.  When false (default) only widths
        are used, which still upper-bounds the shape.
    external:
        Extra named decompositions to include in the portfolio (e.g. the
        exact clique-path decomposition of an interval graph built from its
        interval model).

    Returns
    -------
    PathshapeEstimate
    """
    if graph.num_nodes == 0:
        raise ValueError("cannot estimate the pathshape of the empty graph")
    if strategies is None:
        strategies = ["path", "cycle", "caterpillar", "tree", "min_degree"]
        if graph.num_nodes <= 2000:
            strategies.append("min_fill")
    candidates = _candidate_decompositions(graph, strategies)
    if external:
        candidates.extend((name, pd) for name, pd in external.items())
    if not candidates:
        candidates = [("trivial", PathDecomposition.trivial(graph))]
    oracle = DistanceOracle(graph) if compute_length else None
    scored: Dict[str, int] = {}
    best: Optional[Tuple[int, int, str, PathDecomposition]] = None
    for name, pd in candidates:
        shape = pd.shape(graph, oracle=oracle, width_only=not compute_length)
        width = pd.width()
        scored[name] = shape
        key = (shape, width)
        if best is None or key < (best[0], best[1]):
            best = (shape, width, name, pd)
    assert best is not None
    shape, width, name, pd = best
    return PathshapeEstimate(
        shape=max(shape, 1),
        width=width,
        decomposition=pd,
        strategy=name,
        candidates=scored,
    )
