"""Tree and path decompositions, the *shape* measure, and pathshape.

Section 2.2 of the paper introduces the **shape** of a bag of a tree
decomposition as ``min(width, length)`` — a tradeoff between the classic
treewidth measure (bag cardinality minus one) and treelength (maximum
in-graph distance between bag members) — and defines the **pathshape**
``ps(G)`` as the minimum over path decompositions of the maximum bag shape.
Theorem 2's (M, L) scheme routes in ``O(min{ps(G)·log² n, √n})`` steps, so
this package provides:

* decomposition data structures with full validity checking
  (:class:`TreeDecomposition`, :class:`PathDecomposition`),
* exact constructions for the graph classes the paper names (paths,
  caterpillars, trees, interval graphs),
* heuristic constructions for arbitrary graphs (elimination orderings and the
  centroid tree→path conversion with an ``O(log n)`` width blow-up),
* pathshape estimation (:func:`estimate_pathshape`), and
* the node labeling ``L`` used by Theorem 2 (:func:`theorem2_labeling`).
"""

from repro.decomposition.bags import bag_width, bag_length, bag_shape
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.elimination import (
    min_degree_ordering,
    min_fill_ordering,
    tree_decomposition_from_ordering,
)
from repro.decomposition.tree_to_path import tree_decomposition_to_path
from repro.decomposition.exact import (
    path_decomposition_of_path,
    path_decomposition_of_cycle,
    path_decomposition_of_caterpillar,
    path_decomposition_of_tree,
    path_decomposition_of_interval_graph,
)
from repro.decomposition.pathshape import estimate_pathshape, PathshapeEstimate
from repro.decomposition.labeling import theorem2_labeling, integer_level, integer_ancestors

__all__ = [
    "bag_width",
    "bag_length",
    "bag_shape",
    "TreeDecomposition",
    "PathDecomposition",
    "min_degree_ordering",
    "min_fill_ordering",
    "tree_decomposition_from_ordering",
    "tree_decomposition_to_path",
    "path_decomposition_of_path",
    "path_decomposition_of_cycle",
    "path_decomposition_of_caterpillar",
    "path_decomposition_of_tree",
    "path_decomposition_of_interval_graph",
    "estimate_pathshape",
    "PathshapeEstimate",
    "theorem2_labeling",
    "integer_level",
    "integer_ancestors",
]
