"""Bag measures: width, length and shape (Definition 2 of the paper).

* ``width(X) = |X| - 1`` — the treewidth measure of Robertson & Seymour,
* ``length(X) = max_{x,y in X} dist_G(x, y)`` — the treelength measure of
  Dourisboure & Gavoille,
* ``shape(X) = min(width(X), length(X))`` — the new measure the paper builds
  the (M, L) scheme on.

Length needs graph distances; to avoid recomputing BFS for overlapping bags
the decomposition code shares the repo-wide
:class:`repro.graphs.provider.DistanceProvider` (the concrete
:class:`repro.graphs.oracle.DistanceOracle` is re-exported here for backwards
compatibility — this module used to define its own local cache before the
oracle became a shared subsystem backed by the vectorized frontier engine).
``length`` is a *max* over exact pairwise distances — an admissible
over-estimate would inflate it — so the measures stay on the exact tier
(:meth:`~repro.graphs.provider.DistanceProvider.distances_from`) regardless
of the provider's mode.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.graphs.distances import UNREACHABLE
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import DistanceProvider

__all__ = ["DistanceOracle", "DistanceProvider", "bag_width", "bag_length", "bag_shape"]


def bag_width(bag: Iterable[int]) -> int:
    """``width(X) = |X| - 1`` (the empty bag has width -1 by convention)."""
    return len(frozenset(int(v) for v in bag)) - 1


def bag_length(bag: Iterable[int], oracle: DistanceProvider) -> int:
    """``length(X) = max_{x,y in X} dist_G(x, y)``.

    Unreachable pairs (the bag straddles two components, which a valid
    decomposition of a connected graph never produces) count as infinite and
    raise ``ValueError``.
    """
    members = sorted(frozenset(int(v) for v in bag))
    if len(members) <= 1:
        return 0
    best = 0
    for i, u in enumerate(members):
        dist = oracle.distances_from(u)
        for v in members[i + 1:]:
            d = int(dist[v])
            if d == UNREACHABLE:
                raise ValueError(f"nodes {u} and {v} are disconnected; bag length undefined")
            if d > best:
                best = d
    return best


def bag_shape(
    bag: Iterable[int],
    oracle: Optional[DistanceProvider] = None,
    *,
    width_only: bool = False,
) -> int:
    """``shape(X) = min(width(X), length(X))`` (Definition 2).

    When *width_only* is true (or no oracle is supplied) only the width term
    is used; since ``shape <= width`` this still yields a valid *upper bound*,
    which is all that Theorem 2's guarantee consumes.
    """
    members: FrozenSet[int] = frozenset(int(v) for v in bag)
    width = len(members) - 1
    if width_only or oracle is None or width <= 1:
        # width <= 1 means the bag is an edge or a single node, whose length
        # equals its width already.
        return width
    length = bag_length(members, oracle)
    return min(width, length)
