"""Bag measures: width, length and shape (Definition 2 of the paper).

* ``width(X) = |X| - 1`` — the treewidth measure of Robertson & Seymour,
* ``length(X) = max_{x,y in X} dist_G(x, y)`` — the treelength measure of
  Dourisboure & Gavoille,
* ``shape(X) = min(width(X), length(X))`` — the new measure the paper builds
  the (M, L) scheme on.

Length needs graph distances; to avoid recomputing BFS for overlapping bags,
:class:`DistanceOracle` memoises single-source BFS runs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

import numpy as np

from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.graph import Graph

__all__ = ["DistanceOracle", "bag_width", "bag_length", "bag_shape"]


class DistanceOracle:
    """Memoised single-source BFS oracle.

    ``oracle(u, v)`` returns ``dist_G(u, v)``; each distinct source costs one
    BFS, cached for the lifetime of the oracle.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._cache: Dict[int, np.ndarray] = {}

    @property
    def graph(self) -> Graph:
        return self._graph

    def distances_from(self, u: int) -> np.ndarray:
        """Full distance array from *u* (cached)."""
        arr = self._cache.get(u)
        if arr is None:
            arr = bfs_distances(self._graph, u)
            self._cache[u] = arr
        return arr

    def __call__(self, u: int, v: int) -> int:
        return int(self.distances_from(int(u))[int(v)])

    def cache_size(self) -> int:
        """Number of BFS runs performed so far."""
        return len(self._cache)


def bag_width(bag: Iterable[int]) -> int:
    """``width(X) = |X| - 1`` (the empty bag has width -1 by convention)."""
    return len(frozenset(int(v) for v in bag)) - 1


def bag_length(bag: Iterable[int], oracle: DistanceOracle) -> int:
    """``length(X) = max_{x,y in X} dist_G(x, y)``.

    Unreachable pairs (the bag straddles two components, which a valid
    decomposition of a connected graph never produces) count as infinite and
    raise ``ValueError``.
    """
    members = sorted(frozenset(int(v) for v in bag))
    if len(members) <= 1:
        return 0
    best = 0
    for i, u in enumerate(members):
        dist = oracle.distances_from(u)
        for v in members[i + 1:]:
            d = int(dist[v])
            if d == UNREACHABLE:
                raise ValueError(f"nodes {u} and {v} are disconnected; bag length undefined")
            if d > best:
                best = d
    return best


def bag_shape(
    bag: Iterable[int],
    oracle: Optional[DistanceOracle] = None,
    *,
    width_only: bool = False,
) -> int:
    """``shape(X) = min(width(X), length(X))`` (Definition 2).

    When *width_only* is true (or no oracle is supplied) only the width term
    is used; since ``shape <= width`` this still yields a valid *upper bound*,
    which is all that Theorem 2's guarantee consumes.
    """
    members: FrozenSet[int] = frozenset(int(v) for v in bag)
    width = len(members) - 1
    if width_only or oracle is None or width <= 1:
        # width <= 1 means the bag is an edge or a single node, whose length
        # equals its width already.
        return width
    length = bag_length(members, oracle)
    return min(width, length)
