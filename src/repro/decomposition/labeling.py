"""The integer level / ancestor hierarchy and the Theorem-2 node labeling ``L``.

Theorem 2 structures the labels ``1 … n`` as an infinite binary hierarchy:

* the **level** of an integer ``x ≥ 1`` is the position of its least
  significant set bit (odd integers have level 0),
* writing ``x = 2^k + Σ_{i ≥ k+1} x_i 2^i`` with ``k = level(x)``, the
  **ancestor** ``y(j)`` of ``x`` at level ``k + j`` is
  ``y(j) = 2^{k+j} + Σ_{i ≥ k+j+1} x_i 2^i`` (clear the ``j`` bits above the
  level bit, then set bit ``k + j``).  ``y(0) = x`` itself.

Given a reduced path decomposition with bags indexed ``1 … b`` along the path,
each node ``u`` appears in a consecutive interval ``I_u`` of bags; its label
``L(u)`` is the unique index in ``I_u`` of maximum level.  Uniqueness follows
from the dyadic structure: two indices of equal level ``k`` always have an
index of strictly larger level between them.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.decomposition.path_decomposition import PathDecomposition
from repro.utils.validation import check_positive_int

__all__ = [
    "integer_level",
    "integer_ancestors",
    "is_ancestor",
    "max_level_in_range",
    "theorem2_labeling",
]


def integer_level(x: int) -> int:
    """Level of ``x ≥ 1``: the index of its least significant set bit."""
    x = check_positive_int(x, "x")
    return (x & -x).bit_length() - 1


def integer_ancestors(x: int, *, max_value: int) -> List[int]:
    """All ancestors of ``x`` (including ``x`` itself) that lie in ``[1, max_value]``.

    The ancestor at level ``k + j`` is obtained by clearing bits
    ``k … k+j-1`` of ``x`` and setting bit ``k + j``.  Ancestors are produced
    for every ``j ≥ 0`` whose level does not exceed the level of the largest
    power of two ``≤ max_value`` plus one, then filtered to ``[1, max_value]``.
    """
    x = check_positive_int(x, "x")
    max_value = check_positive_int(max_value, "max_value")
    k = integer_level(x)
    nu = max_value.bit_length()  # 2^(nu-1) <= max_value < 2^nu
    out: List[int] = []
    for j in range(0, nu - k + 1):
        level_bit = 1 << (k + j)
        high = (x >> (k + j + 1)) << (k + j + 1)
        y = high | level_bit
        if 1 <= y <= max_value:
            out.append(y)
    return out


def is_ancestor(ancestor: int, x: int) -> bool:
    """Whether *ancestor* is an ancestor of *x* (both ≥ 1)."""
    return ancestor in integer_ancestors(x, max_value=max(ancestor, x))


def max_level_in_range(lo: int, hi: int) -> int:
    """The unique index of maximum level in the integer interval ``[lo, hi]`` (1-based bounds).

    This is the index whose least significant set bit is highest; it is unique
    because two distinct integers with the same level ``k`` differ in a bit
    above ``k``, forcing an integer of level ``> k`` strictly between them.
    """
    lo = check_positive_int(lo, "lo")
    hi = check_positive_int(hi, "hi")
    if hi < lo:
        raise ValueError("hi must be >= lo")
    best = lo
    best_level = integer_level(lo)
    # Walk upwards: repeatedly clear the lowest set bit of (candidate) while
    # staying within range.  Equivalent to finding the highest power of two
    # dividing some integer in [lo, hi].
    for level in range(hi.bit_length(), -1, -1):
        step = 1 << level
        candidate = ((lo + step - 1) // step) * step
        if lo <= candidate <= hi and candidate >= 1:
            return candidate
    return best if best_level >= 0 else lo  # pragma: no cover - unreachable


def theorem2_labeling(
    decomposition: PathDecomposition,
    num_nodes: int,
) -> np.ndarray:
    """Node labeling ``L`` of Theorem 2.

    Parameters
    ----------
    decomposition:
        A (preferably reduced) path decomposition of the graph; its bags are
        implicitly labeled ``1 … b`` in path order.
    num_nodes:
        Number of nodes ``n`` of the graph; the paper requires ``b ≤ n`` so
        that labels fit in ``{1, …, n}``.

    Returns
    -------
    numpy.ndarray
        Array of length *num_nodes*; entry ``u`` is the 1-based label
        ``L(u) ∈ {1, …, b}`` — the index of maximum level within the interval
        of bags containing ``u``.  Several nodes may share a label when
        ``b < n``.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    b = decomposition.num_bags
    if b == 0:
        raise ValueError("decomposition has no bags")
    if b > num_nodes:
        raise ValueError(
            f"decomposition has {b} bags > n = {num_nodes}; reduce it first "
            "(the paper restricts to reduced path decompositions)"
        )
    intervals = decomposition.node_intervals()
    missing = set(range(num_nodes)) - set(intervals)
    if missing:
        raise ValueError(f"decomposition does not cover nodes {sorted(missing)[:10]}")
    labels = np.zeros(num_nodes, dtype=np.int64)
    for u, (lo, hi) in intervals.items():
        if 0 <= u < num_nodes:
            # Convert to 1-based bag indices as in the paper.
            labels[u] = max_level_in_range(lo + 1, hi + 1)
    return labels


def label_groups(labels: np.ndarray) -> Dict[int, np.ndarray]:
    """Group node indices by label: ``{label: sorted array of nodes}``."""
    groups: Dict[int, List[int]] = {}
    for node, label in enumerate(np.asarray(labels, dtype=np.int64)):
        groups.setdefault(int(label), []).append(node)
    return {label: np.array(nodes, dtype=np.int64) for label, nodes in groups.items()}
