"""Tree decompositions with full validity checking.

A tree decomposition of ``G`` is a pair ``(T, X)`` where ``T`` is a tree on
bag indices and ``X = {X_i}`` assigns a set of graph nodes to each bag such
that (1) every node appears in some bag, (2) every edge is contained in some
bag and (3) for every node the bags containing it induce a subtree of ``T``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.decomposition.bags import DistanceOracle, bag_length, bag_shape, bag_width
from repro.graphs.graph import Graph

__all__ = ["TreeDecomposition"]


class TreeDecomposition:
    """A tree decomposition ``(T, X)``.

    Parameters
    ----------
    bags:
        Sequence of node sets (any iterable of ints per bag).
    tree_edges:
        Edges between bag indices forming a tree (may be empty when there is
        a single bag).
    """

    def __init__(
        self,
        bags: Sequence[Iterable[int]],
        tree_edges: Sequence[Tuple[int, int]],
    ) -> None:
        self._bags: List[FrozenSet[int]] = [frozenset(int(v) for v in bag) for bag in bags]
        self._edges: List[Tuple[int, int]] = [(int(a), int(b)) for a, b in tree_edges]
        b = len(self._bags)
        for (a, c) in self._edges:
            if not (0 <= a < b and 0 <= c < b):
                raise ValueError(f"tree edge ({a}, {c}) references a missing bag")
            if a == c:
                raise ValueError("tree edges must join distinct bags")
        if b > 0 and len(self._edges) != b - 1:
            raise ValueError(f"a tree on {b} bags needs exactly {b - 1} edges, got {len(self._edges)}")
        if b > 0 and not self._tree_is_connected():
            raise ValueError("tree edges do not form a connected tree over the bags")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def bags(self) -> List[FrozenSet[int]]:
        """List of bags (frozensets of graph nodes)."""
        return list(self._bags)

    @property
    def tree_edges(self) -> List[Tuple[int, int]]:
        """Edges of the decomposition tree over bag indices."""
        return list(self._edges)

    @property
    def num_bags(self) -> int:
        return len(self._bags)

    def bag(self, i: int) -> FrozenSet[int]:
        return self._bags[i]

    def neighbors(self, i: int) -> List[int]:
        """Bag indices adjacent to bag *i* in the decomposition tree."""
        out = []
        for a, b in self._edges:
            if a == i:
                out.append(b)
            elif b == i:
                out.append(a)
        return out

    def adjacency(self) -> List[List[int]]:
        """Adjacency lists of the decomposition tree."""
        adj: List[List[int]] = [[] for _ in range(self.num_bags)]
        for a, b in self._edges:
            adj[a].append(b)
            adj[b].append(a)
        return adj

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #

    def width(self) -> int:
        """Width of the decomposition: ``max_i |X_i| - 1``."""
        if not self._bags:
            return -1
        return max(bag_width(bag) for bag in self._bags)

    def length(self, graph: Graph, *, oracle: Optional[DistanceOracle] = None) -> int:
        """Length of the decomposition: maximum in-graph diameter of a bag."""
        if not self._bags:
            return 0
        oracle = oracle or DistanceOracle(graph)
        return max(bag_length(bag, oracle) for bag in self._bags)

    def shape(
        self,
        graph: Optional[Graph] = None,
        *,
        oracle: Optional[DistanceOracle] = None,
        width_only: bool = False,
    ) -> int:
        """Shape of the decomposition: ``max_i min(width(X_i), length(X_i))``.

        With ``width_only=True`` (or without a graph) the per-bag length term
        is skipped; the result is then an upper bound on the true shape.
        """
        if not self._bags:
            return -1
        if not width_only and oracle is None and graph is not None:
            oracle = DistanceOracle(graph)
        return max(bag_shape(bag, oracle, width_only=width_only) for bag in self._bags)

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #

    def is_valid_for(self, graph: Graph) -> bool:
        """Whether this is a valid tree decomposition of *graph*."""
        return not self.violations(graph)

    def violations(self, graph: Graph) -> List[str]:
        """Human-readable list of validity violations (empty when valid)."""
        problems: List[str] = []
        n = graph.num_nodes
        covered: Set[int] = set()
        for bag in self._bags:
            for v in bag:
                if v < 0 or v >= n:
                    problems.append(f"bag contains out-of-range node {v}")
                covered.add(v)
        missing = set(range(n)) - covered
        if missing:
            problems.append(f"nodes not covered by any bag: {sorted(missing)[:10]}")
        for (u, v) in graph.edges():
            if not any(u in bag and v in bag for bag in self._bags):
                problems.append(f"edge ({u}, {v}) not contained in any bag")
                break
        # Connectivity of the set of bags containing each node.
        adj = self.adjacency()
        for v in range(n):
            holding = [i for i, bag in enumerate(self._bags) if v in bag]
            if not holding:
                continue
            seen = {holding[0]}
            queue = deque([holding[0]])
            holding_set = set(holding)
            while queue:
                i = queue.popleft()
                for j in adj[i]:
                    if j in holding_set and j not in seen:
                        seen.add(j)
                        queue.append(j)
            if seen != holding_set:
                problems.append(f"bags containing node {v} do not induce a connected subtree")
        return problems

    # ------------------------------------------------------------------ #
    # Constructions
    # ------------------------------------------------------------------ #

    @classmethod
    def trivial(cls, graph: Graph) -> "TreeDecomposition":
        """The single-bag decomposition containing every node (width n-1)."""
        return cls([set(range(graph.num_nodes))], [])

    @classmethod
    def of_tree(cls, graph: Graph) -> "TreeDecomposition":
        """The natural width-1 decomposition of a tree: one bag per edge.

        Bags are arranged in a tree mirroring the input tree (bag of edge
        ``{u, v}`` attaches to the bag of the parent edge of ``u``).  Raises
        ``ValueError`` if *graph* is not a tree.
        """
        n = graph.num_nodes
        if n == 0:
            return cls([], [])
        if graph.num_edges != n - 1:
            raise ValueError("graph is not a tree (wrong edge count)")
        if n == 1:
            return cls([{0}], [])
        # Root the tree at 0 and create one bag per (parent, child) edge.
        parent = [-1] * n
        order: List[int] = []
        seen = [False] * n
        seen[0] = True
        queue = deque([0])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in graph.neighbors(u):
                v = int(v)
                if not seen[v]:
                    seen[v] = True
                    parent[v] = u
                    queue.append(v)
        if not all(seen):
            raise ValueError("graph is not a tree (disconnected)")
        bag_of_node: Dict[int, int] = {}
        bags: List[Set[int]] = []
        edges: List[Tuple[int, int]] = []
        for u in order[1:]:
            idx = len(bags)
            bags.append({u, parent[u]})
            bag_of_node[u] = idx
            p = parent[u]
            if p in bag_of_node:
                edges.append((bag_of_node[p], idx))
            elif p == 0 and idx > 0:
                # Children of the root attach to the first root bag.
                root_bag = bag_of_node.get(order[1], 0)
                if idx != root_bag:
                    edges.append((root_bag, idx))
            bag_of_node.setdefault(p, idx)
        return cls(bags, edges)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _tree_is_connected(self) -> bool:
        b = self.num_bags
        if b <= 1:
            return True
        adj = self.adjacency()
        seen = {0}
        queue = deque([0])
        while queue:
            i = queue.popleft()
            for j in adj[i]:
                if j not in seen:
                    seen.add(j)
                    queue.append(j)
        return len(seen) == b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeDecomposition(bags={self.num_bags}, width={self.width()})"
