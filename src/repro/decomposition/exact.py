"""Exact / near-exact path decompositions for the graph classes the paper names.

* **paths**: bags ``{i, i+1}`` — pathwidth 1, pathshape 1.
* **caterpillars**: spine bags augmented with their legs — pathshape 1 via the
  length term (each bag has diameter ≤ 2 but we keep legs in singleton-ish
  bags so the width stays ≤ 2).
* **trees**: the natural width-1 tree decomposition converted through the
  centroid construction — pathwidth (and hence pathshape) ``O(log n)``,
  exactly the bound Corollary 1 uses.
* **interval graphs**: bags are the maximal cliques in left-endpoint order —
  each bag is a clique, so its *length* is 1 and the pathshape witnessed is 1
  regardless of the clique sizes (the AT-free ``O(1)``-pathlength fact used by
  Corollary 1).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.tree_to_path import tree_decomposition_to_path
from repro.graphs.graph import Graph

__all__ = [
    "path_decomposition_of_path",
    "path_decomposition_of_cycle",
    "path_decomposition_of_caterpillar",
    "path_decomposition_of_tree",
    "path_decomposition_of_interval_graph",
    "is_path_graph",
    "is_cycle_graph",
    "is_tree",
    "is_caterpillar",
]


# --------------------------------------------------------------------------- #
# Recognition helpers
# --------------------------------------------------------------------------- #

def is_tree(graph: Graph) -> bool:
    """Whether *graph* is a tree (connected, ``m = n - 1``)."""
    n = graph.num_nodes
    if n == 0:
        return False
    if graph.num_edges != n - 1:
        return False
    from repro.graphs.components import is_connected

    return is_connected(graph)


def is_path_graph(graph: Graph) -> bool:
    """Whether *graph* is a simple path."""
    if not is_tree(graph):
        return False
    degrees = graph.degrees()
    return bool((degrees <= 2).all())


def is_cycle_graph(graph: Graph) -> bool:
    """Whether *graph* is a simple cycle (connected, 2-regular)."""
    n = graph.num_nodes
    if n < 3 or graph.num_edges != n:
        return False
    if not bool((graph.degrees() == 2).all()):
        return False
    from repro.graphs.components import is_connected

    return is_connected(graph)


def is_caterpillar(graph: Graph) -> bool:
    """Whether *graph* is a caterpillar (a tree whose non-leaf nodes form a path)."""
    if not is_tree(graph):
        return False
    n = graph.num_nodes
    if n <= 2:
        return True
    degrees = graph.degrees()
    internal = [v for v in range(n) if degrees[v] >= 2]
    if not internal:
        return True
    internal_set = set(internal)
    # Check the subgraph induced by internal nodes is a path: every internal
    # node has at most two internal neighbours, and at most two have exactly one.
    endpoint_count = 0
    for v in internal:
        internal_deg = sum(1 for u in graph.neighbors(v) if int(u) in internal_set)
        if internal_deg > 2:
            return False
        if internal_deg <= 1:
            endpoint_count += 1
    return endpoint_count <= 2


# --------------------------------------------------------------------------- #
# Constructions
# --------------------------------------------------------------------------- #

def path_decomposition_of_path(graph: Graph) -> PathDecomposition:
    """Width-1 decomposition of a path graph: one bag per edge, in path order."""
    if not is_path_graph(graph):
        raise ValueError("graph is not a path")
    n = graph.num_nodes
    if n == 1:
        return PathDecomposition([{0}])
    degrees = graph.degrees()
    endpoints = [v for v in range(n) if degrees[v] == 1]
    start = min(endpoints)
    order = [start]
    prev = -1
    current = start
    while len(order) < n:
        nxt = [int(v) for v in graph.neighbors(current) if int(v) != prev][0]
        order.append(nxt)
        prev, current = current, nxt
    bags = [{order[i], order[i + 1]} for i in range(n - 1)]
    return PathDecomposition(bags)


def path_decomposition_of_cycle(graph: Graph) -> PathDecomposition:
    """Width-2 decomposition of a cycle: traverse the cycle and pin one anchor node.

    Bags are ``{anchor, c_i, c_{i+1}}`` along the cycle order — the textbook
    witness that cycles have pathwidth 2 (and pathshape 2).
    """
    if not is_cycle_graph(graph):
        raise ValueError("graph is not a cycle")
    n = graph.num_nodes
    order = [0]
    prev = -1
    current = 0
    while len(order) < n:
        nxt = [int(v) for v in graph.neighbors(current) if int(v) != prev][0]
        order.append(nxt)
        prev, current = current, nxt
    anchor = order[0]
    bags = [{anchor, order[i], order[i + 1]} for i in range(1, n - 1)]
    return PathDecomposition(bags).reduced()


def path_decomposition_of_caterpillar(graph: Graph) -> PathDecomposition:
    """Width ≤ 2 decomposition of a caterpillar.

    The spine is traversed in order; each leg ``ℓ`` attached to spine node
    ``s`` contributes a bag ``{s, ℓ}`` inserted between the spine bags around
    ``s``.
    """
    if not is_caterpillar(graph):
        raise ValueError("graph is not a caterpillar")
    n = graph.num_nodes
    if n == 1:
        return PathDecomposition([{0}])
    degrees = graph.degrees()
    if n == 2:
        return PathDecomposition([{0, 1}])
    spine = [v for v in range(n) if degrees[v] >= 2]
    if not spine:
        # Two-node graphs handled above; a star has a single spine node.
        spine = [int(max(range(n), key=lambda v: degrees[v]))]
    spine_set = set(spine)
    # Order the spine as a path.
    spine_order: List[int]
    if len(spine) == 1:
        spine_order = spine
    else:
        ends = [v for v in spine if sum(1 for u in graph.neighbors(v) if int(u) in spine_set) <= 1]
        start = min(ends) if ends else spine[0]
        spine_order = [start]
        prev = -1
        current = start
        while True:
            nxt_candidates = [int(u) for u in graph.neighbors(current) if int(u) in spine_set and int(u) != prev]
            if not nxt_candidates:
                break
            nxt = nxt_candidates[0]
            spine_order.append(nxt)
            prev, current = current, nxt
            if len(spine_order) == len(spine):
                break
    bags: List[Set[int]] = []
    for idx, s in enumerate(spine_order):
        legs = [int(u) for u in graph.neighbors(s) if int(u) not in spine_set]
        for leg in sorted(legs):
            bags.append({s, leg})
        if idx + 1 < len(spine_order):
            bags.append({s, spine_order[idx + 1]})
    if not bags:
        bags = [set(range(n))]
    return PathDecomposition(bags).reduced()


def path_decomposition_of_tree(graph: Graph) -> PathDecomposition:
    """Path decomposition of a tree with width ``O(log n)``.

    Uses the natural width-1 tree decomposition of the tree followed by the
    centroid tree→path conversion, matching the "trees have pathwidth
    O(log n)" step of Corollary 1.
    """
    if not is_tree(graph):
        raise ValueError("graph is not a tree")
    if graph.num_nodes == 1:
        return PathDecomposition([{0}])
    td = TreeDecomposition.of_tree(graph)
    return tree_decomposition_to_path(td)


def path_decomposition_of_interval_graph(
    intervals: Sequence[Tuple[float, float]],
) -> PathDecomposition:
    """Path decomposition of the interval graph with the given *intervals*.

    Sweeping the line left to right and taking, at every interval start, the
    bag of all intervals alive at that point yields a path decomposition whose
    bags are cliques — hence pathlength (and pathshape) 1, the property
    Corollary 1 relies on for AT-free graphs.

    The bags use interval indices (matching the node ids produced by
    :func:`repro.graphs.generators.interval_graph`).
    """
    n = len(intervals)
    if n == 0:
        raise ValueError("need at least one interval")
    ivs = [(float(a), float(b)) for a, b in intervals]
    for a, b in ivs:
        if b < a:
            raise ValueError("interval endpoints must satisfy left <= right")
    import heapq

    order = sorted(range(n), key=lambda i: (ivs[i][0], ivs[i][1]))
    bags: List[Set[int]] = []
    alive_heap: List[Tuple[float, int]] = []  # (right endpoint, index)
    alive: Set[int] = set()
    for i in order:
        a, b = ivs[i]
        # Retire intervals whose right endpoint lies strictly before this start.
        while alive_heap and alive_heap[0][0] < a:
            _, j = heapq.heappop(alive_heap)
            alive.discard(j)
        heapq.heappush(alive_heap, (b, i))
        alive.add(i)
        bags.append(set(alive))
    return PathDecomposition(bags).reduced()
