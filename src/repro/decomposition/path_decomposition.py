"""Path decompositions (tree decompositions whose tree is a path).

The (M, L) scheme of Theorem 2 consumes a path decomposition: its bags are
labeled consecutively ``1 … b`` along the path and the node labeling ``L`` is
derived from the interval of bags containing each node.  The class therefore
also exposes :meth:`node_intervals` (the interval ``I_u`` of bag indices
containing node ``u``) and :meth:`reduced` (no bag contained in another),
which the paper uses to guarantee ``b ≤ n``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.decomposition.bags import DistanceOracle, bag_length, bag_shape, bag_width
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graphs.graph import Graph

__all__ = ["PathDecomposition"]


class PathDecomposition:
    """An ordered sequence of bags forming a path decomposition.

    Parameters
    ----------
    bags:
        Bags in path order (bag ``i`` is adjacent to bags ``i ± 1``).
    """

    def __init__(self, bags: Sequence[Iterable[int]]) -> None:
        self._bags: List[FrozenSet[int]] = [frozenset(int(v) for v in bag) for bag in bags]
        if any(len(bag) == 0 for bag in self._bags):
            raise ValueError("bags must be non-empty")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def bags(self) -> List[FrozenSet[int]]:
        """Bags in path order."""
        return list(self._bags)

    @property
    def num_bags(self) -> int:
        return len(self._bags)

    def bag(self, i: int) -> FrozenSet[int]:
        return self._bags[i]

    def __len__(self) -> int:
        return len(self._bags)

    def __iter__(self):
        return iter(self._bags)

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #

    def width(self) -> int:
        """``max_i |X_i| - 1`` (pathwidth witnessed by this decomposition)."""
        if not self._bags:
            return -1
        return max(bag_width(bag) for bag in self._bags)

    def length(self, graph: Graph, *, oracle: Optional[DistanceOracle] = None) -> int:
        """``max_i length(X_i)`` (pathlength witnessed by this decomposition)."""
        if not self._bags:
            return 0
        oracle = oracle or DistanceOracle(graph)
        return max(bag_length(bag, oracle) for bag in self._bags)

    def shape(
        self,
        graph: Optional[Graph] = None,
        *,
        oracle: Optional[DistanceOracle] = None,
        width_only: bool = False,
    ) -> int:
        """``max_i shape(X_i)`` — the pathshape witnessed by this decomposition.

        Definition 2 of the paper; with ``width_only=True`` the per-bag length
        term is skipped and the result is an upper bound.
        """
        if not self._bags:
            return -1
        if not width_only and oracle is None and graph is not None:
            oracle = DistanceOracle(graph)
        return max(bag_shape(bag, oracle, width_only=width_only) for bag in self._bags)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def node_intervals(self) -> Dict[int, Tuple[int, int]]:
        """For each node ``u``, the interval ``I_u = [first, last]`` of bag indices (0-based) containing it.

        Raises ``ValueError`` if some node's bags are not consecutive (i.e.
        the sequence is not a valid path decomposition of any graph).
        """
        first: Dict[int, int] = {}
        last: Dict[int, int] = {}
        for i, bag in enumerate(self._bags):
            for v in bag:
                first.setdefault(v, i)
                last[v] = i
        intervals: Dict[int, Tuple[int, int]] = {}
        for v, lo in first.items():
            hi = last[v]
            count = sum(1 for i in range(lo, hi + 1) if v in self._bags[i])
            if count != hi - lo + 1:
                raise ValueError(f"node {v} appears in non-consecutive bags")
            intervals[v] = (lo, hi)
        return intervals

    def reduced(self) -> "PathDecomposition":
        """Remove bags contained in an adjacent bag, repeatedly.

        The paper restricts attention to *reduced* path decompositions, whose
        number of bags is at most ``max(1, n - 1)``; reducing never increases
        the shape because ``Y ⊆ Y'`` implies ``shape(Y) ≤ shape(Y')``.
        """
        # Single left-to-right pass with a stack: whenever the incoming bag
        # contains (or is contained in) its current neighbour, one of the two
        # is dropped.  This is equivalent to repeatedly removing a bag
        # contained in an adjacent bag.
        out: List[FrozenSet[int]] = []
        for bag in self._bags:
            while out and out[-1] <= bag:
                out.pop()
            if out and bag <= out[-1]:
                continue
            out.append(bag)
        if not out:
            out = [self._bags[0]] if self._bags else []
        return PathDecomposition(out)

    def to_tree_decomposition(self) -> TreeDecomposition:
        """View this path decomposition as a tree decomposition."""
        edges = [(i, i + 1) for i in range(len(self._bags) - 1)]
        return TreeDecomposition(self._bags, edges)

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #

    def is_valid_for(self, graph: Graph) -> bool:
        """Whether this is a valid path decomposition of *graph*."""
        return not self.violations(graph)

    def violations(self, graph: Graph) -> List[str]:
        """Human-readable list of validity violations (empty when valid)."""
        problems: List[str] = []
        n = graph.num_nodes
        covered: Set[int] = set()
        for bag in self._bags:
            for v in bag:
                if v < 0 or v >= n:
                    problems.append(f"bag contains out-of-range node {v}")
                covered.add(v)
        missing = set(range(n)) - covered
        if missing:
            problems.append(f"nodes not covered by any bag: {sorted(missing)[:10]}")
        for (u, v) in graph.edges():
            if not any(u in bag and v in bag for bag in self._bags):
                problems.append(f"edge ({u}, {v}) not contained in any bag")
                break
        try:
            self.node_intervals()
        except ValueError as exc:
            problems.append(str(exc))
        return problems

    # ------------------------------------------------------------------ #
    # Constructions
    # ------------------------------------------------------------------ #

    @classmethod
    def trivial(cls, graph: Graph) -> "PathDecomposition":
        """Single bag containing every node (width n-1, length diam(G))."""
        if graph.num_nodes == 0:
            raise ValueError("cannot decompose the empty graph")
        return cls([set(range(graph.num_nodes))])

    @classmethod
    def from_bag_sequence(cls, bags: Sequence[Iterable[int]]) -> "PathDecomposition":
        """Alias constructor mirroring :class:`TreeDecomposition`'s interface."""
        return cls(bags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PathDecomposition(bags={self.num_bags}, width={self.width()})"
