"""Centroid conversion of a tree decomposition into a path decomposition.

The paper's Theorem 2 applies to *path* decompositions.  For graph classes
where only a good *tree* decomposition is available (trees themselves,
bounded-treewidth graphs, elimination-order heuristics), the classic
conversion gives a path decomposition whose width grows by a factor
``O(log b)`` where ``b`` is the number of bags:

1. find a centroid bag ``c`` of the decomposition tree (removing it leaves
   components of at most half the bags),
2. recursively convert each component,
3. concatenate the component path decompositions in any order and add
   ``X_c`` to *every* bag.

Correctness: a node outside ``X_c`` appears only in bags of a single
component (otherwise the subtree of bags containing it would pass through
``c``), so its occurrence stays consecutive; nodes of ``X_c`` appear
everywhere; every edge was covered by some original bag, which survives as a
subset of some produced bag.  The recursion depth is ``O(log b)`` and each
level adds at most ``width + 1`` nodes to a bag, giving
``pathwidth ≤ (treewidth + 1) · (log₂ b + 1) - 1`` — this is how Corollary 1
turns "trees have treewidth 1" into "trees have pathshape O(log n)".
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, List, Sequence, Set

from repro.decomposition.path_decomposition import PathDecomposition
from repro.decomposition.tree_decomposition import TreeDecomposition

__all__ = ["tree_decomposition_to_path"]


def tree_decomposition_to_path(td: TreeDecomposition) -> PathDecomposition:
    """Convert *td* into a path decomposition with ``O(log b)`` width blow-up."""
    b = td.num_bags
    if b == 0:
        raise ValueError("cannot convert an empty tree decomposition")
    adjacency = td.adjacency()
    bags = td.bags

    def convert(component: List[int]) -> List[Set[int]]:
        if len(component) == 1:
            return [set(bags[component[0]])]
        centroid = _find_centroid(component, adjacency)
        pieces = _components_after_removal(component, centroid, adjacency)
        out: List[Set[int]] = []
        for piece in pieces:
            out.extend(convert(piece))
        if not out:
            out = [set()]
        centroid_bag = set(bags[centroid])
        for bag in out:
            bag |= centroid_bag
        return out

    produced = convert(list(range(b)))
    produced = [bag for bag in produced if bag]
    if not produced:
        produced = [set(bags[0])]
    return PathDecomposition(produced).reduced()


def _find_centroid(component: Sequence[int], adjacency: List[List[int]]) -> int:
    """Bag of the component whose removal leaves pieces of size ≤ |component| / 2."""
    comp_set = set(component)
    size = len(component)
    # Compute subtree sizes with an iterative DFS rooted at component[0].
    root = component[0]
    parent = {root: None}
    order: List[int] = []
    stack = [root]
    seen = {root}
    while stack:
        u = stack.pop()
        order.append(u)
        for v in adjacency[u]:
            if v in comp_set and v not in seen:
                seen.add(v)
                parent[v] = u
                stack.append(v)
    subtree = {u: 1 for u in order}
    for u in reversed(order):
        p = parent[u]
        if p is not None:
            subtree[p] += subtree[u]
    best = root
    best_heaviest = size + 1
    for u in order:
        heaviest = size - subtree[u]
        for v in adjacency[u]:
            if v in comp_set and parent.get(v) == u:
                heaviest = max(heaviest, subtree[v])
        if heaviest < best_heaviest:
            best_heaviest = heaviest
            best = u
    return best


def _components_after_removal(
    component: Sequence[int], removed: int, adjacency: List[List[int]]
) -> List[List[int]]:
    """Connected pieces of *component* after deleting the bag *removed*."""
    comp_set = set(component)
    comp_set.discard(removed)
    pieces: List[List[int]] = []
    seen: Set[int] = set()
    for start in component:
        if start == removed or start in seen:
            continue
        piece = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if v in comp_set and v not in seen:
                    seen.add(v)
                    piece.append(v)
                    queue.append(v)
        pieces.append(piece)
    return pieces
