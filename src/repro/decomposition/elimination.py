"""Tree decompositions from elimination orderings.

Exact treewidth is NP-hard; the classic practical route is to pick a vertex
elimination ordering (min-degree or min-fill heuristics), triangulate the
graph along it and read off one bag per vertex: ``X_v = {v} ∪ N⁺(v)`` where
``N⁺(v)`` are the neighbours of ``v`` (in the filled graph) eliminated later.
The decomposition tree attaches ``X_v`` to the bag of the earliest-eliminated
vertex of ``N⁺(v)``.

These heuristic decompositions feed :func:`repro.decomposition.tree_to_path.
tree_decomposition_to_path` to obtain path decompositions — and hence
pathshape upper bounds — for arbitrary graphs, which is exactly what the
universal statement of Theorem 2 needs.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Set, Tuple

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graphs.graph import Graph

__all__ = [
    "min_degree_ordering",
    "min_fill_ordering",
    "tree_decomposition_from_ordering",
    "treewidth_upper_bound",
]


def min_degree_ordering(graph: Graph) -> List[int]:
    """Elimination ordering choosing a minimum-degree vertex at every step.

    Runs on the *filled* graph (neighbours of an eliminated vertex are made
    into a clique before the next choice), using a lazy heap of degrees.
    """
    n = graph.num_nodes
    adj: List[Set[int]] = graph.adjacency_sets()
    eliminated = [False] * n
    heap: List[Tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            if not eliminated[v]:
                heapq.heappush(heap, (len(adj[v]), v))
            continue
        order.append(v)
        eliminated[v] = True
        nbrs = [u for u in adj[v] if not eliminated[u]]
        # Fill: make the remaining neighbourhood a clique.
        for i, a in enumerate(nbrs):
            adj[a].discard(v)
            for b in nbrs[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
        for a in nbrs:
            heapq.heappush(heap, (len(adj[a]), a))
    return order


def min_fill_ordering(graph: Graph) -> List[int]:
    """Elimination ordering choosing the vertex whose elimination adds the fewest fill edges.

    More expensive than min-degree (quadratic scans) but often yields smaller
    width; intended for graphs up to a few thousand nodes.
    """
    n = graph.num_nodes
    adj: List[Set[int]] = graph.adjacency_sets()
    alive: Set[int] = set(range(n))
    order: List[int] = []

    def fill_count(v: int) -> int:
        nbrs = [u for u in adj[v] if u in alive]
        missing = 0
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                if b not in adj[a]:
                    missing += 1
        return missing

    while alive:
        v = min(alive, key=lambda u: (fill_count(u), len(adj[u]), u))
        order.append(v)
        alive.discard(v)
        nbrs = [u for u in adj[v] if u in alive]
        for i, a in enumerate(nbrs):
            adj[a].discard(v)
            for b in nbrs[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
    return order


def tree_decomposition_from_ordering(graph: Graph, ordering: Sequence[int]) -> TreeDecomposition:
    """Tree decomposition induced by an elimination *ordering*.

    The ordering must be a permutation of the nodes.  The resulting
    decomposition has one bag per vertex and width equal to the largest
    higher-neighbourhood encountered during the triangulation.
    """
    n = graph.num_nodes
    ordering = [int(v) for v in ordering]
    if sorted(ordering) != list(range(n)):
        raise ValueError("ordering must be a permutation of all nodes")
    if n == 0:
        return TreeDecomposition([], [])
    position = [0] * n
    for pos, v in enumerate(ordering):
        position[v] = pos
    adj: List[Set[int]] = graph.adjacency_sets()
    bags: List[Set[int]] = [set() for _ in range(n)]
    # Triangulate along the ordering, recording each vertex's higher neighbourhood.
    for v in ordering:
        higher = [u for u in adj[v] if position[u] > position[v]]
        bags[v] = {v, *higher}
        for i, a in enumerate(higher):
            for b in higher[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
    # Tree structure: bag(v) attaches to bag(parent) where parent is the
    # earliest-eliminated higher neighbour of v.
    edges: List[Tuple[int, int]] = []
    roots: List[int] = []
    bag_index = {v: i for i, v in enumerate(ordering)}
    ordered_bags = [bags[v] for v in ordering]
    for i, v in enumerate(ordering):
        higher = [u for u in bags[v] if u != v]
        if higher:
            parent = min(higher, key=lambda u: position[u])
            edges.append((i, bag_index[parent]))
        else:
            roots.append(i)
    # Link multiple roots (disconnected graphs) into a single tree.
    for a, b in zip(roots, roots[1:]):
        edges.append((a, b))
    return TreeDecomposition(ordered_bags, edges)


def treewidth_upper_bound(graph: Graph, *, strategy: str = "min_degree") -> Tuple[int, TreeDecomposition]:
    """Heuristic treewidth upper bound and its witnessing decomposition.

    *strategy* is ``"min_degree"`` (default, near-linear) or ``"min_fill"``
    (slower, usually tighter).
    """
    if strategy == "min_degree":
        ordering = min_degree_ordering(graph)
    elif strategy == "min_fill":
        ordering = min_fill_ordering(graph)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    td = tree_decomposition_from_ordering(graph, ordering)
    return td.width(), td
