#!/usr/bin/env python
"""Benchmark trend gate: fail CI on a >30% regression of any gated metric.

Compares the *freshly measured* records a benchmark run just appended to
``BENCH_routing.json`` against the *committed baseline* (the file as of a
git ref, default ``HEAD`` — i.e. exactly what the repository claimed before
this run).  Two metrics are gated, each with its own direction:

* ``speedup`` (higher is better — ``routing_engine`` lane-vs-scalar,
  ``next_local_many`` batched-vs-loop): the fresh value must not fall below
  ``(1 - tolerance)`` times the baseline,
* ``bytes_per_node`` (lower is better — ``oracle_memory`` resident-memory
  records): the fresh value must not rise above ``(1 + tolerance)`` times
  the baseline.

For every benchmark kind, metric and problem size measured by both sides the
gate applies the matching bound.  Kinds listed in ``KIND_GATED_METRICS``
override the default metric set: ``bfs_engine_highdiam`` gates on
``engine_seconds`` (lower is better) rather than its legacy-relative
``speedup`` — that ratio divides two timers, so a faster run of the
pure-Python comparator (machine-state noise) would register as an engine
regression even when the engine's own time is flat.  The absolute engine
time has no comparator in the denominator and tracks what the gate is
actually protecting.

The baseline is the *median* per size over the baseline file's most recent
records (up to ``--baseline-window`` per kind and size), so one historically
lucky run cannot ratchet the gate beyond what the hardware sustains; the
fresh value is the latest record of the current file.  Absolute thresholds
live in the benchmarks themselves — this gate only watches the trend.

Usage (CI runs it right after the benchmark step)::

    python tools/check_bench_trend.py [--path BENCH_routing.json]
        [--baseline-ref HEAD] [--tolerance 0.30]

Exit status 0 = trend ok (or nothing comparable), 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
from collections import defaultdict
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_routing.json"

#: Gated metrics: result-dict field -> True when higher values are better.
GATED_METRICS = {"speedup": True, "bytes_per_node": False}

#: Per-kind overrides of the default metric set.  ``bfs_engine_highdiam``
#: gates the engine's own wall time instead of the legacy-relative speedup
#: ratio, which is sensitive to comparator (denominator) noise.  The
#: compiled-kernel rows (``bfs_kernel_compiled`` / ``next_local_compiled``,
#: appended by ``benchmarks/test_bench_kernel_backend.py`` on hosts with the
#: numba extra) gate the same way: the compiled path's own engine time,
#: lower is better — their numpy-relative speedup is a gate inside the
#: benchmark itself, not a trend.
#: The serve daemon's records (``benchmarks/test_bench_serve.py``) gate on
#: their own axes: ``serve_qps`` on sustained queries/second (higher is
#: better), ``serve_latency`` on the closed loop's p99 response time in
#: milliseconds (lower is better).
#: The landmark sketch's records (``benchmarks/test_bench_approx_distance.py``)
#: gate on ``warmup_seconds`` — the one-off pivot BFS cost that landmark mode
#: pays instead of per-query exact sweeps — and on ``mean_stretch``, the
#: sketch's quality against the ring's closed-form distances; both lower is
#: better, so a slower warmup or a sloppier sketch fails the trend.
KIND_GATED_METRICS = {
    "bfs_engine_highdiam": {"engine_seconds": False},
    "bfs_kernel_compiled": {"engine_seconds": False},
    "next_local_compiled": {"engine_seconds": False},
    "serve_qps": {"qps": True},
    "serve_latency": {"p99_ms": False},
    "approx_distance": {"warmup_seconds": False, "mean_stretch": False},
}


def load_runs(text: str):
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return []
    if not isinstance(data, dict) or data.get("schema_version") != 1:
        return []
    return data.get("runs", [])


def baseline_text(path: Path, ref: str) -> str:
    """The file's content at *ref* (empty when git or the ref is unavailable)."""
    try:
        repo_root = Path(
            subprocess.check_output(
                ["git", "rev-parse", "--show-toplevel"],
                cwd=path.parent,
                text=True,
                stderr=subprocess.DEVNULL,
            ).strip()
        )
        rel = path.resolve().relative_to(repo_root)
        return subprocess.check_output(
            ["git", "show", f"{ref}:{rel.as_posix()}"],
            cwd=repo_root,
            text=True,
            stderr=subprocess.DEVNULL,
        )
    except (subprocess.CalledProcessError, FileNotFoundError, ValueError):
        return ""


def runs_by_kind(runs):
    """Group records per benchmark kind, preserving append order.

    Records written before the ``benchmark`` field existed are
    ``routing_engine`` measurements.
    """
    per_kind = defaultdict(list)
    for run in runs:
        per_kind[run.get("benchmark", "routing_engine")].append(run)
    return per_kind


def metric_by_size(kind_runs, metric: str, window: int = 0):
    """``{n: [values...]}`` of *metric* over *kind_runs*, newest last.

    *window* keeps only the last N records (0 = all).
    """
    out = defaultdict(list)
    if window:
        kind_runs = kind_runs[-window:]
    for run in kind_runs:
        for result in run.get("results", []):
            if "n" in result and metric in result:
                out[int(result["n"])].append(float(result[metric]))
    return out


def speedups_by_size(kind_runs, window: int = 0):
    """Back-compat alias: the ``speedup`` metric per size."""
    return metric_by_size(kind_runs, "speedup", window=window)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH)
    parser.add_argument("--baseline-ref", default="HEAD")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--baseline-window",
        type=int,
        default=5,
        help="baseline = median over this many most-recent committed records",
    )
    args = parser.parse_args(argv)

    if not args.path.is_file():
        print(f"trend gate: {args.path} does not exist; nothing to check")
        return 0
    current_kinds = runs_by_kind(load_runs(args.path.read_text()))
    committed_kinds = runs_by_kind(load_runs(baseline_text(args.path, args.baseline_ref)))
    if not committed_kinds:
        print("trend gate: no committed baseline records; skipping (first run?)")
        return 0

    failures = []
    compared = 0
    for kind, baseline_runs in sorted(committed_kinds.items()):
        # The file is append-only, so everything past the committed record
        # count is what this benchmark run actually measured — committed
        # history must never be compared against itself.
        fresh_runs = current_kinds.get(kind, [])[len(baseline_runs):]
        kind_compared = 0
        gated_metrics = KIND_GATED_METRICS.get(kind, GATED_METRICS)
        for metric, higher_is_better in gated_metrics.items():
            fresh_sizes = metric_by_size(fresh_runs, metric)
            if not fresh_sizes:
                continue
            baseline_sizes = metric_by_size(
                baseline_runs, metric, window=args.baseline_window
            )
            for n, values in sorted(baseline_sizes.items()):
                fresh_all = fresh_sizes.get(n)
                if not fresh_all:
                    continue  # size not measured this run (e.g. smoke vs full)
                baseline = statistics.median(values)
                fresh = fresh_all[-1]
                if higher_is_better:
                    bound = (1.0 - args.tolerance) * baseline
                    ok = fresh >= bound
                    bound_name = "floor"
                else:
                    bound = (1.0 + args.tolerance) * baseline
                    ok = fresh <= bound
                    bound_name = "ceiling"
                status = "ok" if ok else "REGRESSION"
                compared += 1
                kind_compared += 1
                print(
                    f"  {kind:>16} n={n:>7} {metric}: fresh {fresh:9.2f} vs "
                    f"baseline {baseline:9.2f} ({bound_name} {bound:.2f}) {status}"
                )
                if not ok:
                    failures.append((kind, metric, n, fresh, baseline))
        if not kind_compared:
            print(f"  {kind:>16}: no fresh records this run; skipped")
    if not compared:
        print("trend gate: no overlapping (benchmark, n) records; skipping")
        return 0
    if failures:
        print(
            f"trend gate: {len(failures)} regression(s) beyond "
            f"{args.tolerance:.0%} of the committed baseline"
        )
        return 1
    print(f"trend gate: {compared} comparison(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
