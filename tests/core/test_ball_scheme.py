"""Unit tests for the Theorem-4 ball scheme."""

import math

import numpy as np
import pytest

from repro.core.ball_scheme import BallScheme
from repro.graphs import generators
from repro.graphs.distances import bfs_distances


class TestBallScheme:
    def test_default_levels_is_ceil_log2(self):
        for n, expected in ((8, 3), (9, 4), (100, 7), (1024, 10)):
            g = generators.cycle_graph(n)
            assert BallScheme(g).num_levels == expected

    def test_num_levels_override(self, cycle12):
        assert BallScheme(cycle12, num_levels=2).num_levels == 2
        with pytest.raises(ValueError):
            BallScheme(cycle12, num_levels=0)

    def test_level_distribution_default_uniform(self, cycle12):
        scheme = BallScheme(cycle12)
        probs = scheme.level_probabilities
        assert np.allclose(probs, 1.0 / scheme.num_levels)

    def test_level_distribution_custom(self, cycle12):
        scheme = BallScheme(cycle12, num_levels=3, radius_distribution=[0.5, 0.25, 0.25])
        assert np.allclose(scheme.level_probabilities, [0.5, 0.25, 0.25])

    def test_level_distribution_validated(self, cycle12):
        with pytest.raises(ValueError):
            BallScheme(cycle12, num_levels=2, radius_distribution=[0.5, 0.2])
        with pytest.raises(ValueError):
            BallScheme(cycle12, num_levels=2, radius_distribution=[0.5])

    def test_sample_level_range(self, cycle12, rng):
        scheme = BallScheme(cycle12)
        levels = [scheme.sample_level(rng) for _ in range(200)]
        assert min(levels) >= 1
        assert max(levels) <= scheme.num_levels

    def test_contact_within_largest_ball(self, rng):
        g = generators.path_graph(64)
        scheme = BallScheme(g, seed=0)
        dist = bfs_distances(g, 10)
        max_radius = 2 ** scheme.num_levels
        for _ in range(100):
            c = scheme.sample_contact(10, rng)
            assert c is not None
            assert dist[c] <= max_radius

    def test_distribution_closed_form_matches_direct_computation(self):
        g = generators.path_graph(20)
        scheme = BallScheme(g)
        u = 5
        probs = scheme.contact_distribution(u)
        # Recompute from the definition: phi_u(v) = (1/L) sum_{k >= r(v)} 1/|B_k(u)|.
        dist = bfs_distances(g, u)
        L = scheme.num_levels
        expected = np.zeros(20)
        for v in range(20):
            mass = 0.0
            for k in range(1, L + 1):
                if dist[v] <= 2 ** k:
                    mass += 1.0 / (L * np.count_nonzero(dist <= 2 ** k))
            expected[v] = mass
        assert np.allclose(probs, expected)

    def test_distribution_sums_to_one_when_balls_cover_graph(self, cycle12):
        # With ceil(log n) levels the largest ball always covers a connected graph.
        scheme = BallScheme(cycle12)
        for u in (0, 5, 11):
            assert np.isclose(scheme.contact_distribution(u).sum(), 1.0)

    def test_distribution_monotone_in_distance(self):
        g = generators.path_graph(40)
        scheme = BallScheme(g)
        probs = scheme.contact_distribution(0)
        dist = bfs_distances(g, 0)
        order = np.argsort(dist)
        sorted_probs = probs[order]
        assert np.all(np.diff(sorted_probs) <= 1e-12)

    def test_sampler_matches_distribution(self):
        g = generators.cycle_graph(16)
        scheme = BallScheme(g)
        probs = scheme.contact_distribution(3)
        rng = np.random.default_rng(0)
        counts = np.zeros(16)
        samples = 8000
        for _ in range(samples):
            counts[scheme.sample_contact(3, rng)] += 1
        assert np.all(np.abs(counts / samples - probs) < 0.03)

    def test_cache_grows_and_resets(self, cycle12, rng):
        scheme = BallScheme(cycle12)
        scheme.sample_contact(0, rng)
        scheme.sample_contact(5, rng)
        assert scheme.cache_size() == 2
        scheme.reset_cache()
        assert scheme.cache_size() == 0

    def test_describe(self, cycle12):
        assert "ball scheme" in BallScheme(cycle12).describe()
