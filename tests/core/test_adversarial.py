"""Unit tests for the adversarial constructions (Theorems 1 and 3)."""

import math

import numpy as np
import pytest

from repro.core.adversarial import (
    adversarial_path_labeling,
    block_labeling,
    find_sparse_index_set,
    internal_mass,
    popular_interval,
)
from repro.core.matrix import (
    AugmentationMatrix,
    block_diffusion_matrix,
    harmonic_label_matrix,
    uniform_matrix,
)


class TestInternalMass:
    def test_uniform_matrix_mass(self):
        m = uniform_matrix(16)
        # A set of k labels has internal mass k(k-1)/16.
        assert internal_mass(m, [1, 2, 3, 4]) == pytest.approx(4 * 3 / 16)

    def test_empty_set(self):
        assert internal_mass(uniform_matrix(4), []) == 0.0

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            internal_mass(uniform_matrix(4), [5])


class TestFindSparseIndexSet:
    @pytest.mark.parametrize(
        "matrix_factory",
        [uniform_matrix, lambda n: harmonic_label_matrix(n), lambda n: block_diffusion_matrix(n, 3)],
    )
    def test_finds_set_below_threshold(self, matrix_factory):
        n = 64
        matrix = matrix_factory(n)
        size = int(math.isqrt(n))
        chosen = find_sparse_index_set(matrix, size, seed=0)
        assert len(chosen) == size
        assert len(set(chosen)) == size
        assert all(1 <= lab <= n for lab in chosen)
        assert internal_mass(matrix, chosen) < 1.0

    def test_size_larger_than_matrix_rejected(self):
        with pytest.raises(ValueError):
            find_sparse_index_set(uniform_matrix(4), 5)

    def test_concentrated_matrix_still_solvable(self):
        # A matrix that pushes all mass into a small clique of labels: the
        # greedy removal must avoid that clique.
        n = 32
        entries = np.zeros((n, n))
        entries[:8, :8] = 1.0 / 8
        matrix = AugmentationMatrix(entries)
        chosen = find_sparse_index_set(matrix, 5, seed=1)
        assert internal_mass(matrix, chosen) < 1.0


class TestAdversarialPathLabeling:
    def test_instance_structure(self):
        n = 100
        matrix = uniform_matrix(n)
        instance = adversarial_path_labeling(matrix, n, seed=0)
        assert instance.labels.shape == (n,)
        # All labels distinct and within [1, n].
        assert len(set(instance.labels.tolist())) == n
        assert instance.labels.min() >= 1 and instance.labels.max() <= n
        start, end = instance.segment
        assert end - start == int(math.isqrt(n))
        assert start <= instance.source < instance.target < end
        assert instance.internal_mass < 1.0

    def test_hard_pair_separation_is_about_a_third(self):
        n = 400
        instance = adversarial_path_labeling(uniform_matrix(n), n, seed=3)
        seg_len = instance.segment[1] - instance.segment[0]
        gap = instance.target - instance.source
        assert seg_len // 4 <= gap <= seg_len

    def test_matrix_smaller_than_path_rejected(self):
        with pytest.raises(ValueError):
            adversarial_path_labeling(uniform_matrix(10), 20)

    def test_deterministic_given_seed(self):
        matrix = harmonic_label_matrix(64)
        a = adversarial_path_labeling(matrix, 64, seed=9)
        b = adversarial_path_labeling(matrix, 64, seed=9)
        assert np.array_equal(a.labels, b.labels)
        assert a.source == b.source and a.target == b.target


class TestBlockLabeling:
    def test_block_structure(self):
        labels = block_labeling(12, 3)
        assert list(labels) == [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]

    def test_number_of_labels(self):
        labels = block_labeling(100, 7)
        assert len(set(labels.tolist())) == 7
        assert labels.min() == 1 and labels.max() == 7

    def test_labels_cannot_exceed_nodes(self):
        with pytest.raises(ValueError):
            block_labeling(5, 6)


class TestPopularInterval:
    def test_finds_interval_when_all_popular(self):
        labels = block_labeling(64, 4)  # every label used 16 times
        interval = popular_interval(labels, interval_length=8, popularity_threshold=10)
        assert interval is not None
        start, end = interval
        assert end - start == 8

    def test_returns_none_when_all_labels_rare(self):
        labels = np.arange(1, 33)  # every label used exactly once
        assert popular_interval(labels, interval_length=4, popularity_threshold=2) is None

    def test_threshold_respected(self):
        labels = np.array([1, 1, 1, 1, 2, 3, 4, 5])
        # Only label 1 is popular at threshold 3; the first block qualifies.
        assert popular_interval(labels, interval_length=4, popularity_threshold=3) == (0, 4)
