"""Property-based tests (hypothesis) for the augmentation schemes.

Every scheme must produce a valid probability distribution over contacts
(entries non-negative, total at most one) and its sampler must only return
nodes that carry positive probability.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ball_scheme import BallScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import MatrixScheme, uniform_matrix
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.graphs import generators


def _graph_for(kind: str, n: int):
    if kind == "path":
        return generators.path_graph(n)
    if kind == "cycle":
        return generators.cycle_graph(max(3, n))
    if kind == "tree":
        return generators.random_tree(n, seed=n)
    if kind == "grid":
        side = max(2, int(round(n ** 0.5)))
        return generators.grid_graph([side, side])
    raise AssertionError(kind)


graph_kinds = st.sampled_from(["path", "cycle", "tree", "grid"])
sizes = st.integers(min_value=4, max_value=40)


def _scheme_for(name: str, graph, seed: int):
    if name == "uniform":
        return UniformScheme(graph, seed=seed)
    if name == "ball":
        return BallScheme(graph, seed=seed)
    if name == "theorem2":
        return Theorem2Scheme(graph, seed=seed)
    if name == "kleinberg":
        return DistancePowerScheme(graph, 2.0, seed=seed)
    if name == "matrix":
        return MatrixScheme(graph, uniform_matrix(graph.num_nodes), seed=seed)
    raise AssertionError(name)


scheme_names = st.sampled_from(["uniform", "ball", "theorem2", "kleinberg", "matrix"])


class TestSchemeDistributions:
    @given(scheme_names, graph_kinds, sizes, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_distribution_is_sub_stochastic(self, scheme_name, kind, n, node_seed):
        graph = _graph_for(kind, n)
        scheme = _scheme_for(scheme_name, graph, seed=1)
        node = node_seed % graph.num_nodes
        probs = scheme.contact_distribution(node)
        assert probs.shape == (graph.num_nodes,)
        assert np.all(probs >= -1e-12)
        assert probs.sum() <= 1.0 + 1e-6

    @given(scheme_names, graph_kinds, sizes, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_sampler_respects_support(self, scheme_name, kind, n, node_seed):
        graph = _graph_for(kind, n)
        scheme = _scheme_for(scheme_name, graph, seed=1)
        node = node_seed % graph.num_nodes
        probs = scheme.contact_distribution(node)
        rng = np.random.default_rng(node_seed)
        for _ in range(10):
            contact = scheme.sample_contact(node, rng)
            if contact is not None:
                assert probs[contact] > 0.0

    @given(graph_kinds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_ball_scheme_covers_connected_graph(self, kind, n):
        graph = _graph_for(kind, n)
        scheme = BallScheme(graph)
        probs = scheme.contact_distribution(0)
        # With ceil(log n) levels, the largest ball covers everything, so the
        # distribution is fully stochastic and supported everywhere.
        assert np.isclose(probs.sum(), 1.0)
        assert np.all(probs > 0.0)

    @given(graph_kinds, sizes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_theorem2_uniform_component_lower_bound(self, kind, n, node_seed):
        graph = _graph_for(kind, n)
        scheme = Theorem2Scheme(graph, seed=0)
        node = node_seed % graph.num_nodes
        probs = scheme.contact_distribution(node)
        # Every node receives at least the uniform half's mass 1/(2n).
        assert np.all(probs >= 0.5 / graph.num_nodes - 1e-12)
