"""Tests for ``sample_contacts_from_uniforms`` across every scheme.

The contract behind the serve layer's batch invariance: entry ``i`` of the
returned contact array is a **pure function** of ``(nodes[i],
uniforms[:, i])`` — same node and same uniform column, same contact, no
matter what else is in the batch.  Distributional correctness (the contact
law matching ``contact_distribution``) is checked per scheme over uniforms
drawn i.i.d., mirroring ``test_batched_sampling``'s checks for the
generator-driven API.
"""

import numpy as np
import pytest

from repro.core.ball_scheme import BallScheme
from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import MatrixScheme, uniform_matrix
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.graphs import generators
from repro.graphs.graph import Graph

SCHEME_NAMES = ["uniform", "uniform-noself", "ball", "theorem2", "kleinberg", "matrix"]


def _scheme_for(name: str, graph: Graph):
    if name == "uniform":
        return UniformScheme(graph, seed=1)
    if name == "uniform-noself":
        return UniformScheme(graph, exclude_self=True, seed=1)
    if name == "ball":
        return BallScheme(graph, seed=1)
    if name == "theorem2":
        return Theorem2Scheme(graph, seed=1)
    if name == "kleinberg":
        return DistancePowerScheme(graph, 2.0, seed=1)
    if name == "matrix":
        return MatrixScheme(graph, uniform_matrix(graph.num_nodes), seed=1)
    raise AssertionError(name)


def _uniforms(scheme: AugmentationScheme, count: int, seed: int) -> np.ndarray:
    rows = type(scheme).uniforms_per_contact
    return np.random.default_rng(seed).random((rows, count))


@pytest.fixture
def cycle30() -> Graph:
    return generators.cycle_graph(30)


class TestEntryPurity:
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_entry_is_pure_in_node_and_uniform_column(self, scheme_name, cycle30):
        scheme = _scheme_for(scheme_name, cycle30)
        nodes = np.array([4, 17, 4, 9, 22, 17], dtype=np.int64)
        uniforms = _uniforms(scheme, nodes.size, seed=7)
        uniforms[:, 2] = uniforms[:, 0]  # same node AND same column as entry 0
        batch = scheme.sample_contacts_from_uniforms(nodes, uniforms)
        assert batch[2] == batch[0]
        # Entry-wise recomputation in arbitrary sub-batches changes nothing.
        for i in np.argsort(nodes):
            solo = scheme.sample_contacts_from_uniforms(
                nodes[i : i + 1], uniforms[:, i : i + 1]
            )
            assert solo[0] == batch[i]

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_deterministic_replay(self, scheme_name, cycle30):
        scheme = _scheme_for(scheme_name, cycle30)
        nodes = np.arange(30, dtype=np.int64)
        uniforms = _uniforms(scheme, 30, seed=3)
        a = scheme.sample_contacts_from_uniforms(nodes, uniforms)
        b = scheme.sample_contacts_from_uniforms(nodes, uniforms)
        np.testing.assert_array_equal(a, b)


class TestDistribution:
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_support_matches_contact_distribution(self, scheme_name, cycle30):
        scheme = _scheme_for(scheme_name, cycle30)
        node = 13
        distribution = np.asarray(scheme.contact_distribution(node))
        support = set(np.flatnonzero(distribution > 0).tolist())
        nodes = np.full(4000, node, dtype=np.int64)
        draws = scheme.sample_contacts_from_uniforms(nodes, _uniforms(scheme, 4000, 11))
        observed = set(int(c) for c in draws)
        assert observed <= (support | {NO_CONTACT})

    def test_uniform_frequencies_are_uniform(self, cycle30):
        scheme = UniformScheme(cycle30, seed=1)
        nodes = np.full(30_000, 7, dtype=np.int64)
        draws = scheme.sample_contacts_from_uniforms(nodes, _uniforms(scheme, 30_000, 13))
        counts = np.bincount(draws, minlength=30)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 1.35

    def test_exclude_self_never_draws_self(self, cycle30):
        scheme = UniformScheme(cycle30, exclude_self=True, seed=1)
        nodes = np.full(5000, 11, dtype=np.int64)
        draws = scheme.sample_contacts_from_uniforms(nodes, _uniforms(scheme, 5000, 17))
        assert 11 not in set(int(c) for c in draws)
        assert set(int(c) for c in draws) == set(range(30)) - {11}


class TestValidation:
    def test_wrong_row_count_rejected(self, cycle30):
        scheme = BallScheme(cycle30, seed=1)  # uniforms_per_contact == 2
        nodes = np.array([1, 2], dtype=np.int64)
        with pytest.raises(ValueError, match="uniforms"):
            scheme.sample_contacts_from_uniforms(nodes, np.random.random((1, 2)))

    def test_wrong_width_rejected(self, cycle30):
        scheme = UniformScheme(cycle30, seed=1)
        nodes = np.array([1, 2, 3], dtype=np.int64)
        with pytest.raises(ValueError, match="uniforms"):
            scheme.sample_contacts_from_uniforms(nodes, np.random.random((1, 2)))

    def test_non_1d_nodes_rejected(self, cycle30):
        scheme = UniformScheme(cycle30, seed=1)
        with pytest.raises(ValueError, match="1-D node batch"):
            scheme.sample_contacts_from_uniforms(
                np.array([[1, 2]], dtype=np.int64), np.random.random((1, 2))
            )


class TestBaseFallback:
    def test_scalar_override_routes_through_base_fallback(self, cycle30):
        class OddScheme(UniformScheme):
            """Overrides the scalar sampler: the batch guard must fall back."""

            def sample_contact(self, node, rng=None):
                return (node + 1) % self.graph.num_nodes

        scheme = OddScheme(cycle30, seed=1)
        nodes = np.array([0, 5, 29], dtype=np.int64)
        draws = scheme.sample_contacts_from_uniforms(nodes, _uniforms(scheme, 3, 19))
        np.testing.assert_array_equal(draws, [1, 6, 0])
