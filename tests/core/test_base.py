"""Unit tests for the scheme base classes and AugmentedGraph."""

import numpy as np
import pytest

from repro.core.base import NO_CONTACT, AugmentationScheme, AugmentedGraph
from repro.core.uniform import UniformScheme
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestAugmentationSchemeBase:
    def test_requires_non_empty_graph(self):
        with pytest.raises(ValueError):
            UniformScheme(Graph.empty(0))

    def test_sample_all_contacts_shape(self, cycle12):
        scheme = UniformScheme(cycle12, seed=1)
        contacts = scheme.sample_all_contacts()
        assert contacts.shape == (12,)
        assert np.all((contacts >= 0) & (contacts < 12))

    def test_sample_all_contacts_deterministic_with_rng(self, cycle12):
        scheme = UniformScheme(cycle12, seed=1)
        a = scheme.sample_all_contacts(np.random.default_rng(5))
        b = scheme.sample_all_contacts(np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_describe_mentions_graph(self, path8):
        scheme = UniformScheme(path8)
        assert "path" in scheme.describe()

    def test_contact_distribution_default_not_implemented(self, path8):
        from repro.core.base import AugmentationScheme

        class Dummy(AugmentationScheme):
            scheme_name = "dummy"

            def sample_contact(self, node, rng=None):
                return None

        with pytest.raises(NotImplementedError):
            Dummy(path8).contact_distribution(0)


class TestAugmentedGraph:
    def test_from_scheme(self, cycle12):
        scheme = UniformScheme(cycle12, seed=3)
        aug = AugmentedGraph.from_scheme(scheme, rng=7)
        assert aug.graph is cycle12
        assert aug.contacts.shape == (12,)

    def test_contact_lookup(self, path8):
        contacts = np.array([1, 2, 3, 4, 5, 6, 7, NO_CONTACT])
        aug = AugmentedGraph(path8, contacts)
        assert aug.contact(0) == 1
        assert aug.contact(7) is None

    def test_out_degree(self, path8):
        contacts = np.full(8, NO_CONTACT)
        contacts[0] = 5
        aug = AugmentedGraph(path8, contacts)
        assert aug.out_degree(0) == 2  # one local neighbour + long link
        assert aug.out_degree(3) == 2  # two local neighbours, no long link

    def test_long_range_edges(self, path8):
        contacts = np.full(8, NO_CONTACT)
        contacts[2] = 6
        aug = AugmentedGraph(path8, contacts)
        assert aug.long_range_edges() == {2: 6}

    def test_contacts_validated(self, path8):
        with pytest.raises(ValueError):
            AugmentedGraph(path8, np.array([99] * 8))

    def test_contacts_shape_validated(self, path8):
        with pytest.raises(ValueError):
            AugmentedGraph(path8, np.array([0, 1]))

    def test_contacts_read_only(self, path8):
        aug = AugmentedGraph(path8, np.zeros(8, dtype=np.int64))
        with pytest.raises(ValueError):
            aug.contacts[0] = 3


class TestSampleAllContactsDelegation:
    """sample_all_contacts must route through the batched sampler."""

    def test_scalar_fallback_is_draw_for_draw_identical_to_old_loop(self, cycle12):
        """For schemes without a native batched sampler the delegation keeps
        the historical per-node stream (the base ``sample_contacts`` loops
        ``sample_contact`` in node order)."""

        class HalfScheme(AugmentationScheme):
            scheme_name = "half"

            def sample_contact(self, node, rng=None):
                generator = rng if rng is not None else self._rng
                if generator.random() < 0.5:
                    return None
                return int(generator.integers(self._graph.num_nodes))

        scheme = HalfScheme(cycle12, seed=0)
        got = scheme.sample_all_contacts(np.random.default_rng(11))
        reference = np.full(cycle12.num_nodes, NO_CONTACT, dtype=np.int64)
        generator = np.random.default_rng(11)
        for u in range(cycle12.num_nodes):
            contact = scheme.sample_contact(u, generator)
            if contact is not None:
                reference[u] = int(contact)
        np.testing.assert_array_equal(got, reference)

    def test_native_batched_sampler_is_used(self, cycle12):
        """A scheme with a vectorized sampler serves the eager path batched."""

        class CountingScheme(AugmentationScheme):
            scheme_name = "counting"
            batched_calls = 0
            scalar_calls = 0

            def sample_contact(self, node, rng=None):
                type(self).scalar_calls += 1
                return None

            def sample_contacts(self, nodes, rng=None):
                type(self).batched_calls += 1
                nodes = self._coerce_batch(nodes)
                return np.full(nodes.shape, NO_CONTACT, dtype=np.int64)

        scheme = CountingScheme(cycle12, seed=1)
        out = scheme.sample_all_contacts()
        assert out.shape == (cycle12.num_nodes,)
        assert CountingScheme.batched_calls == 1
        assert CountingScheme.scalar_calls == 0

    def test_from_scheme_valid_contacts_for_all_builtin_schemes(self, cycle12):
        from repro.core.registry import available_schemes, make_scheme

        for name in available_schemes():
            scheme = make_scheme(name, cycle12, seed=5)
            aug = AugmentedGraph.from_scheme(scheme, rng=6)
            contacts = aug.contacts
            assert contacts.shape == (cycle12.num_nodes,)
            linked = contacts[contacts != NO_CONTACT]
            assert np.all((linked >= 0) & (linked < cycle12.num_nodes))
