"""Tests for the batched ``sample_contacts`` API across every scheme.

The contract: each entry of the returned array is one independent draw from
``φ_{nodes[i]}`` (``NO_CONTACT`` for "no link"), duplicates allowed.  Native
vectorized implementations consume the generator differently from the scalar
path, so the checks here are distributional (support + empirical frequencies
against ``contact_distribution``) rather than draw-for-draw — except for the
base-class fallback, which must replay the scalar sampler exactly.
"""

import numpy as np
import pytest

from repro.core.ball_scheme import BallScheme
from repro.core.base import NO_CONTACT, AugmentationScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import MatrixScheme, uniform_matrix
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.graphs import generators
from repro.graphs.graph import Graph

SCHEME_NAMES = ["uniform", "uniform-noself", "ball", "theorem2", "kleinberg", "matrix"]


def _scheme_for(name: str, graph: Graph):
    if name == "uniform":
        return UniformScheme(graph, seed=1)
    if name == "uniform-noself":
        return UniformScheme(graph, exclude_self=True, seed=1)
    if name == "ball":
        return BallScheme(graph, seed=1)
    if name == "theorem2":
        return Theorem2Scheme(graph, seed=1)
    if name == "kleinberg":
        return DistancePowerScheme(graph, 2.0, seed=1)
    if name == "matrix":
        return MatrixScheme(graph, uniform_matrix(graph.num_nodes), seed=1)
    raise AssertionError(name)


@pytest.fixture
def tree20() -> Graph:
    return generators.random_tree(20, seed=5)


class TestBatchedDistribution:
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_empirical_frequencies_match_distribution(self, scheme_name, tree20):
        scheme = _scheme_for(scheme_name, tree20)
        node = 4
        draws = 4000
        exact = scheme.contact_distribution(node)
        rng = np.random.default_rng(7)
        samples = scheme.sample_contacts(np.full(draws, node), rng)
        assert samples.shape == (draws,)
        linked = samples[samples != NO_CONTACT]
        # Support: every sampled contact carries positive probability.
        assert np.all(exact[linked] > 0.0)
        # Frequencies: within a loose Monte-Carlo tolerance of the exact φ_u.
        counts = np.bincount(linked, minlength=tree20.num_nodes)
        np.testing.assert_allclose(counts / draws, exact, atol=0.035)
        # Residual mass = probability of drawing no link.
        no_link = np.count_nonzero(samples == NO_CONTACT) / draws
        assert no_link == pytest.approx(1.0 - exact.sum(), abs=0.035)

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_mixed_batch_with_duplicates(self, scheme_name, tree20):
        scheme = _scheme_for(scheme_name, tree20)
        nodes = np.array([0, 7, 7, 3, 0, 19, 7])
        rng = np.random.default_rng(11)
        samples = scheme.sample_contacts(nodes, rng)
        assert samples.shape == nodes.shape
        for i, u in enumerate(nodes):
            if samples[i] != NO_CONTACT:
                assert scheme.contact_distribution(int(u))[samples[i]] > 0.0

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_two_dimensional_batch_preserves_shape(self, scheme_name, tree20):
        scheme = _scheme_for(scheme_name, tree20)
        nodes = np.arange(20).reshape(4, 5)
        samples = scheme.sample_contacts(nodes, np.random.default_rng(2))
        assert samples.shape == (4, 5)

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_out_of_range_nodes_rejected(self, scheme_name, tree20):
        scheme = _scheme_for(scheme_name, tree20)
        with pytest.raises((IndexError, ValueError)):
            scheme.sample_contacts(np.array([0, 20]), np.random.default_rng(0))

    def test_empty_batch(self, tree20):
        for name in SCHEME_NAMES:
            scheme = _scheme_for(name, tree20)
            out = scheme.sample_contacts(np.empty(0, dtype=np.int64), np.random.default_rng(0))
            assert out.shape == (0,)


class TestScalarFallback:
    def test_base_fallback_replays_scalar_sampler(self, tree20):
        # The base-class implementation must consume the generator exactly
        # like a sequence of sample_contact calls.
        scheme = UniformScheme(tree20, seed=1)
        nodes = np.array([3, 3, 9, 0])
        batched = AugmentationScheme.sample_contacts(
            scheme, nodes, np.random.default_rng(21)
        )
        rng = np.random.default_rng(21)
        expected = [scheme.sample_contact(int(u), rng) for u in nodes]
        expected = [NO_CONTACT if c is None else c for c in expected]
        np.testing.assert_array_equal(batched, expected)

    def test_scalar_override_disables_native_batch(self, tree20):
        # A subclass changing the distribution via sample_contact alone must
        # not inherit the parent's vectorized sampler.
        class Constant(UniformScheme):
            def sample_contact(self, node, rng=None):
                return 0

        class NoLinks(BallScheme):
            def sample_contact(self, node, rng=None):
                return None

        rng = np.random.default_rng(0)
        assert np.all(Constant(tree20, seed=1).sample_contacts(np.arange(20), rng) == 0)
        assert np.all(
            NoLinks(tree20, seed=1).sample_contacts(np.arange(20), rng) == NO_CONTACT
        )

    def test_intact_subclass_keeps_native_batch(self, tree20):
        # Subclassing without touching sample_contact keeps the fast path.
        class Renamed(UniformScheme):
            scheme_name = "renamed"

        scheme = Renamed(tree20, seed=1)
        assert scheme._batch_matches_scalar(UniformScheme)


class TestBallProfileCache:
    def test_profiles_respect_oracle_lru_cap(self):
        from repro.graphs.oracle import DistanceOracle

        g = generators.cycle_graph(32)
        oracle = DistanceOracle(g, max_entries=3)
        scheme = BallScheme(g, seed=1, oracle=oracle)
        scheme.sample_contacts(np.arange(10), np.random.default_rng(0))
        assert len(scheme._profiles) <= 3

    def test_reset_cache_drops_profiles(self):
        g = generators.cycle_graph(16)
        scheme = BallScheme(g, seed=1)
        scheme.sample_contacts(np.arange(8), np.random.default_rng(0))
        assert len(scheme._profiles) > 0
        scheme.reset_cache()
        assert len(scheme._profiles) == 0
