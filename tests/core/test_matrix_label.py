"""Unit tests for the Theorem-2 (M, L) scheme and its explicit matrices."""

import math

import numpy as np
import pytest

from repro.core.matrix import MatrixScheme
from repro.core.matrix_label import Theorem2Scheme, ancestor_matrix, theorem2_matrix
from repro.decomposition.exact import path_decomposition_of_path
from repro.decomposition.labeling import integer_ancestors
from repro.graphs import generators


class TestExplicitMatrices:
    def test_ancestor_matrix_entries(self):
        n = 8
        m = ancestor_matrix(n)
        denom = 1.0 + math.log2(n)
        for i in range(1, n + 1):
            ancestors = set(integer_ancestors(i, max_value=n))
            for j in range(1, n + 1):
                expected = 1.0 / denom if j in ancestors else 0.0
                assert m.probability(i - 1, j - 1) == pytest.approx(expected)

    def test_ancestor_matrix_rows_sub_stochastic(self):
        for n in (4, 16, 33, 100):
            m = ancestor_matrix(n)
            assert np.all(m.entries.sum(axis=1) <= 1.0 + 1e-9)

    def test_theorem2_matrix_is_average(self):
        n = 16
        a = ancestor_matrix(n).entries
        m = theorem2_matrix(n).entries
        assert np.allclose(m, (a + 1.0 / n) / 2.0)

    def test_theorem2_matrix_valid_augmentation_matrix(self):
        m = theorem2_matrix(32)
        assert np.all(m.entries.sum(axis=1) <= 1.0 + 1e-9)


class TestTheorem2Scheme:
    def test_distribution_sums_at_most_one(self, cycle12):
        scheme = Theorem2Scheme(cycle12, seed=0)
        for u in range(12):
            total = scheme.contact_distribution(u).sum()
            assert total <= 1.0 + 1e-9
            assert total >= 0.5 - 1e-9  # at least the uniform half is always present

    def test_labels_match_decomposition_bag_count(self):
        g = generators.path_graph(32)
        scheme = Theorem2Scheme(g)
        assert scheme.labels.min() >= 1
        assert scheme.labels.max() <= scheme.decomposition.num_bags

    def test_explicit_decomposition_accepted(self):
        g = generators.path_graph(16)
        pd = path_decomposition_of_path(g)
        scheme = Theorem2Scheme(g, pd)
        assert scheme.decomposition.num_bags == pd.num_bags

    def test_implicit_sampler_matches_explicit_ancestor_matrix(self):
        """The implicit scheme must equal ½·(uniform over nodes) + ½·(A applied via labels).

        The paper applies the uniform component U *name-independently* (a
        uniform node, regardless of shared labels) and the ancestor component
        A through the labeling L — so the reference distribution combines the
        plain uniform vector with Definition 1 applied to the explicit
        ancestor matrix.
        """
        g = generators.path_graph(12)
        pd = path_decomposition_of_path(g)
        scheme = Theorem2Scheme(g, pd, seed=0)
        ancestor_part = MatrixScheme(g, ancestor_matrix(12), labels=scheme.labels, seed=0)
        for u in (0, 3, 7, 11):
            expected = 0.5 / 12 + 0.5 * ancestor_part.contact_distribution(u)
            assert np.allclose(scheme.contact_distribution(u), expected, atol=1e-12)

    def test_sampler_matches_distribution_empirically(self):
        g = generators.path_graph(10)
        scheme = Theorem2Scheme(g, seed=0)
        probs = scheme.contact_distribution(4)
        rng = np.random.default_rng(3)
        counts = np.zeros(10)
        samples = 8000
        none_count = 0
        for _ in range(samples):
            c = scheme.sample_contact(4, rng)
            if c is None:
                none_count += 1
            else:
                counts[c] += 1
        assert np.all(np.abs(counts / samples - probs) < 0.03)
        assert abs(none_count / samples - (1.0 - probs.sum())) < 0.03

    def test_uniform_mixture_zero_is_pure_ancestor(self):
        g = generators.path_graph(16)
        scheme = Theorem2Scheme(g, uniform_mixture=0.0, seed=0)
        probs = scheme.contact_distribution(5)
        # Mass only on nodes whose label is an ancestor of node 5's label.
        label = int(scheme.labels[5])
        allowed_labels = set(integer_ancestors(label, max_value=16))
        for v in range(16):
            if probs[v] > 0:
                assert int(scheme.labels[v]) in allowed_labels

    def test_uniform_mixture_one_is_uniform(self, cycle12):
        scheme = Theorem2Scheme(cycle12, uniform_mixture=1.0, seed=0)
        assert np.allclose(scheme.contact_distribution(3), 1.0 / 12)

    def test_invalid_mixture_rejected(self, path8):
        with pytest.raises(ValueError):
            Theorem2Scheme(path8, uniform_mixture=1.5)

    def test_witnessed_shape_on_path(self):
        g = generators.path_graph(64)
        scheme = Theorem2Scheme(g)
        assert scheme.witnessed_shape() == 1

    def test_pathshape_estimate_exposed_when_automatic(self, cycle12):
        scheme = Theorem2Scheme(cycle12)
        assert scheme.pathshape_estimate is not None
        g = generators.path_graph(8)
        explicit = Theorem2Scheme(g, path_decomposition_of_path(g))
        assert explicit.pathshape_estimate is None
