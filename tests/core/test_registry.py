"""Unit tests for the scheme registry."""

import pytest

from repro.core.ball_scheme import BallScheme
from repro.core.kleinberg import DistancePowerScheme
from repro.core.registry import available_schemes, make_scheme, register_scheme
from repro.core.uniform import UniformScheme
from repro.graphs import generators


class TestRegistry:
    def test_builtin_schemes_registered(self):
        names = available_schemes()
        for expected in ("uniform", "ball", "theorem2", "kleinberg", "matrix-uniform"):
            assert expected in names

    def test_make_uniform(self, cycle12):
        assert isinstance(make_scheme("uniform", cycle12), UniformScheme)

    def test_make_ball(self, cycle12):
        assert isinstance(make_scheme("ball", cycle12, seed=1), BallScheme)

    def test_make_kleinberg_with_exponent(self, cycle12):
        scheme = make_scheme("kleinberg", cycle12, exponent=1.5)
        assert isinstance(scheme, DistancePowerScheme)
        assert scheme.exponent == 1.5

    def test_make_theorem2(self, path8):
        scheme = make_scheme("theorem2", path8)
        assert scheme.scheme_name == "theorem2"

    def test_case_insensitive(self, cycle12):
        assert isinstance(make_scheme("UNIFORM", cycle12), UniformScheme)

    def test_unknown_scheme_raises(self, cycle12):
        with pytest.raises(KeyError):
            make_scheme("nonexistent", cycle12)

    def test_register_custom_scheme(self, cycle12):
        register_scheme("custom-uniform", lambda g, **kw: UniformScheme(g, **kw))
        assert "custom-uniform" in available_schemes()
        assert isinstance(make_scheme("custom-uniform", cycle12), UniformScheme)
