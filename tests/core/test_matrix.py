"""Unit tests for augmentation matrices and matrix schemes (Definition 1)."""

import numpy as np
import pytest

from repro.core.matrix import (
    AugmentationMatrix,
    MatrixScheme,
    block_diffusion_matrix,
    harmonic_label_matrix,
    uniform_matrix,
)
from repro.graphs import generators


class TestAugmentationMatrix:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            AugmentationMatrix(np.zeros((2, 3)))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            AugmentationMatrix([[-0.1, 0.2], [0.0, 0.5]])

    def test_rejects_row_sum_above_one(self):
        with pytest.raises(ValueError):
            AugmentationMatrix([[0.7, 0.7], [0.0, 0.0]])

    def test_sub_stochastic_rows_allowed(self):
        m = AugmentationMatrix([[0.2, 0.3], [0.0, 0.0]])
        assert not m.is_stochastic()
        assert m.size == 2

    def test_probability_accessor(self):
        m = AugmentationMatrix([[0.25, 0.75], [0.5, 0.5]])
        assert m.probability(0, 1) == 0.75
        assert m.row(1).tolist() == [0.5, 0.5]

    def test_entries_read_only(self):
        m = uniform_matrix(4)
        with pytest.raises(ValueError):
            m.entries[0, 0] = 1.0


class TestCanonicalMatrices:
    def test_uniform_matrix_is_stochastic(self):
        m = uniform_matrix(8)
        assert m.is_stochastic()
        assert np.allclose(m.entries, 1.0 / 8)
        assert m.is_name_independent_symmetric()

    def test_harmonic_matrix_rows_normalised(self):
        m = harmonic_label_matrix(16)
        assert m.is_stochastic()
        # Mass decreases with label distance.
        assert m.probability(0, 1) > m.probability(0, 8)

    def test_harmonic_matrix_mass_decays_with_label_distance(self):
        m = harmonic_label_matrix(9)
        row = m.row(4)
        assert row[4] == 0.0
        # Mass decreases monotonically moving away from the diagonal.
        assert row[3] > row[2] > row[1] > row[0]
        assert row[5] > row[6] > row[7] > row[8]

    def test_block_matrix_row_sums_at_most_one(self):
        m = block_diffusion_matrix(20, block=3)
        assert np.all(m.entries.sum(axis=1) <= 1.0 + 1e-9)
        assert m.probability(10, 13) > 0
        assert m.probability(10, 14) == 0


class TestMatrixScheme:
    def test_identity_labeling_requires_large_matrix(self, path8):
        with pytest.raises(ValueError):
            MatrixScheme(path8, uniform_matrix(4))

    def test_labels_validated(self, path8):
        with pytest.raises(ValueError):
            MatrixScheme(path8, uniform_matrix(8), labels=[0] * 8)  # labels are 1-based
        with pytest.raises(ValueError):
            MatrixScheme(path8, uniform_matrix(8), labels=[1] * 7)  # wrong length

    def test_uniform_matrix_scheme_distribution(self, path8):
        scheme = MatrixScheme(path8, uniform_matrix(8))
        probs = scheme.contact_distribution(3)
        assert np.allclose(probs, 1.0 / 8)

    def test_shared_labels_split_mass(self):
        g = generators.path_graph(4)
        # Two labels, each carried by two nodes.
        labels = [1, 1, 2, 2]
        matrix = AugmentationMatrix([[0.0, 1.0], [1.0, 0.0]])
        scheme = MatrixScheme(g, matrix, labels=labels)
        probs = scheme.contact_distribution(0)
        assert np.allclose(probs, [0.0, 0.0, 0.5, 0.5])

    def test_unused_label_drops_link(self, rng):
        g = generators.path_graph(3)
        # Row sends all mass to label 3, which no node carries.
        matrix = AugmentationMatrix(np.array([
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
        ]))
        scheme = MatrixScheme(g, matrix, labels=[1, 2, 2])
        assert all(scheme.sample_contact(0, rng) is None for _ in range(50))
        assert scheme.contact_distribution(0).sum() == 0.0

    def test_sub_stochastic_row_sometimes_no_link(self, rng):
        g = generators.path_graph(2)
        matrix = AugmentationMatrix([[0.0, 0.3], [0.3, 0.0]])
        scheme = MatrixScheme(g, matrix)
        outcomes = [scheme.sample_contact(0, rng) for _ in range(500)]
        none_fraction = sum(1 for o in outcomes if o is None) / len(outcomes)
        assert 0.6 < none_fraction < 0.8

    def test_sampler_matches_distribution(self, rng):
        g = generators.cycle_graph(6)
        matrix = harmonic_label_matrix(6)
        scheme = MatrixScheme(g, matrix)
        probs = scheme.contact_distribution(2)
        counts = np.zeros(6)
        samples = 6000
        for _ in range(samples):
            c = scheme.sample_contact(2, rng)
            if c is not None:
                counts[c] += 1
        assert np.all(np.abs(counts / samples - probs) < 0.05)

    def test_nodes_with_label(self, path8):
        scheme = MatrixScheme(path8, uniform_matrix(8), labels=[1, 1, 2, 2, 3, 3, 4, 4])
        assert list(scheme.nodes_with_label(2)) == [2, 3]
        assert list(scheme.nodes_with_label(7)) == []

    def test_describe(self, path8):
        scheme = MatrixScheme(path8, uniform_matrix(8))
        assert "uniform" in scheme.describe()
