"""Unit tests for the uniform scheme."""

import numpy as np
import pytest

from repro.core.uniform import UniformScheme
from repro.graphs import generators


class TestUniformScheme:
    def test_distribution_is_uniform(self, cycle12):
        scheme = UniformScheme(cycle12)
        probs = scheme.contact_distribution(3)
        assert probs.shape == (12,)
        assert np.allclose(probs, 1.0 / 12)

    def test_distribution_excluding_self(self, cycle12):
        scheme = UniformScheme(cycle12, exclude_self=True)
        probs = scheme.contact_distribution(3)
        assert probs[3] == 0.0
        assert np.isclose(probs.sum(), 1.0)
        assert np.allclose(probs[probs > 0], 1.0 / 11)

    def test_sample_in_range(self, cycle12, rng):
        scheme = UniformScheme(cycle12, seed=0)
        for _ in range(50):
            c = scheme.sample_contact(5, rng)
            assert 0 <= c < 12

    def test_sample_excluding_self_never_self(self, path8, rng):
        scheme = UniformScheme(path8, exclude_self=True)
        assert all(scheme.sample_contact(4, rng) != 4 for _ in range(200))

    def test_single_node_graph_excluding_self(self):
        from repro.graphs.graph import Graph

        g = Graph.empty(1)
        scheme = UniformScheme(g, exclude_self=True)
        assert scheme.sample_contact(0, np.random.default_rng(0)) is None
        assert scheme.contact_distribution(0).sum() == 0.0

    def test_empirical_frequencies_match_uniform(self, path8):
        scheme = UniformScheme(path8, seed=42)
        rng = np.random.default_rng(0)
        counts = np.zeros(8)
        samples = 4000
        for _ in range(samples):
            counts[scheme.sample_contact(2, rng)] += 1
        freqs = counts / samples
        assert np.all(np.abs(freqs - 1 / 8) < 0.04)

    def test_out_of_range_node_rejected(self, path8):
        scheme = UniformScheme(path8)
        with pytest.raises(ValueError):
            scheme.sample_contact(42)
