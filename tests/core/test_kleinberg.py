"""Unit tests for the distance-power (Kleinberg) scheme."""

import numpy as np
import pytest

from repro.core.kleinberg import DistancePowerScheme
from repro.graphs import generators
from repro.graphs.distances import bfs_distances


class TestDistancePowerScheme:
    def test_distribution_proportional_to_inverse_distance(self):
        g = generators.path_graph(9)
        scheme = DistancePowerScheme(g, 1.0)
        probs = scheme.contact_distribution(0)
        dist = bfs_distances(g, 0).astype(float)
        expected = np.zeros(9)
        expected[1:] = 1.0 / dist[1:]
        expected /= expected.sum()
        assert np.allclose(probs, expected)

    def test_distribution_sums_to_one(self, grid4x4):
        for r in (0.0, 1.0, 2.0, 3.5):
            scheme = DistancePowerScheme(grid4x4, r)
            assert np.isclose(scheme.contact_distribution(5).sum(), 1.0)

    def test_zero_exponent_is_uniform_over_others(self, cycle12):
        scheme = DistancePowerScheme(cycle12, 0.0)
        probs = scheme.contact_distribution(4)
        assert probs[4] == 0.0
        assert np.allclose(probs[probs > 0], 1.0 / 11)

    def test_never_samples_self(self, cycle12, rng):
        scheme = DistancePowerScheme(cycle12, 2.0)
        assert all(scheme.sample_contact(7, rng) != 7 for _ in range(100))

    def test_large_exponent_prefers_neighbours(self, rng):
        g = generators.path_graph(30)
        scheme = DistancePowerScheme(g, 6.0)
        samples = [scheme.sample_contact(15, rng) for _ in range(300)]
        dist = bfs_distances(g, 15)
        assert np.mean([dist[s] for s in samples]) < 2.0

    def test_negative_exponent_rejected(self, path8):
        with pytest.raises(ValueError):
            DistancePowerScheme(path8, -1.0)

    def test_cache_reset(self, path8):
        scheme = DistancePowerScheme(path8, 1.0)
        scheme.contact_distribution(0)
        scheme.reset_cache()
        assert scheme._cache == {}

    def test_exponent_property_and_describe(self, path8):
        scheme = DistancePowerScheme(path8, 2.5)
        assert scheme.exponent == 2.5
        assert "2.5" in scheme.describe()

    def test_empirical_frequencies_match_distribution(self):
        g = generators.cycle_graph(10)
        scheme = DistancePowerScheme(g, 1.0)
        probs = scheme.contact_distribution(0)
        rng = np.random.default_rng(1)
        counts = np.zeros(10)
        samples = 5000
        for _ in range(samples):
            counts[scheme.sample_contact(0, rng)] += 1
        assert np.all(np.abs(counts / samples - probs) < 0.05)
