"""Documentation sanity checks: the docs exist and their relative links resolve.

Run by the CI docs job (and the normal suite) so a file rename can't silently
break README.md or docs/ — the ISSUE-2 docs acceptance gate.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown inline links ``[text](target)`` (images included via ``![...]``)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files():
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return docs


def _relative_targets(text):
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if path:
            yield path


def test_readme_exists_with_required_sections():
    readme = REPO_ROOT / "README.md"
    assert readme.is_file(), "top-level README.md is missing"
    text = readme.read_text(encoding="utf-8")
    for needle in (
        "python -m repro graph",
        "python -m repro pathshape",
        "python -m repro route",
        "python -m repro experiment",
        "EXPERIMENTS.md",
    ):
        assert needle in text, f"README.md lost its {needle!r} quickstart"


def test_architecture_doc_exists():
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    for needle in ("DistanceOracle", "SweepExecutor", "frontier", "CellArtifact"):
        assert needle in text


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = [
        target
        for target in _relative_targets(text)
        if not (doc.parent / target).resolve().exists()
    ]
    assert not broken, f"{doc.relative_to(REPO_ROOT)} has broken relative links: {broken}"


def test_experiment_module_docstrings_state_id_and_knobs():
    """The docstring pass: every exp_* module documents its id, the claim it
    reproduces and the config knobs that affect it."""
    from repro.experiments.runner import EXPERIMENT_MODULES

    for module in EXPERIMENT_MODULES:
        doc = module.__doc__ or ""
        assert module.EXPERIMENT_ID in doc, f"{module.__name__} docstring lacks its id"
        assert "Configuration knobs" in doc, f"{module.__name__} docstring lacks config knobs"
        assert "Cells" in doc, f"{module.__name__} docstring lacks the cell layout"
