"""Unit tests for the command-line interface."""

import pytest

from repro.cli import GRAPH_FAMILIES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_graph_defaults(self):
        args = build_parser().parse_args(["graph", "ring"])
        assert args.family == "ring"
        assert args.size == 256

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "hypertorus"])

    def test_all_families_constructible(self):
        for family, factory in GRAPH_FAMILIES.items():
            graph = factory(32, 1)
            assert graph.num_nodes >= 8, family


class TestCommands:
    def test_graph_command(self, capsys):
        assert main(["graph", "ring", "--size", "64", "--diameter"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "64" in out
        assert "diameter" in out

    def test_pathshape_command(self, capsys):
        assert main(["pathshape", "path", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "pathshape" in out
        assert "winning strategy" in out

    def test_route_command(self, capsys):
        code = main(
            ["route", "ring", "--size", "128", "--pairs", "3", "--trials", "3",
             "--schemes", "uniform", "ball"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "ball" in out
        assert "greedy diameter" in out

    def test_experiment_command_single(self, capsys):
        code = main(["experiment", "--only", "EXP-1", "--quick", "--markdown"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXP-1" in out

    def test_experiment_command_unknown_id_lists_available(self, capsys):
        assert main(["experiment", "--only", "EXP-99", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "EXP-99" in err
        assert "EXP-1" in err  # the error names the available experiment ids

    def test_experiment_command_resume_requires_out(self, capsys):
        assert main(["experiment", "--only", "EXP-1", "--quick", "--resume"]) == 1
        assert "--out" in capsys.readouterr().err

    def test_experiment_command_artifacts_and_resume(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        args = ["experiment", "--only", "EXP-1", "--quick", "--markdown", "--out", out_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list((tmp_path / "artifacts").glob("*.json"))
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert second == first


class TestEngineFlag:
    def test_route_engine_choices(self):
        args = build_parser().parse_args(["route", "ring", "--engine", "scalar"])
        assert args.engine == "scalar"
        args = build_parser().parse_args(["route", "ring"])
        assert args.engine == "lane"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "ring", "--engine", "warp"])

    def test_route_command_scalar_engine(self, capsys):
        code = main(
            ["route", "ring", "--size", "48", "--pairs", "2", "--trials", "2",
             "--schemes", "uniform", "--engine", "scalar"]
        )
        assert code == 0
        assert "uniform" in capsys.readouterr().out

    def test_experiment_engine_reaches_config(self, capsys):
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown", "--engine", "scalar"]
        )
        assert code == 0
        assert "EXP-1" in capsys.readouterr().out
