"""Unit tests for the command-line interface."""

import pytest

from repro.cli import GRAPH_FAMILIES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_graph_defaults(self):
        args = build_parser().parse_args(["graph", "ring"])
        assert args.family == "ring"
        assert args.size == 256

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "hypertorus"])

    def test_all_families_constructible(self):
        for family, factory in GRAPH_FAMILIES.items():
            graph = factory(32, 1)
            assert graph.num_nodes >= 8, family


class TestCommands:
    def test_graph_command(self, capsys):
        assert main(["graph", "ring", "--size", "64", "--diameter"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "64" in out
        assert "diameter" in out

    def test_pathshape_command(self, capsys):
        assert main(["pathshape", "path", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "pathshape" in out
        assert "winning strategy" in out

    def test_route_command(self, capsys):
        code = main(
            ["route", "ring", "--size", "128", "--pairs", "3", "--trials", "3",
             "--schemes", "uniform", "ball"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "ball" in out
        assert "greedy diameter" in out

    def test_experiment_command_single(self, capsys):
        code = main(["experiment", "--only", "EXP-1", "--quick", "--markdown"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXP-1" in out

    def test_experiment_command_unknown_id_lists_available(self, capsys):
        assert main(["experiment", "--only", "EXP-99", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "EXP-99" in err
        assert "EXP-1" in err  # the error names the available experiment ids

    def test_experiment_command_resume_requires_out(self, capsys):
        assert main(["experiment", "--only", "EXP-1", "--quick", "--resume"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_experiment_command_artifacts_and_resume(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        args = ["experiment", "--only", "EXP-1", "--quick", "--markdown", "--out", out_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list((tmp_path / "artifacts").glob("*.json"))
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert second == first


class TestEngineFlag:
    def test_route_engine_choices(self):
        args = build_parser().parse_args(["route", "ring", "--engine", "scalar"])
        assert args.engine == "scalar"
        args = build_parser().parse_args(["route", "ring"])
        assert args.engine == "lane"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "ring", "--engine", "warp"])

    def test_route_command_scalar_engine(self, capsys):
        code = main(
            ["route", "ring", "--size", "48", "--pairs", "2", "--trials", "2",
             "--schemes", "uniform", "--engine", "scalar"]
        )
        assert code == 0
        assert "uniform" in capsys.readouterr().out

    def test_experiment_engine_reaches_config(self, capsys):
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown", "--engine", "scalar"]
        )
        assert code == 0
        assert "EXP-1" in capsys.readouterr().out


class TestByteSizeParsing:
    def test_accepted_forms(self):
        from repro.cli import parse_byte_size

        assert parse_byte_size("123456") == 123456
        assert parse_byte_size("64K") == 64 * 1024
        assert parse_byte_size("512M") == 512 * 1024 * 1024
        assert parse_byte_size("1G") == 1024 ** 3
        assert parse_byte_size("2gb") == 2 * 1024 ** 3
        assert parse_byte_size(" 8 M ") == 8 * 1024 * 1024

    def test_rejected_forms(self):
        import argparse

        from repro.cli import parse_byte_size

        for bad in ["", "abc", "12X", "-5", "0", "1.5G", "M"]:
            with pytest.raises(argparse.ArgumentTypeError):
                parse_byte_size(bad)

    def test_bad_value_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "--oracle-max-bytes", "lots"]
            )
        assert "invalid" in capsys.readouterr().err


class TestCleanErrors:
    """Invalid flag combinations render as one-line errors with exit 2."""

    def test_jobs_below_one_exits_cleanly(self, capsys):
        assert main(["experiment", "--only", "EXP-1", "--quick", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_shard_requires_out(self, capsys):
        assert main(["experiment", "--only", "EXP-1", "--quick", "--shard"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_uncreatable_out_dir(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        bad = str(blocker / "artifacts")  # a path *through* a regular file
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--out", bad]
        )
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_uncreatable_graph_cache_dir(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        bad = str(blocker / "cache")
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--graph-cache", bad]
        )
        assert code == 2
        assert "--graph-cache" in capsys.readouterr().err

    @pytest.mark.skipif(
        not hasattr(__import__("os"), "geteuid") or __import__("os").geteuid() == 0,
        reason="root bypasses permission bits; the probe cannot fail",
    )
    def test_unwritable_out_dir(self, tmp_path, capsys):
        import os

        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            code = main(
                ["experiment", "--only", "EXP-1", "--quick", "--out", str(locked)]
            )
        finally:
            locked.chmod(0o700)
        assert code == 2
        assert "not writable" in capsys.readouterr().err


class TestScaleFlags:
    def test_sizes_override_reaches_config(self, capsys):
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown",
             "--sizes", "48"]
        )
        assert code == 0
        assert "48" in capsys.readouterr().out

    def test_oracle_max_bytes_accepted(self, capsys):
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown",
             "--sizes", "48", "--oracle-max-bytes", "64M"]
        )
        assert code == 0
        assert "EXP-1" in capsys.readouterr().out

    def test_shard_drains_out_directory(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown",
             "--sizes", "48", "--out", out_dir, "--shard"]
        )
        assert code == 0
        assert list((tmp_path / "artifacts").glob("*.json"))
        assert not list((tmp_path / "artifacts").glob("*.lease"))

    def test_stats_report_memory(self, capsys):
        code = main(
            ["experiment", "--only", "EXP-1", "--quick", "--markdown",
             "--sizes", "48", "--stats"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "oracle memory" in err
        assert "bytes/node" in err
        assert "peak RSS" in err  # resource is always available on Linux


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "ring"])
        assert args.family == "ring"
        assert args.size == 4096
        assert args.scheme == "uniform"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.max_batch == 512
        assert args.window_ms == 1.0
        assert args.warm_targets == 32
        assert args.engine == "lane"  # shared parent parser, same as route

    def test_shared_instance_flags(self):
        args = build_parser().parse_args(
            ["serve", "torus2d", "-n", "9000", "--seed", "7", "--port", "8642"]
        )
        assert (args.size, args.seed, args.port) == (9000, 7, 8642)

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "hypertorus"])


class TestServeUsageErrors:
    """Invalid serve combinations are one-line errors with exit 2."""

    def test_scalar_engine_rejected(self, capsys):
        assert main(["serve", "ring", "-n", "64", "--engine", "scalar"]) == 2
        assert "--engine lane" in capsys.readouterr().err

    def test_bad_max_batch(self, capsys):
        assert main(["serve", "ring", "-n", "64", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_negative_window(self, capsys):
        assert main(["serve", "ring", "-n", "64", "--window-ms", "-1"]) == 2
        assert "--window-ms" in capsys.readouterr().err

    def test_unknown_scheme(self, capsys):
        assert main(["serve", "ring", "-n", "64", "--scheme", "teleport"]) == 2
        err = capsys.readouterr().err
        assert "teleport" in err

    def test_out_of_range_port(self, capsys):
        assert main(["serve", "ring", "-n", "64", "--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err
