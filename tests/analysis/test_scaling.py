"""Unit tests for scaling-law fitting."""

import numpy as np
import pytest

from repro.analysis.scaling import classify_growth, fit_polylog, fit_power_law


class TestFitPowerLaw:
    def test_recovers_exact_exponent(self):
        sizes = [100, 200, 400, 800, 1600]
        values = [3.0 * n ** 0.5 for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_cube_root(self):
        sizes = [64, 512, 4096]
        values = [2.0 * n ** (1 / 3) for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(1 / 3, abs=1e-9)

    def test_noisy_data_reasonable(self):
        rng = np.random.default_rng(0)
        sizes = np.array([128, 256, 512, 1024, 2048, 4096])
        values = 5.0 * sizes ** 0.4 * np.exp(rng.normal(0, 0.05, size=sizes.size))
        fit = fit_power_law(sizes, values)
        assert abs(fit.exponent - 0.4) < 0.1
        assert fit.r_squared > 0.9

    def test_predict(self):
        fit = fit_power_law([10, 100], [10, 100])
        assert fit.predict(1000) == pytest.approx(1000)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [1.0, 0.0])

    def test_summary_string(self):
        fit = fit_power_law([10, 100, 1000], [1, 10, 100])
        assert "n^" in fit.summary()


class TestFitPolylog:
    def test_exact_polylog_has_unit_spread(self):
        sizes = [256, 1024, 4096]
        values = [7.0 * np.log2(n) ** 2 for n in sizes]
        fit = fit_polylog(sizes, values, degree=2)
        assert fit.ratio_spread == pytest.approx(1.0)
        assert fit.prefactor == pytest.approx(7.0)

    def test_power_law_data_has_large_spread(self):
        sizes = [256, 1024, 4096, 16384]
        values = [n ** 0.5 for n in sizes]
        fit = fit_polylog(sizes, values, degree=2)
        assert fit.ratio_spread > 2.0

    def test_predict(self):
        fit = fit_polylog([256, 1024], [64, 100], degree=2)
        assert fit.predict(256) == pytest.approx(fit.prefactor * 64)

    def test_requires_sizes_above_one(self):
        with pytest.raises(ValueError):
            fit_polylog([1, 2], [1, 1], degree=2)


class TestClassifyGrowth:
    def test_sqrt_growth_is_polynomial(self):
        sizes = [256, 512, 1024, 2048, 4096]
        values = [n ** 0.5 for n in sizes]
        assert classify_growth(sizes, values) == "polynomial"

    def test_log_squared_growth_is_polylog(self):
        sizes = [256, 512, 1024, 2048, 4096]
        values = [np.log2(n) ** 2 for n in sizes]
        assert classify_growth(sizes, values, polylog_degree=2) == "polylog"

    def test_constant_is_polylog(self):
        sizes = [256, 512, 1024]
        values = [10.0, 10.5, 9.5]
        assert classify_growth(sizes, values) == "polylog"
