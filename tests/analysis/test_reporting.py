"""Unit tests for experiment result reporting."""

import json

import pytest

from repro.analysis.reporting import ExperimentResult, SeriesResult


def _sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EXP-X",
        title="demo",
        paper_claim="claim",
        parameters={"trials": 4},
    )
    series = SeriesResult(name="uniform/ring")
    for n, v in [(128, 10.0), (256, 14.0), (512, 20.0)]:
        series.add(n, v)
    result.add_series(series)
    return result


class TestSeriesResult:
    def test_add_and_fit(self):
        s = SeriesResult(name="x")
        s.add(100, 10)
        s.add(400, 20)
        fit = s.power_law()
        assert fit is not None
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)

    def test_fit_requires_two_points(self):
        s = SeriesResult(name="x")
        s.add(100, 10)
        assert s.power_law() is None

    def test_as_dict(self):
        s = SeriesResult(name="x")
        s.add(10, 1)
        s.add(100, 2)
        d = s.as_dict()
        assert d["name"] == "x"
        assert d["sizes"] == [10, 100]
        assert d["exponent"] is not None


class TestExperimentResult:
    def test_get_series(self):
        result = _sample_result()
        assert result.get_series("uniform/ring").sizes == [128, 256, 512]
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_to_text_contains_claim_and_series(self):
        text = _sample_result().to_text()
        assert "EXP-X" in text
        assert "claim" in text
        assert "uniform/ring" in text

    def test_to_markdown_contains_table(self):
        md = _sample_result().to_markdown()
        assert md.startswith("### EXP-X")
        assert "| series |" in md or "| series " in md

    def test_to_json_roundtrip(self):
        payload = json.loads(_sample_result().to_json())
        assert payload["experiment_id"] == "EXP-X"
        assert payload["series"][0]["sizes"] == [128, 256, 512]

    def test_conclusion_included(self):
        result = _sample_result()
        result.conclusion = "matches the paper"
        assert "matches the paper" in result.to_text()
        assert "matches the paper" in result.to_markdown()
