"""Unit tests for experiment result reporting and persisted cell artifacts."""

import json

import pytest

from repro.analysis.reporting import (
    ARTIFACT_SCHEMA_VERSION,
    CellArtifact,
    ExperimentResult,
    SeriesResult,
    artifact_path,
    iter_cell_artifacts,
    load_cell_artifact,
    write_cell_artifact,
)


def _sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EXP-X",
        title="demo",
        paper_claim="claim",
        parameters={"trials": 4},
    )
    series = SeriesResult(name="uniform/ring")
    for n, v in [(128, 10.0), (256, 14.0), (512, 20.0)]:
        series.add(n, v)
    result.add_series(series)
    return result


class TestSeriesResult:
    def test_add_and_fit(self):
        s = SeriesResult(name="x")
        s.add(100, 10)
        s.add(400, 20)
        fit = s.power_law()
        assert fit is not None
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)

    def test_fit_requires_two_points(self):
        s = SeriesResult(name="x")
        s.add(100, 10)
        assert s.power_law() is None

    def test_as_dict(self):
        s = SeriesResult(name="x")
        s.add(10, 1)
        s.add(100, 2)
        d = s.as_dict()
        assert d["name"] == "x"
        assert d["sizes"] == [10, 100]
        assert d["exponent"] is not None


class TestExperimentResult:
    def test_get_series(self):
        result = _sample_result()
        assert result.get_series("uniform/ring").sizes == [128, 256, 512]
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_to_text_contains_claim_and_series(self):
        text = _sample_result().to_text()
        assert "EXP-X" in text
        assert "claim" in text
        assert "uniform/ring" in text

    def test_to_markdown_contains_table(self):
        md = _sample_result().to_markdown()
        assert md.startswith("### EXP-X")
        assert "| series |" in md or "| series " in md

    def test_to_json_roundtrip(self):
        payload = json.loads(_sample_result().to_json())
        assert payload["experiment_id"] == "EXP-X"
        assert payload["series"][0]["sizes"] == [128, 256, 512]

    def test_conclusion_included(self):
        result = _sample_result()
        result.conclusion = "matches the paper"
        assert "matches the paper" in result.to_text()
        assert "matches the paper" in result.to_markdown()


def _sample_artifact() -> CellArtifact:
    return CellArtifact(
        experiment_id="EXP-7",
        family="size sweep / critical r=2",
        n=256,
        config={"sizes": [128, 256], "seed": 7},
        payload={"series": {"size sweep / critical r=2": {"n": 256, "value": 9.25}}},
    )


class TestCellArtifact:
    def test_json_roundtrip(self):
        artifact = _sample_artifact()
        assert CellArtifact.from_json(artifact.to_json()) == artifact

    def test_filename_is_filesystem_safe_and_stable(self):
        name = _sample_artifact().filename()
        assert "/" not in name and " " not in name and "=" not in name
        assert name == _sample_artifact().filename()
        assert name == artifact_path(".", "EXP-7", "size sweep / critical r=2", 256).name

    def test_write_and_load(self, tmp_path):
        artifact = _sample_artifact()
        path = write_cell_artifact(tmp_path / "nested", artifact)
        assert path.parent == tmp_path / "nested"
        assert load_cell_artifact(path) == artifact

    def test_unknown_schema_version_rejected(self):
        data = json.loads(_sample_artifact().to_json())
        data["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            CellArtifact.from_json(json.dumps(data))

    def test_iter_skips_foreign_json(self, tmp_path):
        write_cell_artifact(tmp_path, _sample_artifact())
        (tmp_path / "notes.json").write_text("{\"unrelated\": true}", encoding="utf-8")
        (tmp_path / "broken.json").write_text("{not json", encoding="utf-8")
        artifacts = iter_cell_artifacts(tmp_path)
        assert len(artifacts) == 1
        assert artifacts[0].experiment_id == "EXP-7"

    def test_iter_missing_directory(self, tmp_path):
        assert iter_cell_artifacts(tmp_path / "absent") == []
