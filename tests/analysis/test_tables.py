"""Unit tests for table formatting."""

from repro.analysis.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table([[1, "abc"], [22, "d"]], headers=["n", "name"])
        lines = text.splitlines()
        assert lines[0].startswith("n")
        assert "name" in lines[0]
        assert len(lines) == 4

    def test_floats_are_rounded(self):
        text = format_table([[1.23456]], headers=["x"])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table([], headers=["a", "b"])
        assert "a" in text


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table([[1, 2.5]], headers=["n", "value"])
        lines = text.splitlines()
        assert lines[0] == "| n | value |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.500 |"

    def test_row_count(self):
        text = format_markdown_table([[1], [2], [3]], headers=["x"])
        assert len(text.splitlines()) == 5
