"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def path8() -> Graph:
    return generators.path_graph(8)


@pytest.fixture
def cycle12() -> Graph:
    return generators.cycle_graph(12)


@pytest.fixture
def grid4x4() -> Graph:
    return generators.grid_graph([4, 4])


@pytest.fixture
def tree15() -> Graph:
    return generators.binary_tree(15)


@pytest.fixture
def random_tree_64() -> Graph:
    return generators.random_tree(64, seed=7)


@pytest.fixture
def small_graphs(path8, cycle12, grid4x4, tree15) -> list:
    """A small portfolio of connected graphs used by cross-cutting tests."""
    return [path8, cycle12, grid4x4, tree15]
