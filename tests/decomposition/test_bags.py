"""Unit tests for bag measures (width / length / shape, Definition 2)."""

import pytest

from repro.decomposition.bags import DistanceOracle, bag_length, bag_shape, bag_width
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestBagWidth:
    def test_width_is_cardinality_minus_one(self):
        assert bag_width({1, 2, 3}) == 2
        assert bag_width({5}) == 0
        assert bag_width(set()) == -1

    def test_width_deduplicates(self):
        assert bag_width([1, 1, 2]) == 1


class TestBagLength:
    def test_length_on_path(self):
        g = generators.path_graph(10)
        oracle = DistanceOracle(g)
        assert bag_length({0, 9}, oracle) == 9
        assert bag_length({3, 4, 5}, oracle) == 2
        assert bag_length({7}, oracle) == 0

    def test_length_disconnected_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        oracle = DistanceOracle(g)
        with pytest.raises(ValueError):
            bag_length({0, 3}, oracle)

    def test_oracle_caches_bfs(self):
        g = generators.cycle_graph(8)
        oracle = DistanceOracle(g)
        bag_length({0, 2, 4}, oracle)
        first = oracle.cache_size()
        bag_length({0, 2, 4}, oracle)
        assert oracle.cache_size() == first

    def test_oracle_callable(self):
        g = generators.path_graph(5)
        oracle = DistanceOracle(g)
        assert oracle(0, 4) == 4
        assert oracle(2, 2) == 0


class TestBagShape:
    def test_shape_is_min_of_width_and_length(self):
        g = generators.complete_graph(6)
        oracle = DistanceOracle(g)
        # A clique bag: width 5, length 1 -> shape 1.
        assert bag_shape(set(range(6)), oracle) == 1

    def test_shape_on_path_bag(self):
        g = generators.path_graph(12)
        oracle = DistanceOracle(g)
        # Two far-apart nodes: width 1 < length 11 -> shape 1.
        assert bag_shape({0, 11}, oracle) == 1
        # Three spread nodes: width 2 < length -> shape 2.
        assert bag_shape({0, 5, 11}, oracle) == 2

    def test_width_only_upper_bound(self):
        g = generators.complete_graph(5)
        oracle = DistanceOracle(g)
        full = bag_shape(set(range(5)), oracle)
        width_only = bag_shape(set(range(5)), oracle, width_only=True)
        assert full <= width_only
        assert width_only == 4

    def test_shape_without_oracle_uses_width(self):
        assert bag_shape({0, 1, 2, 3}) == 3
