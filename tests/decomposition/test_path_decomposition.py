"""Unit tests for PathDecomposition."""

import pytest

from repro.decomposition.path_decomposition import PathDecomposition
from repro.graphs import generators


class TestBasics:
    def test_empty_bag_rejected(self):
        with pytest.raises(ValueError):
            PathDecomposition([{0}, set()])

    def test_width(self):
        pd = PathDecomposition([{0, 1}, {1, 2, 3}])
        assert pd.width() == 2

    def test_len_and_iter(self):
        pd = PathDecomposition([{0}, {0, 1}])
        assert len(pd) == 2
        assert [set(b) for b in pd] == [{0}, {0, 1}]

    def test_trivial(self, grid4x4):
        pd = PathDecomposition.trivial(grid4x4)
        assert pd.num_bags == 1
        assert pd.is_valid_for(grid4x4)


class TestValidity:
    def test_path_bags_valid(self):
        g = generators.path_graph(5)
        pd = PathDecomposition([{0, 1}, {1, 2}, {2, 3}, {3, 4}])
        assert pd.is_valid_for(g)

    def test_non_consecutive_occurrence_detected(self):
        g = generators.path_graph(3)
        pd = PathDecomposition([{0, 1}, {1, 2}, {0, 2}])
        assert any("non-consecutive" in v for v in pd.violations(g))

    def test_missing_edge_detected(self):
        g = generators.cycle_graph(4)
        pd = PathDecomposition([{0, 1}, {1, 2}, {2, 3}])
        assert any("edge" in v for v in pd.violations(g))

    def test_missing_node_detected(self):
        g = generators.path_graph(4)
        pd = PathDecomposition([{0, 1}, {1, 2}])
        assert any("not covered" in v for v in pd.violations(g))


class TestNodeIntervals:
    def test_intervals_on_path_decomposition(self):
        pd = PathDecomposition([{0, 1}, {1, 2}, {2, 3}])
        intervals = pd.node_intervals()
        assert intervals[0] == (0, 0)
        assert intervals[1] == (0, 1)
        assert intervals[2] == (1, 2)
        assert intervals[3] == (2, 2)

    def test_intervals_raise_on_gap(self):
        pd = PathDecomposition([{0}, {1}, {0}])
        with pytest.raises(ValueError):
            pd.node_intervals()


class TestReduce:
    def test_reduce_removes_contained_bags(self):
        pd = PathDecomposition([{0, 1}, {1}, {1, 2}, {1, 2}, {2, 3}])
        reduced = pd.reduced()
        assert reduced.num_bags == 3
        assert [set(b) for b in reduced] == [{0, 1}, {1, 2}, {2, 3}]

    def test_reduce_keeps_validity(self):
        g = generators.path_graph(4)
        pd = PathDecomposition([{0, 1}, {0, 1}, {1, 2}, {2}, {2, 3}])
        reduced = pd.reduced()
        assert reduced.is_valid_for(g)

    def test_reduce_idempotent(self):
        pd = PathDecomposition([{0, 1}, {1, 2}, {2, 3}])
        assert [set(b) for b in pd.reduced()] == [set(b) for b in pd]

    def test_reduce_bag_count_bound(self):
        # A reduced decomposition of an n-node connected graph has at most n-1 bags.
        g = generators.path_graph(10)
        pd = PathDecomposition([{i, i + 1} for i in range(9)] + [{8, 9}])
        assert pd.reduced().num_bags <= 9

    def test_reduce_single_bag(self):
        pd = PathDecomposition([{0, 1, 2}])
        assert pd.reduced().num_bags == 1


class TestConversions:
    def test_to_tree_decomposition(self, path8):
        pd = PathDecomposition([{i, i + 1} for i in range(7)])
        td = pd.to_tree_decomposition()
        assert td.is_valid_for(path8)
        assert td.width() == pd.width()

    def test_shape_matches_tree_view(self):
        g = generators.complete_graph(4)
        pd = PathDecomposition([set(range(4))])
        assert pd.shape(g) == 1  # clique: length 1 < width 3
        assert pd.shape(width_only=True) == 3
