"""Unit tests for the integer level hierarchy and the Theorem-2 labeling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decomposition.exact import path_decomposition_of_path, path_decomposition_of_tree
from repro.decomposition.labeling import (
    integer_ancestors,
    integer_level,
    is_ancestor,
    label_groups,
    max_level_in_range,
    theorem2_labeling,
)
from repro.decomposition.path_decomposition import PathDecomposition
from repro.graphs import generators


class TestIntegerLevel:
    def test_odd_numbers_have_level_zero(self):
        for x in (1, 3, 5, 7, 99, 1023):
            assert integer_level(x) == 0

    def test_powers_of_two(self):
        for k in range(10):
            assert integer_level(1 << k) == k

    def test_examples_from_paper_structure(self):
        assert integer_level(6) == 1  # 110b
        assert integer_level(12) == 2  # 1100b
        assert integer_level(40) == 3  # 101000b

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            integer_level(0)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_level_divides(self, x):
        k = integer_level(x)
        assert x % (1 << k) == 0
        assert (x // (1 << k)) % 2 == 1


class TestIntegerAncestors:
    def test_ancestors_of_six(self):
        # x = 6 = 2^1 + 2^2: y(0)=6, y(1)=4, y(2)=8, y(3)=16 ...
        assert integer_ancestors(6, max_value=16) == [6, 4, 8, 16]

    def test_ancestors_of_odd(self):
        # x = 5 = 101b: y(0)=5, y(1)=6, y(2)=4, y(3)=8
        assert integer_ancestors(5, max_value=8) == [5, 6, 4, 8]

    def test_ancestors_include_self(self):
        for x in range(1, 40):
            assert x in integer_ancestors(x, max_value=64)

    def test_ancestors_filtered_to_range(self):
        assert all(1 <= a <= 10 for a in integer_ancestors(7, max_value=10))

    def test_ancestor_count_bounded_by_log(self):
        n = 1000
        for x in range(1, n + 1):
            ancestors = integer_ancestors(x, max_value=n)
            assert len(ancestors) <= int(np.log2(n)) + 2

    def test_levels_increase_along_ancestors(self):
        for x in (3, 6, 20, 37):
            ancestors = integer_ancestors(x, max_value=64)
            levels = [integer_level(a) for a in ancestors]
            assert levels == sorted(levels)
            assert len(set(levels)) == len(levels)

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=100, deadline=None)
    def test_ancestor_relation_is_chain(self, x):
        # Each ancestor's own ancestor set is a suffix of the original chain.
        ancestors = integer_ancestors(x, max_value=8192)
        for j, a in enumerate(ancestors):
            assert integer_ancestors(a, max_value=8192) == ancestors[j:]

    def test_is_ancestor(self):
        assert is_ancestor(4, 6)
        assert is_ancestor(6, 6)
        assert not is_ancestor(3, 6)


class TestMaxLevelInRange:
    def test_simple_ranges(self):
        assert max_level_in_range(1, 1) == 1
        assert max_level_in_range(3, 5) == 4
        assert max_level_in_range(5, 7) == 6
        assert max_level_in_range(1, 100) == 64

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            max_level_in_range(5, 4)

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_result_has_max_level_and_is_unique(self, lo, width):
        hi = lo + width
        best = max_level_in_range(lo, hi)
        assert lo <= best <= hi
        best_level = integer_level(best)
        others = [x for x in range(lo, hi + 1) if x != best]
        assert all(integer_level(x) < best_level for x in others)


class TestTheorem2Labeling:
    def test_path_labeling_values_in_range(self):
        g = generators.path_graph(16)
        pd = path_decomposition_of_path(g)
        labels = theorem2_labeling(pd, 16)
        assert labels.shape == (16,)
        assert labels.min() >= 1
        assert labels.max() <= pd.num_bags

    def test_label_is_in_nodes_interval(self):
        g = generators.path_graph(20)
        pd = path_decomposition_of_path(g)
        labels = theorem2_labeling(pd, 20)
        intervals = pd.node_intervals()
        for node, (lo, hi) in intervals.items():
            assert lo + 1 <= labels[node] <= hi + 1

    def test_label_has_max_level_in_interval(self):
        g = generators.binary_tree(63)
        pd = path_decomposition_of_tree(g)
        labels = theorem2_labeling(pd, 63)
        intervals = pd.node_intervals()
        for node, (lo, hi) in intervals.items():
            label = int(labels[node])
            lvl = integer_level(label)
            for other in range(lo + 1, hi + 2):
                assert integer_level(other) <= lvl

    def test_rejects_oversized_decomposition(self):
        pd = PathDecomposition([{0}, {1}, {0, 1}])
        with pytest.raises(ValueError):
            theorem2_labeling(pd, 2)

    def test_rejects_uncovered_nodes(self):
        pd = PathDecomposition([{0, 1}])
        with pytest.raises(ValueError):
            theorem2_labeling(pd, 4)

    def test_label_groups(self):
        labels = np.array([1, 2, 2, 3, 1])
        groups = label_groups(labels)
        assert list(groups[1]) == [0, 4]
        assert list(groups[2]) == [1, 2]
        assert list(groups[3]) == [3]
