"""Unit tests for the exact path decompositions of the paper's graph classes."""

import math

import pytest

from repro.decomposition.exact import (
    is_caterpillar,
    is_path_graph,
    is_tree,
    path_decomposition_of_caterpillar,
    path_decomposition_of_interval_graph,
    path_decomposition_of_path,
    path_decomposition_of_tree,
)
from repro.graphs import generators


class TestRecognition:
    def test_is_tree(self, random_tree_64):
        assert is_tree(random_tree_64)
        assert not is_tree(generators.cycle_graph(5))

    def test_is_path_graph(self):
        assert is_path_graph(generators.path_graph(7))
        assert not is_path_graph(generators.star_graph(5))
        assert not is_path_graph(generators.cycle_graph(5))

    def test_is_caterpillar(self):
        assert is_caterpillar(generators.caterpillar_graph(6, 2))
        assert is_caterpillar(generators.path_graph(5))
        assert is_caterpillar(generators.star_graph(6))
        # A spider with 3 legs of length 3 is not a caterpillar.
        assert not is_caterpillar(generators.spider_graph(3, 3))
        assert not is_caterpillar(generators.cycle_graph(6))

    def test_is_caterpillar_binary_tree(self):
        assert not is_caterpillar(generators.binary_tree(15))


class TestPathDecompositions:
    def test_of_path(self):
        g = generators.path_graph(9)
        pd = path_decomposition_of_path(g)
        assert pd.is_valid_for(g)
        assert pd.width() == 1
        assert pd.shape(g) == 1

    def test_of_path_single_node(self):
        g = generators.path_graph(1)
        pd = path_decomposition_of_path(g)
        assert pd.num_bags == 1

    def test_of_path_rejects_non_path(self):
        with pytest.raises(ValueError):
            path_decomposition_of_path(generators.star_graph(4))

    def test_of_caterpillar(self):
        g = generators.caterpillar_graph(8, 2)
        pd = path_decomposition_of_caterpillar(g)
        assert pd.is_valid_for(g), pd.violations(g)
        assert pd.width() <= 2
        assert pd.shape(g) <= 2

    def test_of_caterpillar_star(self):
        g = generators.star_graph(7)
        pd = path_decomposition_of_caterpillar(g)
        assert pd.is_valid_for(g)
        assert pd.width() == 1

    def test_of_caterpillar_rejects_spider(self):
        with pytest.raises(ValueError):
            path_decomposition_of_caterpillar(generators.spider_graph(3, 3))

    def test_of_tree_logarithmic_width(self):
        for n in (15, 63, 127):
            g = generators.binary_tree(n)
            pd = path_decomposition_of_tree(g)
            assert pd.is_valid_for(g)
            assert pd.width() <= 2 * (math.log2(n) + 1)

    def test_of_tree_on_random_tree(self, random_tree_64):
        pd = path_decomposition_of_tree(random_tree_64)
        assert pd.is_valid_for(random_tree_64)

    def test_of_tree_rejects_cycle(self):
        with pytest.raises(ValueError):
            path_decomposition_of_tree(generators.cycle_graph(6))

    def test_of_interval_graph(self):
        intervals = [(0, 2), (1, 4), (3, 6), (5, 8), (7, 9)]
        graph = generators.interval_graph(intervals)
        pd = path_decomposition_of_interval_graph(intervals)
        assert pd.is_valid_for(graph), pd.violations(graph)
        # All bags are cliques, so the shape (via the length term) is 1.
        assert pd.shape(graph) <= 1

    def test_of_interval_graph_random(self):
        graph, intervals = generators.random_interval_graph(50, seed=2)
        pd = path_decomposition_of_interval_graph(intervals)
        assert pd.is_valid_for(graph), pd.violations(graph)
        assert pd.shape(graph) <= 2

    def test_of_interval_graph_empty(self):
        with pytest.raises(ValueError):
            path_decomposition_of_interval_graph([])
