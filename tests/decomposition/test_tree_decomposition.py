"""Unit tests for TreeDecomposition."""

import pytest

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestConstruction:
    def test_tree_edge_count_must_match(self):
        with pytest.raises(ValueError):
            TreeDecomposition([{0}, {1}], [])  # 2 bags need 1 edge

    def test_tree_edges_must_connect(self):
        with pytest.raises(ValueError):
            TreeDecomposition([{0}, {1}, {2}], [(0, 1), (0, 1)])

    def test_tree_edge_out_of_range(self):
        with pytest.raises(ValueError):
            TreeDecomposition([{0}], [(0, 1)])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition([{0}, {1}], [(0, 0)])


class TestValidity:
    def test_trivial_decomposition_valid(self, grid4x4):
        td = TreeDecomposition.trivial(grid4x4)
        assert td.is_valid_for(grid4x4)
        assert td.width() == 15

    def test_path_edge_bags_valid(self):
        g = generators.path_graph(5)
        td = TreeDecomposition([{0, 1}, {1, 2}, {2, 3}, {3, 4}], [(0, 1), (1, 2), (2, 3)])
        assert td.is_valid_for(g)
        assert td.width() == 1

    def test_missing_node_detected(self):
        g = generators.path_graph(3)
        td = TreeDecomposition([{0, 1}], [])
        violations = td.violations(g)
        assert any("not covered" in v for v in violations)

    def test_missing_edge_detected(self):
        g = generators.cycle_graph(4)
        td = TreeDecomposition([{0, 1}, {1, 2}, {2, 3}, {0, 3}], [(0, 1), (1, 2), (2, 3)])
        # Edge coverage is fine here; remove a bag to break it.
        broken = TreeDecomposition([{0, 1}, {1, 2}, {2, 3}, {3}], [(0, 1), (1, 2), (2, 3)])
        assert any("edge" in v for v in broken.violations(g))

    def test_disconnected_occurrence_detected(self):
        g = generators.path_graph(3)
        # Node 0 appears in two bags that are not adjacent in the tree.
        td = TreeDecomposition([{0, 1}, {1, 2}, {0, 2}], [(0, 1), (1, 2)])
        assert any("connected subtree" in v for v in td.violations(g))


class TestOfTree:
    def test_of_tree_on_path(self):
        g = generators.path_graph(6)
        td = TreeDecomposition.of_tree(g)
        assert td.is_valid_for(g)
        assert td.width() == 1
        assert td.num_bags == 5

    def test_of_tree_on_star(self):
        g = generators.star_graph(8)
        td = TreeDecomposition.of_tree(g)
        assert td.is_valid_for(g)
        assert td.width() == 1

    def test_of_tree_on_random_tree(self, random_tree_64):
        td = TreeDecomposition.of_tree(random_tree_64)
        assert td.is_valid_for(random_tree_64)
        assert td.width() == 1

    def test_of_tree_rejects_cycle(self):
        with pytest.raises(ValueError):
            TreeDecomposition.of_tree(generators.cycle_graph(5))

    def test_of_tree_rejects_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            TreeDecomposition.of_tree(g)

    def test_of_tree_single_node(self):
        td = TreeDecomposition.of_tree(Graph.empty(1))
        assert td.num_bags == 1


class TestMeasures:
    def test_width_length_shape_on_cycle(self):
        g = generators.cycle_graph(6)
        # Valid decomposition: bags {0,1,5},{1,2,5},{2,3,5},{3,4,5} in a path.
        td = TreeDecomposition(
            [{0, 1, 5}, {1, 2, 5}, {2, 3, 5}, {3, 4, 5}],
            [(0, 1), (1, 2), (2, 3)],
        )
        assert td.is_valid_for(g)
        assert td.width() == 2
        # The bag {2, 3, 5} has in-graph diameter 3 (dist(2, 5) = 3 on C6).
        assert td.length(g) == 3
        assert td.shape(g) == 2

    def test_shape_width_only_is_upper_bound(self, grid4x4):
        td = TreeDecomposition.trivial(grid4x4)
        assert td.shape(grid4x4) <= td.shape(width_only=True)

    def test_neighbors_and_adjacency(self):
        td = TreeDecomposition([{0}, {1}, {2}], [(0, 1), (1, 2)])
        assert td.neighbors(1) == [0, 2]
        assert td.adjacency()[0] == [1]
