"""Unit tests for pathshape estimation."""

import math

import pytest

from repro.decomposition.exact import path_decomposition_of_interval_graph
from repro.decomposition.pathshape import estimate_pathshape
from repro.graphs import generators


class TestEstimatePathshape:
    def test_path_has_pathshape_one(self):
        est = estimate_pathshape(generators.path_graph(40))
        assert est.shape == 1
        assert est.decomposition.is_valid_for(generators.path_graph(40))

    def test_caterpillar_small_pathshape(self):
        g = generators.caterpillar_graph(20, 1)
        est = estimate_pathshape(g)
        assert est.shape <= 2

    def test_tree_logarithmic_pathshape(self):
        g = generators.binary_tree(127)
        est = estimate_pathshape(g)
        assert est.shape <= 2 * (math.log2(127) + 1)
        assert est.decomposition.is_valid_for(g)

    def test_cycle_constant_pathshape(self):
        g = generators.cycle_graph(30)
        est = estimate_pathshape(g)
        assert est.shape <= 3

    def test_torus_large_pathshape(self):
        g = generators.torus_graph([8, 8])
        est = estimate_pathshape(g)
        # The 2-D torus has pathwidth Theta(sqrt(n)); the witnessed shape must
        # reflect that (no strategy should report a tiny value).
        assert est.shape >= 4

    def test_external_decomposition_wins_when_better(self):
        graph, intervals = generators.random_interval_graph(40, seed=1)
        exact = path_decomposition_of_interval_graph(intervals)
        est = estimate_pathshape(
            graph, compute_length=True, external={"interval_model": exact}
        )
        assert est.shape <= 2

    def test_candidates_recorded(self, grid4x4):
        est = estimate_pathshape(grid4x4)
        assert "min_degree" in est.candidates
        assert est.strategy in est.candidates

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError):
            estimate_pathshape(Graph.empty(0))

    def test_compute_length_never_increases_shape(self):
        g = generators.cycle_graph(16)
        width_only = estimate_pathshape(g, compute_length=False)
        with_length = estimate_pathshape(g, compute_length=True)
        assert with_length.shape <= width_only.shape
