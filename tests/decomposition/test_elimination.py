"""Unit tests for elimination orderings and the induced tree decompositions."""

import pytest

from repro.decomposition.elimination import (
    min_degree_ordering,
    min_fill_ordering,
    tree_decomposition_from_ordering,
    treewidth_upper_bound,
)
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestOrderings:
    def test_min_degree_is_permutation(self, grid4x4):
        order = min_degree_ordering(grid4x4)
        assert sorted(order) == list(range(16))

    def test_min_fill_is_permutation(self, cycle12):
        order = min_fill_ordering(cycle12)
        assert sorted(order) == list(range(12))

    def test_orderings_on_single_edge(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert sorted(min_degree_ordering(g)) == [0, 1]
        assert sorted(min_fill_ordering(g)) == [0, 1]


class TestDecompositionFromOrdering:
    @pytest.mark.parametrize("strategy", ["min_degree", "min_fill"])
    def test_valid_on_portfolio(self, small_graphs, strategy):
        for g in small_graphs:
            width, td = treewidth_upper_bound(g, strategy=strategy)
            assert td.is_valid_for(g), td.violations(g)
            assert width == td.width()

    def test_tree_has_width_one(self, random_tree_64):
        width, td = treewidth_upper_bound(random_tree_64)
        assert width == 1
        assert td.is_valid_for(random_tree_64)

    def test_cycle_has_width_two(self):
        g = generators.cycle_graph(10)
        width, _ = treewidth_upper_bound(g, strategy="min_fill")
        assert width == 2

    def test_complete_graph_width(self):
        g = generators.complete_graph(6)
        width, td = treewidth_upper_bound(g)
        assert width == 5
        assert td.is_valid_for(g)

    def test_grid_width_bounded(self):
        g = generators.grid_graph([4, 4])
        width, _ = treewidth_upper_bound(g, strategy="min_fill")
        # tw(4x4 grid) = 4; heuristics may be slightly worse but not wildly.
        assert 4 <= width <= 6

    def test_ordering_must_be_permutation(self, path8):
        with pytest.raises(ValueError):
            tree_decomposition_from_ordering(path8, [0, 0, 1, 2, 3, 4, 5, 6])

    def test_unknown_strategy(self, path8):
        with pytest.raises(ValueError):
            treewidth_upper_bound(path8, strategy="magic")

    def test_disconnected_graph_supported(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        td = tree_decomposition_from_ordering(g, min_degree_ordering(g))
        assert td.is_valid_for(g)
