"""Unit tests for the centroid tree→path conversion."""

import math

import pytest

from repro.decomposition.elimination import treewidth_upper_bound
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.tree_to_path import tree_decomposition_to_path
from repro.graphs import generators


class TestTreeToPath:
    def test_converts_path_tree_decomposition(self, path8):
        td = TreeDecomposition.of_tree(path8)
        pd = tree_decomposition_to_path(td)
        assert pd.is_valid_for(path8), pd.violations(path8)

    def test_converts_star(self):
        g = generators.star_graph(16)
        pd = tree_decomposition_to_path(TreeDecomposition.of_tree(g))
        assert pd.is_valid_for(g)

    def test_converts_random_tree(self, random_tree_64):
        td = TreeDecomposition.of_tree(random_tree_64)
        pd = tree_decomposition_to_path(td)
        assert pd.is_valid_for(random_tree_64), pd.violations(random_tree_64)

    def test_width_blowup_is_logarithmic(self):
        for n in (31, 63, 127, 255):
            g = generators.binary_tree(n)
            td = TreeDecomposition.of_tree(g)
            pd = tree_decomposition_to_path(td)
            assert pd.is_valid_for(g)
            bound = (td.width() + 1) * (math.log2(td.num_bags) + 1)
            assert pd.width() <= bound

    def test_works_on_heuristic_decompositions(self, grid4x4, cycle12):
        for g in (grid4x4, cycle12):
            _, td = treewidth_upper_bound(g)
            pd = tree_decomposition_to_path(td)
            assert pd.is_valid_for(g), pd.violations(g)

    def test_single_bag(self):
        g = generators.complete_graph(4)
        td = TreeDecomposition.trivial(g)
        pd = tree_decomposition_to_path(td)
        assert pd.num_bags == 1
        assert pd.is_valid_for(g)

    def test_empty_decomposition_rejected(self):
        with pytest.raises(ValueError):
            tree_decomposition_to_path(TreeDecomposition([], []))
