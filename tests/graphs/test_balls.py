"""Unit tests for ball computation (the Theorem-4 substrate)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.balls import ball, ball_ranks, ball_sizes, growth_function, nodes_within
from repro.graphs.distances import bfs_distances


class TestBalls:
    def test_ball_on_path(self):
        g = generators.path_graph(10)
        members = ball(g, 5, 2)
        assert list(members) == [3, 4, 5, 6, 7]

    def test_ball_radius_zero(self):
        g = generators.cycle_graph(6)
        assert list(ball(g, 2, 0)) == [2]

    def test_ball_negative_radius_rejected(self):
        g = generators.cycle_graph(6)
        with pytest.raises(ValueError):
            ball(g, 0, -1)

    def test_ball_covers_whole_graph_at_diameter(self):
        g = generators.cycle_graph(9)
        assert len(ball(g, 0, 5)) == 9

    def test_ball_sizes_consistent_with_ball(self):
        g = generators.grid_graph([5, 5])
        sizes = ball_sizes(g, 12, [0, 1, 2, 3])
        for r, size in sizes.items():
            assert size == len(ball(g, 12, r))

    def test_ball_sizes_empty_radii(self):
        g = generators.path_graph(4)
        assert ball_sizes(g, 0, []) == {}

    def test_nodes_within_helper(self):
        g = generators.path_graph(6)
        dist = bfs_distances(g, 0)
        assert list(nodes_within(dist, 2)) == [0, 1, 2]

    def test_growth_function_monotone(self):
        g = generators.grid_graph([4, 4])
        growth = growth_function(g, 0)
        assert growth[0] == 1
        assert growth[-1] == 16
        assert np.all(np.diff(growth) >= 0)

    def test_ball_ranks_definition(self):
        g = generators.path_graph(40)
        num_levels = 5
        ranks = ball_ranks(g, 0, num_levels=num_levels)
        dist = bfs_distances(g, 0)
        for v in range(40):
            if dist[v] == 0:
                assert ranks[v] == 1
            elif dist[v] <= 2 ** num_levels:
                # r(v) is the smallest k with dist <= 2^k.
                k = ranks[v]
                assert dist[v] <= 2 ** k
                assert k == 1 or dist[v] > 2 ** (k - 1)
            else:
                assert ranks[v] == num_levels + 1

    def test_ball_ranks_requires_positive_levels(self):
        g = generators.path_graph(4)
        with pytest.raises(ValueError):
            ball_ranks(g, 0, num_levels=0)
