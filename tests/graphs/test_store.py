"""Tests for the cross-experiment GraphStore cache service (ISSUE-4).

Covers the acceptance criteria: with a run-wide store, a two-experiment
sweep over the same ``(family, n, seed)`` instances performs zero graph
rebuilds and zero repeat BFS sweeps in the second experiment
(counting-oracle test), the disk spill round-trips exactly and rejects
content-fingerprint mismatches, and ``--jobs N`` with the cache on stays
bitwise-identical to a serial sweep without it.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import render_markdown, run_all
from repro.graphs import generators
from repro.graphs.oracle import DistanceOracle
from repro.graphs.store import (
    SPILL_SCHEMA_VERSION,
    GraphStore,
    graph_fingerprint,
    load_oracle_spill,
    process_store,
    read_spill_header,
    write_oracle_spill,
)

TINY = ExperimentConfig(sizes=[48, 96], num_pairs=3, trials=3, seed=7)


class _RecordingFactory:
    """Oracle factory keeping every oracle it built (for hit/miss counting)."""

    def __init__(self):
        self.oracles = []

    def __call__(self, graph):
        oracle = DistanceOracle(graph)
        self.oracles.append(oracle)
        return oracle

    @property
    def total_misses(self):
        return sum(o.misses for o in self.oracles)

    @property
    def total_hits(self):
        return sum(o.hits for o in self.oracles)


def _ring(n, seed):
    return generators.cycle_graph(n)


class TestFingerprint:
    def test_structure_sensitive_name_insensitive(self):
        a = generators.cycle_graph(32)
        b = generators.cycle_graph(32).with_name("other-name")
        c = generators.path_graph(32)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)


class TestInstanceRegistry:
    def test_memoises_by_key(self):
        store = GraphStore()
        e1 = store.instance("ring", 64, 7, _ring)
        e2 = store.instance("ring", 64, 7, _ring)
        assert e1 is e2
        assert store.stats()["graph_builds"] == 1
        assert store.stats()["graph_hits"] == 1

    def test_distinct_keys_are_distinct_instances(self):
        store = GraphStore()
        base = store.instance("ring", 64, 7, _ring)
        assert store.instance("ring", 64, 8, _ring) is not base
        assert store.instance("ring", 48, 7, _ring) is not base
        assert store.instance("path", 64, 7, lambda n, s: generators.path_graph(n)) is not base
        assert store.stats()["graph_builds"] == 4

    def test_factory_extras_and_memoised_extra(self):
        store = GraphStore()
        entry = store.instance(
            "x", 16, 0, lambda n, s: (generators.path_graph(n), {"payload": 42})
        )
        assert entry.extras["payload"] == 42
        calls = []
        assert entry.extra("derived", lambda: calls.append(1) or "built") == "built"
        assert entry.extra("derived", lambda: calls.append(1) or "rebuilt") == "built"
        assert len(calls) == 1

    def test_oracle_factory_hook(self):
        factory = _RecordingFactory()
        store = GraphStore(oracle_factory=factory)
        entry = store.instance("ring", 32, 1, _ring)
        assert entry.oracle is factory.oracles[0]

    def test_max_instances_lru(self):
        store = GraphStore(max_instances=2)
        store.instance("ring", 32, 1, _ring)
        store.instance("ring", 48, 1, _ring)
        store.instance("ring", 64, 1, _ring)
        assert len(store) == 2
        assert store.stats()["instances"] == 2

    def test_invalid_max_instances(self):
        with pytest.raises(ValueError):
            GraphStore(max_instances=0)


class TestDiskSpill:
    def test_round_trip_serves_bfs_without_recompute(self, tmp_path):
        writer = GraphStore(spill_dir=tmp_path)
        entry = writer.instance("ring", 64, 7, _ring)
        entry.oracle.prefetch([1, 2, 3])
        entry.oracle.next_local_to(2)
        assert writer.spill() == 1
        assert writer.spill() == 0  # unchanged oracle: no rewrite

        # A fresh store (≈ another worker process) absorbs the arrays.
        reader = GraphStore(spill_dir=tmp_path)
        loaded = reader.instance("ring", 64, 7, _ring)
        assert reader.stats()["spill_loads"] == 1
        assert loaded.oracle.preloaded == 4  # 3 dist rows + 1 hop table
        np.testing.assert_array_equal(
            loaded.oracle.distances_from(2), entry.oracle.distances_from(2)
        )
        np.testing.assert_array_equal(
            loaded.oracle.next_local_to(2), entry.oracle.next_local_to(2)
        )
        assert loaded.oracle.misses == 0  # zero BFS repeated

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        writer = GraphStore(spill_dir=tmp_path)
        entry = writer.instance("ring", 64, 7, _ring)
        entry.oracle.prefetch([1, 2])
        writer.spill()

        # Same (family, n, seed) key, different generator: the spilled arrays
        # describe another graph and must NOT be absorbed.
        liar = GraphStore(spill_dir=tmp_path)
        other = liar.instance("ring", 64, 7, lambda n, s: generators.path_graph(n))
        assert liar.stats()["spill_rejected"] == 1
        assert liar.stats()["spill_loads"] == 0
        assert other.oracle.preloaded == 0
        # ... and the oracle still computes correct (fresh) distances.
        assert other.oracle(0, 63) == 63

    def test_corrupt_spill_rejected(self, tmp_path):
        writer = GraphStore(spill_dir=tmp_path)
        entry = writer.instance("ring", 64, 7, _ring)
        entry.oracle.prefetch([1])
        writer.spill()
        for path in tmp_path.glob("*.spill"):
            path.write_bytes(b"this is not a spill file")
        reader = GraphStore(spill_dir=tmp_path)
        loaded = reader.instance("ring", 64, 7, _ring)
        assert reader.stats()["spill_rejected"] == 1
        assert loaded.oracle.preloaded == 0

    def test_schema_version_stamped(self, tmp_path):
        store = GraphStore(spill_dir=tmp_path)
        entry = store.instance("ring", 32, 1, _ring)
        entry.oracle.prefetch([0])
        store.spill()
        (path,) = tmp_path.glob("*.spill")
        header, data_offset = read_spill_header(path)
        assert header["schema_version"] == SPILL_SCHEMA_VERSION
        assert header["fingerprint"] == entry.fingerprint
        assert data_offset % 64 == 0  # rows start page/cache-line aligned

    def test_eviction_spills_before_dropping(self, tmp_path):
        store = GraphStore(spill_dir=tmp_path, max_instances=1)
        first = store.instance("ring", 32, 1, _ring)
        first.oracle.prefetch([3])
        store.instance("ring", 48, 1, _ring)  # evicts the warmed instance
        assert store.stats()["spill_saves"] == 1
        # BFS work of the evicted oracle stays visible in the totals.
        assert store.stats()["bfs_misses"] >= 1


class TestProcessStore:
    def test_singleton_per_spill_dir(self, tmp_path):
        a = process_store(tmp_path)
        b = process_store(tmp_path)
        other = process_store(tmp_path / "elsewhere")
        assert a is b
        assert a is not other
        assert process_store() is process_store()


class TestCrossExperimentReuse:
    """The tentpole acceptance: second experiment = zero builds, zero BFS."""

    def test_second_experiment_zero_graph_builds_zero_bfs(self):
        factory = _RecordingFactory()
        store = GraphStore(oracle_factory=factory)

        # First experiment (EXP-6: ball + uniform over the standard families)
        # populates the store.
        run_all(TINY, only=["EXP-6"], store=store)
        builds_after_first = store.stats()["graph_builds"]
        misses_after_first = factory.total_misses
        assert builds_after_first > 0 and misses_after_first > 0

        # Second experiment (EXP-1: uniform over the SAME families/sizes):
        # every instance is a store hit and every BFS query — pair sampling,
        # routing targets, hop tables — is served from the warmed oracles.
        run_all(TINY, only=["EXP-1"], store=store)
        assert store.stats()["graph_builds"] == builds_after_first
        assert factory.total_misses == misses_after_first
        assert factory.total_hits > 0

    def test_full_sweep_shares_instances_across_experiments(self):
        factory = _RecordingFactory()
        store = GraphStore(oracle_factory=factory)
        stats = {}
        run_all(TINY, store=store, stats=stats)
        cells = len(stats["executed"])
        # Strictly fewer instances than cells: experiments pooled graphs.
        assert 0 < stats["store"]["graph_builds"] < cells
        assert stats["store"]["graph_hits"] > 0
        assert stats["store"]["bfs_hits"] > 0

    def test_store_on_vs_off_identical_markdown(self):
        baseline = run_all(TINY, only=["EXP-1", "EXP-6"])
        shared = run_all(TINY, only=["EXP-1", "EXP-6"], store=GraphStore())
        assert render_markdown(shared) == render_markdown(baseline)


class TestJobsParityWithCache:
    def test_jobs_with_graph_cache_bitwise_identical_to_serial(self, tmp_path):
        config = TINY.scaled(sizes=[48])
        serial = run_all(config, only=["EXP-1", "EXP-8"], jobs=1)
        parallel = run_all(
            config,
            only=["EXP-1", "EXP-8"],
            jobs=2,
            graph_cache=tmp_path / "cache",
        )
        assert render_markdown(parallel) == render_markdown(serial)
        # The workers spilled their warmed instances for later runs.
        assert list((tmp_path / "cache").glob("*.spill"))

    def test_serial_graph_cache_spills_and_reloads(self, tmp_path):
        cache = tmp_path / "cache"
        stats1 = {}
        first = run_all(TINY, only=["EXP-1"], graph_cache=cache, stats=stats1)
        assert stats1["store"]["spill_saves"] > 0

        stats2 = {}
        second = run_all(TINY, only=["EXP-1"], graph_cache=cache, stats=stats2)
        assert render_markdown(second) == render_markdown(first)
        # The second run loaded every instance's BFS arrays from the spill
        # instead of recomputing them.
        assert stats2["store"]["spill_loads"] == stats2["store"]["graph_builds"]
        assert stats2["store"]["bfs_preloaded"] > 0
        assert stats2["store"]["bfs_misses"] == 0


class TestRawSpillFormat:
    """The v2 raw memmap spill layout (write/read/load round trip)."""

    def _warmed_state(self, n=64, sources=(1, 2, 5), tables=(2,)):
        graph = generators.cycle_graph(n)
        oracle = DistanceOracle(graph)
        oracle.prefetch(sources)
        for t in tables:
            oracle.next_local_to(t)
        return graph, oracle, oracle.export_state()

    def test_memmap_round_trip_bitwise(self, tmp_path):
        graph, oracle, state = self._warmed_state()
        path = tmp_path / "x.spill"
        write_oracle_spill(path, state, fingerprint=graph_fingerprint(graph), n=64)
        loaded = load_oracle_spill(path, verify=True)
        np.testing.assert_array_equal(loaded["dist_sources"], state["dist_sources"])
        np.testing.assert_array_equal(loaded["dist_block"], state["dist_block"])
        np.testing.assert_array_equal(loaded["nl_targets"], state["nl_targets"])
        np.testing.assert_array_equal(loaded["nl_block"], state["nl_block"])
        # The blocks really are memmap-backed shared views, not copies.
        assert isinstance(loaded["dist_block"], np.memmap)
        assert not loaded["dist_block"].flags.writeable

    def test_absorbed_memmap_rows_are_budget_exempt(self, tmp_path):
        graph, oracle, state = self._warmed_state(sources=(1, 2, 5, 9))
        path = tmp_path / "x.spill"
        write_oracle_spill(path, state, fingerprint=graph_fingerprint(graph), n=64)
        row = oracle.distances_from(1).nbytes
        tight = DistanceOracle(graph, max_bytes=row)  # < the absorbed rows
        tight.absorb_state(load_oracle_spill(path), copy=False)
        assert tight.preloaded == 5
        # Mapped rows do not count against (or trip) the byte budget.
        assert tight.resident_bytes() == 0
        assert tight.cold_spills == 0
        assert tight.memory_stats()["mapped_bytes"] > 0
        np.testing.assert_array_equal(
            tight.distances_from(2), oracle.distances_from(2)
        )
        assert tight.misses == 0

    def test_truncated_file_rejected_and_recomputed(self, tmp_path):
        writer = GraphStore(spill_dir=tmp_path)
        entry = writer.instance("ring", 64, 7, _ring)
        entry.oracle.prefetch([1, 2])
        writer.spill()
        (path,) = tmp_path.glob("*.spill")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 17])  # chop the data section
        reader = GraphStore(spill_dir=tmp_path)
        loaded = reader.instance("ring", 64, 7, _ring)
        assert reader.stats()["spill_rejected"] == 1
        assert loaded.oracle.preloaded == 0
        assert loaded.oracle(0, 32) == 32  # recomputed, still correct

    def test_flipped_data_caught_by_verify(self, tmp_path):
        graph, oracle, state = self._warmed_state()
        path = tmp_path / "x.spill"
        write_oracle_spill(path, state, fingerprint=graph_fingerprint(graph), n=64)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # flip bits inside the data section, size unchanged
        path.write_bytes(bytes(data))
        load_oracle_spill(path)  # size/fingerprint checks alone cannot see it
        with pytest.raises(ValueError):
            load_oracle_spill(path, verify=True)

    def test_foreign_header_values_rejected(self, tmp_path):
        graph, oracle, state = self._warmed_state()
        path = tmp_path / "x.spill"
        write_oracle_spill(path, state, fingerprint="deadbeef", n=64)
        with pytest.raises(ValueError):
            load_oracle_spill(path, expected_fingerprint="cafebabe")
        with pytest.raises(ValueError):
            load_oracle_spill(path, expected_n=65)

    def test_empty_state_round_trips(self, tmp_path):
        graph = generators.cycle_graph(16)
        state = DistanceOracle(graph).export_state()
        path = tmp_path / "empty.spill"
        write_oracle_spill(path, state, fingerprint=graph_fingerprint(graph), n=16)
        loaded = load_oracle_spill(path, verify=True)
        assert loaded["dist_block"].shape == (0, 16)
        assert loaded["nl_block"].shape == (0, 16)
