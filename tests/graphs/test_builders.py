"""Unit tests for GraphBuilder."""

import pytest

from repro.graphs.builders import GraphBuilder


class TestGraphBuilder:
    def test_basic_build(self):
        g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_duplicate_edges_ignored(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        b.add_edge(0, 1)
        assert b.num_edges == 1
        assert b.build().num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(3).add_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(3).add_edge(0, 3)

    def test_add_path(self):
        g = GraphBuilder(5).add_path([0, 1, 2, 3, 4]).build()
        assert g.num_edges == 4
        assert g.has_edge(2, 3)

    def test_add_cycle(self):
        g = GraphBuilder(4).add_cycle([0, 1, 2, 3]).build()
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_add_cycle_too_short(self):
        with pytest.raises(ValueError):
            GraphBuilder(3).add_cycle([0, 1])

    def test_add_clique(self):
        g = GraphBuilder(4).add_clique([0, 1, 2, 3]).build()
        assert g.num_edges == 6

    def test_add_edges_bulk(self):
        g = GraphBuilder(4).add_edges([(0, 1), (2, 3)]).build()
        assert g.num_edges == 2

    def test_has_edge_before_build(self):
        b = GraphBuilder(3).add_edge(0, 2)
        assert b.has_edge(2, 0)
        assert not b.has_edge(0, 1)

    def test_empty_build(self):
        g = GraphBuilder(4).build()
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_builder_name_propagates(self):
        g = GraphBuilder(2, name="custom").add_edge(0, 1).build()
        assert g.name == "custom"
