"""Unit tests for connectivity helpers."""

from repro.graphs import generators
from repro.graphs.components import connected_components, is_connected, largest_component
from repro.graphs.graph import Graph


class TestComponents:
    def test_connected_graph_single_component(self, cycle12):
        comps = connected_components(cycle12)
        assert len(comps) == 1
        assert len(comps[0]) == 12

    def test_disconnected_graph(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert len(comps) == 4  # {0,1}, {2,3}, {4}, {5}
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 1, 2, 2]

    def test_is_connected(self, small_graphs):
        for g in small_graphs:
            assert is_connected(g)

    def test_is_connected_false(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not is_connected(g)

    def test_single_node_is_connected(self):
        assert is_connected(Graph.empty(1))

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph.empty(0))

    def test_largest_component(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (3, 4)])
        largest = largest_component(g)
        assert list(largest) == [0, 1, 2]

    def test_largest_component_empty_graph(self):
        assert len(largest_component(Graph.empty(0))) == 0
