"""Unit tests for networkx interoperability."""

import pytest

from repro.graphs import generators
from repro.graphs.conversion import from_networkx, to_networkx

nx = pytest.importorskip("networkx")


class TestConversion:
    def test_roundtrip_preserves_structure(self, small_graphs):
        for g in small_graphs:
            nxg = to_networkx(g)
            back, mapping = from_networkx(nxg)
            assert back.num_nodes == g.num_nodes
            assert back.num_edges == g.num_edges
            assert mapping == {i: i for i in range(g.num_nodes)}

    def test_to_networkx_counts(self, grid4x4):
        nxg = to_networkx(grid4x4)
        assert nxg.number_of_nodes() == 16
        assert nxg.number_of_edges() == grid4x4.num_edges

    def test_from_networkx_relabels_arbitrary_names(self):
        nxg = nx.Graph()
        nxg.add_edges_from([("a", "b"), ("b", "c")])
        g, mapping = from_networkx(nxg)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert set(mapping) == {"a", "b", "c"}

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g, _ = from_networkx(nxg)
        assert g.num_edges == 1

    def test_from_networkx_collapses_multiedges(self):
        nxg = nx.MultiGraph()
        nxg.add_edge(0, 1)
        nxg.add_edge(0, 1)
        g, _ = from_networkx(nxg)
        assert g.num_edges == 1
