"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.graphs.balls import ball
from repro.graphs.components import connected_components
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.graph import Graph


@st.composite
def random_graphs(draw):
    """Random simple graphs with 2..24 nodes."""
    n = draw(st.integers(min_value=2, max_value=24))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True))
    return Graph.from_edges(n, edges)


@st.composite
def connected_random_graphs(draw):
    """Random connected graphs: a random tree plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = set()
    for v in range(1, n):
        u = int(rng.integers(0, v))
        edges.add((u, v))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return Graph.from_edges(n, sorted(edges))


class TestGraphInvariants:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, g):
        assert int(g.degrees().sum()) == 2 * g.num_edges

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_symmetry(self, g):
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, g):
        comps = connected_components(g)
        all_nodes = sorted(int(v) for comp in comps for v in comp)
        assert all_nodes == list(range(g.num_nodes))

    @given(random_graphs(), st.integers(min_value=0, max_value=23))
    @settings(max_examples=60, deadline=None)
    def test_relabel_preserves_degree_multiset(self, g, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.num_nodes)
        h = g.relabel(perm)
        assert sorted(g.degrees()) == sorted(h.degrees())


class TestDistanceInvariants:
    @given(connected_random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality_from_two_sources(self, g):
        d0 = bfs_distances(g, 0)
        d1 = bfs_distances(g, g.num_nodes - 1)
        base = d0[g.num_nodes - 1]
        for v in range(g.num_nodes):
            assert base <= d0[v] + d1[v]

    @given(connected_random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_bfs_neighbour_consistency(self, g):
        dist = bfs_distances(g, 0)
        for u, v in g.edges():
            assert abs(int(dist[u]) - int(dist[v])) <= 1

    @given(connected_random_graphs(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_ball_monotone_in_radius(self, g, radius):
        center = 0
        smaller = set(map(int, ball(g, center, radius)))
        larger = set(map(int, ball(g, center, radius + 1)))
        assert smaller <= larger

    @given(connected_random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_all_reachable_in_connected_graph(self, g):
        dist = bfs_distances(g, 0)
        assert not np.any(dist == UNREACHABLE)


class TestGeneratorProperties:
    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_path_diameter_is_n_minus_1(self, n):
        g = generators.path_graph(n)
        dist = bfs_distances(g, 0)
        assert int(dist.max()) == n - 1

    @given(st.integers(min_value=3, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_cycle_edge_count(self, n):
        g = generators.cycle_graph(n)
        assert g.num_edges == n

    @given(st.integers(min_value=2, max_value=100), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_tree_always_tree(self, n, seed):
        g = generators.random_tree(n, seed=seed)
        assert g.num_edges == n - 1
        assert len(connected_components(g)) == 1
