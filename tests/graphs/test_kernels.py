"""Tests for the compiled kernel backend registry (``repro.graphs.kernels``).

Two layers:

* **Registry semantics** — always runnable: selection order (override > env
  var > auto), ``set_backend``/``use_backend`` round-trips, the single-warning
  numpy fallback when numba is requested but absent, warmup idempotence, and
  the fingerprint-invariance contract (the backend is *not* part of the
  experiment fingerprint because it cannot change results).
* **Compiled-kernel parity** — skipped without numba: every compiled kernel
  (top-down CSR, padded top-down, bottom-up, ``next_local`` fill) forced onto
  the graph portfolio (grid/ring/tree/disconnected/star) plus hypothesis
  random graphs, asserted bitwise equal to the numpy backend *and* the legacy
  reference, across the int32/int64 dtype-parity matrix.
"""

import logging
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.graphs import frontier as frontier_module
from repro.graphs import generators, kernels
from repro.graphs.distances import legacy_bfs_distances
from repro.graphs.frontier import bfs_distances_many, frontier_bfs
from repro.graphs.graph import Graph
from repro.graphs.oracle import next_local_pointers, next_local_pointers_many

HAVE_NUMBA = "numba" in kernels.available_backends()

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (pip install .[compiled])"
)


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    """Isolate each test from ambient/leaked backend selection state."""
    monkeypatch.delenv(kernels.BACKEND_ENV_VAR, raising=False)
    yield


def graph_portfolio():
    return [
        generators.path_graph(17),
        generators.cycle_graph(24),
        generators.grid_graph([5, 7]),
        generators.binary_tree(31),
        generators.random_tree(48, seed=11),
        generators.star_graph(20),
        generators.erdos_renyi_graph(60, 0.05, seed=5, connect=False),
        Graph.from_edges(9, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 4)], name="three-components"),
        Graph.empty(6),
    ]


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=60)) if possible else []
    return Graph.from_edges(n, edges, name=f"hyp-{n}")


# --------------------------------------------------------------------------- #
# Registry semantics (no numba required)
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_numpy_backend_always_available(self):
        assert "numpy" in kernels.available_backends()
        backend = kernels.get_backend("numpy")
        assert backend.name == "numpy"
        assert not backend.compiled
        # The numpy backend denotes "run the inline reference code": its
        # kernel slots stay empty so selecting it can never perturb them.
        assert backend.top_down_csr is None
        assert backend.next_local_fill is None

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernels.get_backend("cython")
        with pytest.raises(ValueError):
            kernels.active_backend("fastest")

    def test_default_resolution_is_auto(self):
        assert kernels.requested_backend() == "auto"
        backend = kernels.active_backend()
        assert backend.name == ("numba" if HAVE_NUMBA else "numpy")

    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numpy")
        assert kernels.requested_backend() == "numpy"
        assert kernels.active_backend().name == "numpy"

    def test_invalid_env_var_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "fortran")
        assert kernels.requested_backend() == "auto"
        assert kernels.active_backend().name in ("numpy", "numba")

    def test_set_backend_exports_env_var(self, monkeypatch):
        # set_backend writes os.environ so sweep worker processes inherit the
        # selection; monkeypatch's delenv teardown restores the original.
        backend = kernels.set_backend("numpy")
        assert backend.name == "numpy"
        assert os.environ[kernels.BACKEND_ENV_VAR] == "numpy"
        with pytest.raises(ValueError):
            kernels.set_backend("bogus")

    def test_use_backend_restores_previous_request(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "auto")
        with kernels.use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert kernels.requested_backend() == "numpy"
        assert kernels.requested_backend() == "auto"
        with pytest.raises(ValueError):
            with kernels.use_backend("bogus"):
                pass  # pragma: no cover

    def test_numpy_warmup_is_free(self):
        backend = kernels.get_backend("numpy")
        assert backend.warmup() == 0.0
        assert backend.warmup_seconds == 0.0
        with kernels.use_backend("numpy"):
            assert kernels.warmup_active() == 0.0

    def test_backend_stats_shape(self):
        with kernels.use_backend("numpy"):
            stats = kernels.backend_stats()
        assert stats["requested"] == "numpy"
        assert stats["active"] == "numpy"
        assert stats["compiled"] is False
        assert stats["jit_warmup_seconds"] == 0.0


class TestMissingNumbaFallback:
    @pytest.mark.skipif(HAVE_NUMBA, reason="covers the no-numba environment")
    def test_numba_request_falls_back_with_single_warning(self, caplog):
        kernels._warned_missing = False  # the guard is process-global
        with caplog.at_level(logging.WARNING, logger="repro.graphs.kernels"):
            first = kernels.active_backend("numba")
            second = kernels.active_backend("numba")
        assert first.name == "numpy" and second.name == "numpy"
        warnings = [r for r in caplog.records if "falling back" in r.getMessage()]
        assert len(warnings) == 1  # degrade cleanly: one warning, not one per call

    @pytest.mark.skipif(HAVE_NUMBA, reason="covers the no-numba environment")
    def test_get_backend_numba_raises_without_numba(self):
        with pytest.raises(RuntimeError, match="not available"):
            kernels.get_backend("numba")

    @pytest.mark.skipif(HAVE_NUMBA, reason="covers the no-numba environment")
    def test_forced_numba_still_computes_correctly(self, monkeypatch):
        # The fallback must be behavioural, not just cosmetic: a forced-numba
        # process without numba runs the numpy kernels bit-for-bit.
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numba")
        graph = generators.grid_graph([6, 7])
        np.testing.assert_array_equal(
            frontier_bfs(graph, 3), legacy_bfs_distances(graph, 3)
        )


class TestFingerprintInvariance:
    def test_backend_not_in_experiment_fingerprint(self):
        fingerprint = ExperimentConfig.quick().fingerprint()
        assert not any("kernel" in k or "backend" in k for k in fingerprint)

    def test_cell_payload_identical_across_backends(self):
        # The contract that justifies keeping the backend out of the
        # fingerprint: a computed cell payload must be identical under every
        # backend that can run here (numpy forced vs auto — which is numba
        # when installed).
        from repro.experiments import exp_uniform
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.quick().scaled(sizes=[48])
        family, n = exp_uniform.cell_keys(config)[0]
        with kernels.use_backend("numpy"):
            reference = exp_uniform.run_cell(config, family, n)
        with kernels.use_backend("auto"):
            auto = exp_uniform.run_cell(config, family, n)
        assert auto == reference
        if HAVE_NUMBA:
            with kernels.use_backend("numba"):
                compiled = exp_uniform.run_cell(config, family, n)
            assert compiled == reference


# --------------------------------------------------------------------------- #
# Compiled-kernel parity (numba only)
# --------------------------------------------------------------------------- #

#: Engine-knob settings forcing each compiled kernel onto every level: the
#: compiled top-down branch splits only on pad presence, and the bottom-up
#: trigger knobs force the compiled bottom-up probe.
COMPILED_KERNEL_CONFIGS = {
    "top_down_padded": {"_PAD_SLOT_BLOWUP": 1e9, "_BOTTOM_UP_RATIO": 0},
    "top_down_csr": {"_PAD_SLOT_BLOWUP": -1.0, "_BOTTOM_UP_RATIO": 0},
    "bottom_up": {
        "_PAD_SLOT_BLOWUP": 1e9, "_BOTTOM_UP_RATIO": 10**9, "_BOTTOM_UP_MIN_SHIFT": 63,
    },
}


class _forced_knobs:
    def __init__(self, name):
        self.overrides = COMPILED_KERNEL_CONFIGS[name]
        self.saved = {}

    def __enter__(self):
        for attr, value in self.overrides.items():
            self.saved[attr] = getattr(frontier_module, attr)
            setattr(frontier_module, attr, value)

    def __exit__(self, *exc):
        for attr, value in self.saved.items():
            setattr(frontier_module, attr, value)


class _forced_int64:
    def __enter__(self):
        self.saved = frontier_module._FORCE_INT64
        frontier_module._FORCE_INT64 = True

    def __exit__(self, *exc):
        frontier_module._FORCE_INT64 = self.saved


@needs_numba
class TestCompiledKernelParity:
    @pytest.mark.parametrize("kernel", sorted(COMPILED_KERNEL_CONFIGS))
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_batched_rows_match_numpy_and_legacy(self, kernel, graph):
        sources = list(range(graph.num_nodes)) + ([0] if graph.num_nodes else [])
        if not sources:
            return
        with _forced_knobs(kernel):
            graph.derived_cache().clear()
            with kernels.use_backend("numba"):
                compiled = bfs_distances_many(graph, sources)
            graph.derived_cache().clear()
            with kernels.use_backend("numpy"):
                reference = bfs_distances_many(graph, sources)
        np.testing.assert_array_equal(compiled, reference)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(compiled[row], legacy_bfs_distances(graph, source))

    @pytest.mark.parametrize("kernel", sorted(COMPILED_KERNEL_CONFIGS))
    def test_cutoff_matches_numpy(self, kernel):
        graph = generators.grid_graph([6, 7])
        sources = [0, 11, 41]
        for cutoff in (0, 1, 3, 6):
            with _forced_knobs(kernel):
                graph.derived_cache().clear()
                with kernels.use_backend("numba"):
                    compiled = bfs_distances_many(graph, sources, cutoff=cutoff)
                graph.derived_cache().clear()
                with kernels.use_backend("numpy"):
                    reference = bfs_distances_many(graph, sources, cutoff=cutoff)
            np.testing.assert_array_equal(compiled, reference)

    @pytest.mark.parametrize("kernel", sorted(COMPILED_KERNEL_CONFIGS))
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_int32_int64_parity_matrix(self, kernel, graph):
        """Compiled kernels x {int32, int64} state: all four ways identical."""
        sources = list(range(0, graph.num_nodes, 2))
        if not sources:
            return
        blocks = {}
        for backend in ("numpy", "numba"):
            for force64 in (False, True):
                with _forced_knobs(kernel):
                    graph.derived_cache().clear()
                    if force64:
                        with _forced_int64(), kernels.use_backend(backend):
                            block = bfs_distances_many(graph, sources)
                        assert block.dtype == np.int64
                    else:
                        with kernels.use_backend(backend):
                            block = bfs_distances_many(graph, sources)
                        assert block.dtype == np.int32
                blocks[(backend, force64)] = block
        reference = blocks[("numpy", False)]
        for key, block in blocks.items():
            np.testing.assert_array_equal(block, reference, err_msg=str(key))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        kernel = data.draw(st.sampled_from(sorted(COMPILED_KERNEL_CONFIGS)))
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=5)
        )
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 6)))
        with _forced_knobs(kernel):
            graph.derived_cache().clear()
            with kernels.use_backend("numba"):
                compiled = bfs_distances_many(graph, sources, cutoff=cutoff)
            graph.derived_cache().clear()
            with kernels.use_backend("numpy"):
                reference = bfs_distances_many(graph, sources, cutoff=cutoff)
        np.testing.assert_array_equal(compiled, reference)


@needs_numba
class TestCompiledNextLocalParity:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_matches_numpy_and_per_target_reference(self, graph):
        if graph.num_nodes == 0:
            return
        targets = list(range(0, graph.num_nodes, 2))
        with kernels.use_backend("numpy"):
            dist_block = bfs_distances_many(graph, targets)
            reference = next_local_pointers_many(graph, dist_block)
        with kernels.use_backend("numba"):
            compiled = next_local_pointers_many(graph, dist_block)
        np.testing.assert_array_equal(compiled, reference)
        for row, t in enumerate(targets):
            np.testing.assert_array_equal(
                compiled[row], next_local_pointers(graph, dist_block[row])
            )

    def test_int64_dist_block_parity(self):
        graph = generators.grid_graph([5, 7])
        targets = [0, 9, 34]
        with _forced_int64(), kernels.use_backend("numpy"):
            dist_block = bfs_distances_many(graph, targets)
            reference = next_local_pointers_many(graph, dist_block)
        with _forced_int64(), kernels.use_backend("numba"):
            compiled = next_local_pointers_many(graph, dist_block)
        assert dist_block.dtype == np.int64
        np.testing.assert_array_equal(compiled, reference)

    @settings(max_examples=30, deadline=None)
    @given(graph=random_graphs())
    def test_random_graphs_property(self, graph):
        targets = list(range(graph.num_nodes))
        with kernels.use_backend("numpy"):
            dist_block = bfs_distances_many(graph, targets)
            reference = next_local_pointers_many(graph, dist_block)
        with kernels.use_backend("numba"):
            compiled = next_local_pointers_many(graph, dist_block)
        np.testing.assert_array_equal(compiled, reference)


@needs_numba
class TestCompiledWarmup:
    def test_warmup_idempotent_and_timed(self):
        backend = kernels.get_backend("numba")
        first = backend.warmup()
        assert first >= 0.0
        assert backend.warmup() == first  # one-time: repeated calls are free
        assert kernels.backend_stats()["jit_warmup_seconds"] is not None
