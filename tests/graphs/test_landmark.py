"""Landmark distance-provider tests (ISSUE-10).

Covers the acceptance criteria of the pluggable provider layer:

* **admissibility** — landmark estimates are upper bounds (``est >= exact``
  everywhere), triangle-tight at the landmarks themselves, and *exact* for any
  pair whose shortest path passes through a pivot,
* **purity/determinism** — the sketch is a function of ``(graph, seed, L)``
  alone: identical across rebuilds and unaffected by the exact cache's state,
* **exact-mode bitwise identity** — a sweep under the provider layer's
  ``distance_mode="exact"`` default produces payloads equal to a sweep with a
  hand-injected plain :class:`DistanceOracle` (the historical pipeline),
* **routing parity** — landmark-mode routing on ring/grid/kleinberg stays
  successful with means comparable to exact mode (trajectories ride the exact
  tier in both modes; only bulk queries differ),
* **BFS savings** — a ring ball-scheme cell builds its routing-distance
  surface with >= 5x fewer full-graph BFS sweeps under the landmark provider
  (counting-oracle test; the million-node variant is env-gated).
"""

import os

import numpy as np
import pytest

from repro.core.ball_scheme import BallScheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_all
from repro.graphs import generators
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.landmark import LandmarkOracle
from repro.graphs.oracle import DistanceOracle
from repro.graphs.provider import (
    DISTANCE_MODES,
    DistanceProvider,
    make_distance_provider,
)
from repro.graphs.store import GraphStore
from repro.routing.simulator import estimate_greedy_diameter
from repro.session import open_session


def _two_paths(n_each=12):
    """Two disjoint paths in one graph (disconnected test case)."""
    from repro.graphs.builders import GraphBuilder

    b = GraphBuilder(2 * n_each)
    for i in range(n_each - 1):
        b.add_edge(i, i + 1)
        b.add_edge(n_each + i, n_each + i + 1)
    return b.build()


class TestProtocol:
    def test_oracle_and_landmark_satisfy_protocol(self):
        g = generators.cycle_graph(32)
        assert isinstance(DistanceOracle(g), DistanceProvider)
        assert isinstance(LandmarkOracle(g, num_landmarks=2), DistanceProvider)

    def test_make_distance_provider_modes(self):
        g = generators.cycle_graph(32)
        assert make_distance_provider(g, "exact").mode == "exact"
        lm = make_distance_provider(g, "landmark", landmarks=3, seed=5)
        assert lm.mode == "landmark"
        assert isinstance(lm, LandmarkOracle)
        with pytest.raises(ValueError, match="exact, landmark"):
            make_distance_provider(g, "psychic")
        assert DISTANCE_MODES == ("exact", "landmark")

    def test_exact_query_tier_is_the_cache(self):
        g = generators.cycle_graph(64)
        oracle = DistanceOracle(g)
        row = oracle.query_distances_from(3)
        np.testing.assert_array_equal(row, bfs_distances(g, 3))
        assert oracle.misses == 1
        oracle.query_distances_from(3)
        assert oracle.hits == 1  # identical accounting to distances_from

    def test_num_landmarks_validation(self):
        g = generators.cycle_graph(16)
        with pytest.raises(ValueError, match="at least 1"):
            LandmarkOracle(g, num_landmarks=0)


class TestAdmissibility:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.cycle_graph(97),
            generators.torus_graph([7, 9]),
            generators.random_tree(80, seed=3),
            generators.watts_strogatz_graph(90, 4, 0.2, seed=5),
        ],
        ids=["ring", "torus", "tree", "small-world"],
    )
    def test_estimates_are_upper_bounds(self, graph):
        oracle = LandmarkOracle(graph, num_landmarks=6, seed=11)
        for source in range(0, graph.num_nodes, 13):
            est = oracle.query_distances_from(source)
            exact = bfs_distances(graph, source)
            reachable = exact != UNREACHABLE
            assert (est[reachable] >= exact[reachable]).all()
            # Connected graphs: the sketch never invents unreachability.
            np.testing.assert_array_equal(est == UNREACHABLE, exact == UNREACHABLE)

    def test_tight_at_landmarks(self):
        graph = generators.torus_graph([8, 8])
        oracle = LandmarkOracle(graph, num_landmarks=5, seed=2)
        for pivot in oracle.landmarks.tolist():
            est = oracle.query_distances_from(pivot)
            np.testing.assert_array_equal(est, bfs_distances(graph, pivot))

    def test_exact_on_paths_through_a_pivot(self):
        graph = generators.cycle_graph(61)
        oracle = LandmarkOracle(graph, num_landmarks=4, seed=9)
        pivots = oracle.landmarks.tolist()
        pivot_rows = {l: bfs_distances(graph, l) for l in pivots}
        for source in range(0, graph.num_nodes, 7):
            est = oracle.query_distances_from(source)
            exact = bfs_distances(graph, source)
            for target in range(0, graph.num_nodes, 5):
                through = min(
                    int(row[source]) + int(row[target]) for row in pivot_rows.values()
                )
                # The sketch IS the min over pivots ...
                assert int(est[target]) == through
                # ... so a shortest path through any pivot makes it exact.
                if through == int(exact[target]):
                    assert int(est[target]) == int(exact[target])

    def test_disconnected_components_each_get_pivots(self):
        graph = _two_paths(12)
        oracle = LandmarkOracle(graph, num_landmarks=4, seed=1)
        comp = {l < 12 for l in oracle.landmarks.tolist()}
        assert comp == {True, False}  # farthest-point covers both components
        est = oracle.query_distances_from(0)
        exact = bfs_distances(graph, 0)
        np.testing.assert_array_equal(est == UNREACHABLE, exact == UNREACHABLE)
        reachable = exact != UNREACHABLE
        assert (est[reachable] >= exact[reachable]).all()


class TestDeterminismAndPurity:
    def test_pivots_and_rows_deterministic(self):
        g1 = generators.torus_graph([9, 9])
        g2 = generators.torus_graph([9, 9])
        a = LandmarkOracle(g1, num_landmarks=7, seed=21)
        b = LandmarkOracle(g2, num_landmarks=7, seed=21)
        np.testing.assert_array_equal(a.landmarks, b.landmarks)
        np.testing.assert_array_equal(
            a.query_distances_from(5), b.query_distances_from(5)
        )

    def test_sketch_ignores_exact_cache_state(self):
        g = generators.cycle_graph(50)
        cold = LandmarkOracle(g, num_landmarks=3, seed=4)
        warm = LandmarkOracle(g, num_landmarks=3, seed=4)
        for node in range(50):  # fully warm the exact tier
            warm.distances_from(node)
        for node in range(0, 50, 3):
            np.testing.assert_array_equal(
                cold.query_distances_from(node), warm.query_distances_from(node)
            )

    def test_clear_resets_sketch(self):
        g = generators.cycle_graph(40)
        oracle = LandmarkOracle(g, num_landmarks=3, seed=4)
        first = oracle.landmarks.copy()
        oracle.clear()
        np.testing.assert_array_equal(oracle.landmarks, first)

    def test_spill_state_roundtrip(self):
        g = generators.cycle_graph(48)
        warm = LandmarkOracle(g, num_landmarks=4, seed=6)
        _ = warm.landmarks  # pivot rows land in the exact cache
        state = warm.export_state()
        absorbed = LandmarkOracle(g, num_landmarks=4, seed=6)
        absorbed.absorb_state(state)
        # The sketch rebuild is pure cache hits: zero fresh BFS sweeps.
        _ = absorbed.landmarks
        assert absorbed.misses == 0
        np.testing.assert_array_equal(absorbed.landmarks, warm.landmarks)
        np.testing.assert_array_equal(
            absorbed.query_distances_from(7), warm.query_distances_from(7)
        )

    def test_distance_stats_surface(self):
        g = generators.cycle_graph(64)
        oracle = LandmarkOracle(g, num_landmarks=4, seed=3)
        stats = oracle.distance_stats()
        assert stats["mode"] == "landmark" and stats["mean_stretch"] is None
        oracle.query_distances_from(1)
        oracle.distances_from(9)  # a non-pivot exact row to sample stretch on
        stats = oracle.distance_stats()
        assert stats["sketch_queries"] == 1
        assert stats["landmark_sweeps"] == 4
        assert stats["stretch_rows"] >= 1
        assert stats["mean_stretch"] >= 1.0  # admissible => stretch >= 1
        exact_stats = DistanceOracle(g).distance_stats()
        assert exact_stats["mode"] == "exact"
        assert exact_stats["mean_stretch"] is None


TINY = ExperimentConfig(sizes=[48, 96], num_pairs=3, trials=3, seed=7)


class TestExactModeBitwiseIdentity:
    def test_payloads_equal_plain_oracle_pipeline(self):
        """The provider layer's exact default is the historical pipeline."""
        stats_default: dict = {}
        default = run_all(
            TINY, only=["EXP-1", "EXP-6"], verbose=False, stats=stats_default
        )
        legacy_store = GraphStore(oracle_factory=DistanceOracle)
        legacy = run_all(
            TINY, only=["EXP-1", "EXP-6"], verbose=False, store=legacy_store
        )
        for exp_id in default:
            assert default[exp_id].to_markdown() == legacy[exp_id].to_markdown()
        assert stats_default["store"]["distance_mode"] == "exact"
        assert stats_default["store"]["sketch_queries"] == 0
        assert stats_default["store"]["mean_stretch"] is None

    def test_artifact_payload_equality(self, tmp_path):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        run_all(TINY, only=["EXP-1"], verbose=False, artifacts_dir=out_a)
        run_all(
            TINY,
            only=["EXP-1"],
            verbose=False,
            artifacts_dir=out_b,
            store=GraphStore(oracle_factory=DistanceOracle),
        )
        files_a = sorted(p.name for p in out_a.glob("*.json"))
        files_b = sorted(p.name for p in out_b.glob("*.json"))
        assert files_a and files_a == files_b
        for name in files_a:
            assert (out_a / name).read_bytes() == (out_b / name).read_bytes()

    def test_fingerprint_records_distance_mode(self):
        fp = TINY.fingerprint()
        assert fp["distance_mode"] == "exact" and fp["landmarks"] == 16
        landmark_fp = TINY.scaled(distance_mode="landmark", landmarks=8).fingerprint()
        assert landmark_fp != fp
        assert ExperimentConfig(**landmark_fp).distance_mode == "landmark"


class TestLandmarkRouting:
    @pytest.mark.parametrize(
        "graph,scheme_name",
        [
            (generators.cycle_graph(128), "uniform"),
            (generators.torus_graph([12, 12]), "ball"),
            (generators.torus_graph([12, 12]), "kleinberg"),
        ],
        ids=["ring-uniform", "grid-ball", "grid-kleinberg"],
    )
    def test_success_and_mean_comparable_to_exact(self, graph, scheme_name):
        from repro.core.registry import make_scheme

        estimates = {}
        for mode in DISTANCE_MODES:
            oracle = make_distance_provider(graph, mode, landmarks=8, seed=17)
            kwargs = {"oracle": oracle} if scheme_name == "ball" else {}
            scheme = make_scheme(scheme_name, graph, seed=17, **kwargs)
            estimates[mode] = estimate_greedy_diameter(
                graph,
                scheme,
                num_pairs=6,
                trials=6,
                seed=17,
                oracle=oracle,
            )
        exact, landmark = estimates["exact"], estimates["landmark"]
        # Trajectories ride the exact tier in both modes: no failures.
        assert exact.failed_trials == 0 and landmark.failed_trials == 0
        assert landmark.mean > 0
        # Only the sampled pair sets differ; the admissible sketch keeps the
        # extremal draws near-extremal, so the means stay comparable.
        assert landmark.mean <= 2.0 * exact.mean + 2.0
        assert landmark.mean >= 0.25 * exact.mean


def _count_ball_cell_misses(graph, oracle, seed=23):
    """Full-graph BFS sweeps needed to route a ball-scheme cell on *graph*."""
    scheme = BallScheme(graph, seed=seed, oracle=oracle)
    estimate = estimate_greedy_diameter(
        graph, scheme, num_pairs=4, trials=4, seed=seed, oracle=oracle
    )
    assert estimate.failed_trials == 0
    return oracle.misses


class TestBFSSavings:
    def test_ring_ball_cell_five_x_fewer_sweeps(self):
        """Acceptance: landmark mode needs >= 5x fewer full-graph BFS sweeps.

        In exact mode every route-visited node's ball profile and every
        sampled pair source costs one BFS; in landmark mode those ride the
        sketch and only the L pivots plus the routing-block targets pay one.
        """
        n = 2048
        exact_misses = _count_ball_cell_misses(
            generators.cycle_graph(n), DistanceOracle(generators.cycle_graph(n))
        )
        graph = generators.cycle_graph(n)
        landmark = LandmarkOracle(graph, num_landmarks=16, seed=23)
        landmark_misses = _count_ball_cell_misses(graph, landmark)
        assert landmark_misses > 0
        assert exact_misses >= 5 * landmark_misses, (
            f"exact={exact_misses} landmark={landmark_misses}"
        )
        # The sketch answered the bulk queries BFS used to serve.
        assert landmark.sketch_queries > 0

    def test_profile_cache_honours_oracle_byte_budget(self):
        """A max_bytes oracle bounds the scheme's profile cache too.

        Ball profiles are two full-width arrays per node (~16 MB each at
        n = 10^6) — without the byte cap they defeat the oracle budget the
        million-node cell depends on.
        """
        n = 512
        graph = generators.cycle_graph(n)
        # Budget fits a handful of int32 rows; each profile is ~2 rows wide.
        budget = 16 * n * 4
        oracle = LandmarkOracle(graph, num_landmarks=4, seed=3, max_bytes=budget)
        scheme = BallScheme(graph, seed=3, oracle=oracle)
        rng = np.random.default_rng(3)
        for node in rng.integers(0, n, size=64):
            scheme._ball_profile(int(node))
        assert scheme._profile_bytes <= budget
        assert 1 <= len(scheme._profiles) < 64
        # The newest profile is always resident and still a sorted profile
        # (sketch distances under a landmark provider: est(u, u) > 0).
        newest = next(reversed(scheme._profiles))
        dist_sorted, ids = scheme._ball_profile(newest)
        assert dist_sorted.size == ids.size == n
        assert (np.diff(dist_sorted) >= 0).all()

    @pytest.mark.skipif(
        not os.environ.get("REPRO_LANDMARK_FULL"),
        reason="million-node landmark cell; set REPRO_LANDMARK_FULL=1",
    )
    def test_million_node_ring_cell(self):
        """10^6-node ring: the landmark cell is feasible and sketch-dominated.

        Exact mode is not run (it would BFS every visited node of a
        500k-diameter ring); instead every sketch-served query row is counted
        — each distinct one is a BFS sweep exact mode would have paid — and
        the 5x claim is checked against the sweeps landmark mode did run.
        The oracle carries the acceptance run's 512 MiB budget, which also
        caps the ball scheme's profile cache (16 MB per visited node).
        """
        n = 1_000_000
        graph = generators.cycle_graph(n)
        oracle = LandmarkOracle(
            graph, num_landmarks=16, seed=23, max_bytes=512 * 1024 * 1024
        )
        scheme = BallScheme(graph, seed=23, oracle=oracle)
        estimate = estimate_greedy_diameter(
            graph, scheme, num_pairs=2, trials=2, seed=23, oracle=oracle
        )
        assert estimate.failed_trials == 0
        misses = oracle.misses
        assert oracle.sketch_queries >= 5 * misses
        stats = oracle.distance_stats()
        assert stats["mean_stretch"] is None or stats["mean_stretch"] >= 1.0


class TestStoreAndSessionWiring:
    def test_store_builds_landmark_providers_seeded_per_instance(self):
        store = GraphStore(distance_mode="landmark", landmarks=4)
        e1 = store.instance("ring", 64, 9, lambda n, s: generators.cycle_graph(n))
        assert isinstance(e1.oracle, LandmarkOracle)
        rebuilt = LandmarkOracle(generators.cycle_graph(64), num_landmarks=4, seed=9)
        np.testing.assert_array_equal(e1.oracle.landmarks, rebuilt.landmarks)

    def test_store_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="distance_mode"):
            GraphStore(distance_mode="psychic")

    def test_store_stats_aggregate_sketch_counters(self):
        store = GraphStore(distance_mode="landmark", landmarks=4)
        entry = store.instance("ring", 64, 9, lambda n, s: generators.cycle_graph(n))
        entry.oracle.query_distances_from(1)
        entry.oracle.distances_from(33)
        stats = store.stats()
        assert stats["distance_mode"] == "landmark"
        assert stats["sketch_queries"] == 1
        assert stats["landmark_sweeps"] == 4
        assert stats["mean_stretch"] >= 1.0

    def test_session_info_and_mode_independent_trajectories(self):
        with open_session("ring", 129, seed=5, scheme="uniform") as exact:
            exact_info = exact.info()
            exact_outcome = exact.route(3, 64)
        with open_session(
            "ring", 129, seed=5, scheme="uniform", distance_mode="landmark", landmarks=6
        ) as lm:
            lm_info = lm.info()
            lm_outcome = lm.route(3, 64)
        assert exact_info["distance_mode"] == "exact"
        assert "landmarks" not in exact_info
        assert lm_info["distance_mode"] == "landmark"
        assert lm_info["landmarks"] == 6
        # Served trajectories ride the exact tier: identical in both modes.
        assert exact_outcome == lm_outcome

    def test_session_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="distance_mode"):
            open_session("ring", 32, distance_mode="psychic")
