"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.components import is_connected
from repro.graphs.distances import diameter


class TestDeterministicFamilies:
    def test_path_graph(self):
        g = generators.path_graph(10)
        assert g.num_nodes == 10
        assert g.num_edges == 9
        assert g.degree(0) == 1 and g.degree(9) == 1
        assert all(g.degree(v) == 2 for v in range(1, 9))

    def test_path_graph_single_node(self):
        g = generators.path_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_cycle_graph(self):
        g = generators.cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))
        assert diameter(g) == 3

    def test_cycle_graph_minimum_size(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_complete_graph(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_star_graph(self):
        g = generators.star_graph(9)
        assert g.num_edges == 8
        assert g.degree(0) == 8
        assert diameter(g) == 2

    def test_grid_graph(self):
        g = generators.grid_graph([3, 4])
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # vertical + horizontal edges
        assert diameter(g) == (3 - 1) + (4 - 1)

    def test_torus_graph(self):
        g = generators.torus_graph([4, 4])
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in range(16))
        assert diameter(g) == 4

    def test_grid_3d(self):
        g = generators.grid_graph([2, 2, 2])
        assert g.num_nodes == 8
        assert g.num_edges == 12
        assert diameter(g) == 3

    def test_hypercube(self):
        g = generators.hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in range(16))
        assert diameter(g) == 4

    def test_balanced_tree(self):
        g = generators.balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_binary_tree(self):
        g = generators.binary_tree(10)
        assert g.num_nodes == 10
        assert g.num_edges == 9
        assert is_connected(g)

    def test_caterpillar(self):
        g = generators.caterpillar_graph(5, 2)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_spider(self):
        g = generators.spider_graph(3, 4)
        assert g.num_nodes == 13
        assert g.num_edges == 12
        assert g.degree(0) == 3
        assert diameter(g) == 8

    def test_lollipop(self):
        g = generators.lollipop_graph(5, 10)
        assert g.num_nodes == 15
        assert is_connected(g)
        assert g.num_edges == 10 + 10  # clique edges + tail edges

    def test_barbell(self):
        g = generators.barbell_graph(4, 3)
        assert g.num_nodes == 11
        assert is_connected(g)


class TestIntersectionFamilies:
    def test_interval_graph_manual(self):
        intervals = [(0, 2), (1, 3), (4, 5)]
        g = generators.interval_graph(intervals)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_interval_graph_invalid_interval(self):
        with pytest.raises(ValueError):
            generators.interval_graph([(2, 1)])

    def test_random_interval_graph_connected(self):
        g, intervals = generators.random_interval_graph(60, seed=3)
        assert g.num_nodes == 60
        assert len(intervals) == 60
        assert is_connected(g)

    def test_random_interval_graph_matches_model(self):
        g, intervals = generators.random_interval_graph(40, seed=5)
        regenerated = generators.interval_graph(intervals)
        assert g.same_structure(regenerated)

    def test_permutation_graph_inversions(self):
        g = generators.permutation_graph([2, 0, 1])
        # positions (0,1): 2>0 edge; (0,2): 2>1 edge; (1,2): 0<1 no edge.
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert not g.has_edge(1, 2)

    def test_permutation_graph_identity_has_no_edges(self):
        g = generators.permutation_graph(list(range(6)))
        assert g.num_edges == 0

    def test_permutation_graph_requires_permutation(self):
        with pytest.raises(ValueError):
            generators.permutation_graph([0, 0, 1])

    def test_random_permutation_graph_connected(self):
        g, perm = generators.random_permutation_graph(80, seed=11)
        assert g.num_nodes == 80
        assert sorted(perm) == list(range(80))
        assert is_connected(g)


class TestRandomModels:
    def test_random_tree_is_tree(self):
        g = generators.random_tree(50, seed=1)
        assert g.num_edges == 49
        assert is_connected(g)

    def test_random_tree_small_cases(self):
        assert generators.random_tree(1).num_nodes == 1
        g2 = generators.random_tree(2)
        assert g2.num_edges == 1
        g3 = generators.random_tree(3, seed=0)
        assert g3.num_edges == 2

    def test_random_tree_deterministic_with_seed(self):
        a = generators.random_tree(30, seed=9)
        b = generators.random_tree(30, seed=9)
        assert a.same_structure(b)

    def test_erdos_renyi_connected_patch(self):
        g = generators.erdos_renyi_graph(40, 0.02, seed=2, connect=True)
        assert is_connected(g)

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_dense(self):
        g = generators.erdos_renyi_graph(20, 1.0, seed=1, connect=False)
        assert g.num_edges == 190

    def test_watts_strogatz_degree_and_connectivity(self):
        g = generators.watts_strogatz_graph(64, 4, 0.1, seed=4)
        assert g.num_nodes == 64
        assert is_connected(g)
        # Average degree stays close to k.
        assert 3.0 <= g.degrees().mean() <= 4.5

    def test_watts_strogatz_rejects_odd_k(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz_graph(16, 3, 0.1)

    def test_watts_strogatz_zero_beta_is_ring_lattice(self):
        g = generators.watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert all(g.degree(v) == 4 for v in range(20))

    def test_random_regular(self):
        g = generators.random_regular_graph(30, 3, seed=8)
        assert all(g.degree(v) == 3 for v in range(30))

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(9, 3)

    def test_random_regular_degree_too_large(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(4, 4)

    def test_seeded_generators_are_deterministic(self):
        for factory in (
            lambda s: generators.erdos_renyi_graph(30, 0.1, seed=s),
            lambda s: generators.watts_strogatz_graph(30, 4, 0.2, seed=s),
            lambda s: generators.random_interval_graph(30, seed=s)[0],
        ):
            assert factory(5).same_structure(factory(5))
