"""Unit tests for the CSR Graph type."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_edges(3, [(0, 0)])

    def test_from_edges_rejects_duplicate(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph.from_edges(3, [(0, 1), (1, 0)])

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 5)])

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_zero_node_graph(self):
        g = Graph.empty(0)
        assert g.num_nodes == 0

    def test_csr_validation_detects_asymmetry(self):
        # Arc 0->1 without the reverse arc.
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError, match="symmetric"):
            Graph(indptr, indices)

    def test_csr_validation_detects_unsorted_neighbours(self):
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(ValueError):
            Graph(indptr, indices)

    def test_indptr_must_match_indices(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2]), np.array([1]))


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph.from_edges(5, [(0, 3), (0, 1), (0, 4)])
        assert list(g.neighbors(0)) == [1, 3, 4]

    def test_degree_and_degrees(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert list(g.degrees()) == [3, 1, 1, 1]

    def test_has_edge(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_iteration_is_canonical(self):
        edges = [(0, 1), (1, 2), (0, 3)]
        g = Graph.from_edges(4, edges)
        assert sorted(g.edges()) == sorted(edges)
        assert all(u < v for u, v in g.edges())

    def test_edge_list_matches_num_edges(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
        assert len(g.edge_list()) == g.num_edges

    def test_neighbors_view_is_read_only(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            g.neighbors(1)[0] = 7

    def test_adjacency_sets(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.adjacency_sets() == [{1}, {0, 2}, {1}]

    def test_node_index_validation(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.degree(3)
        with pytest.raises(ValueError):
            g.neighbors(-1)


class TestDerivedGraphs:
    def test_subgraph_induced(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, mapping = g.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # edges (0,1) and (1,2)
        assert list(mapping) == [0, 1, 2]

    def test_subgraph_remaps_indices(self):
        g = Graph.from_edges(5, [(2, 4), (2, 3)])
        sub, mapping = g.subgraph([2, 3, 4])
        assert set(sub.edges()) == {(0, 1), (0, 2)}
        assert list(mapping) == [2, 3, 4]

    def test_relabel_roundtrip(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        perm = [3, 2, 1, 0]
        h = g.relabel(perm)
        assert h.num_edges == g.num_edges
        assert h.has_edge(3, 2) and h.has_edge(2, 1) and h.has_edge(1, 0)

    def test_relabel_requires_permutation(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])

    def test_with_name(self):
        g = Graph.from_edges(2, [(0, 1)], name="a")
        h = g.with_name("b")
        assert h.name == "b"
        assert h.same_structure(g)

    def test_same_structure(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        h = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert g.same_structure(h)
        k = Graph.from_edges(3, [(0, 1)])
        assert not g.same_structure(k)
