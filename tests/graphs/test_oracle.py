"""Unit tests for the shared LRU-capped DistanceOracle."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.oracle import DistanceOracle
from repro.graphs.balls import ball


class TestBasicQueries:
    def test_distances_match_bfs(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        for source in range(grid4x4.num_nodes):
            np.testing.assert_array_equal(
                oracle.distances_from(source), bfs_distances(grid4x4, source)
            )

    def test_distances_to_aliases_from(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.distances_to(3) is oracle.distances_from(3)

    def test_callable_pairwise(self, path8):
        oracle = DistanceOracle(path8)
        assert oracle(0, 7) == 7
        assert oracle(4, 4) == 0

    def test_unreachable_pairs(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        oracle = DistanceOracle(g)
        assert oracle(0, 3) == UNREACHABLE

    def test_cached_arrays_are_read_only(self, cycle12):
        oracle = DistanceOracle(cycle12)
        arr = oracle.distances_from(0)
        with pytest.raises(ValueError):
            arr[0] = 99


class TestCachePolicy:
    def test_repeat_queries_hit_cache(self, cycle12):
        oracle = DistanceOracle(cycle12)
        a = oracle.distances_from(5)
        b = oracle.distances_from(5)
        assert a is b
        assert oracle.hits == 1 and oracle.misses == 1
        assert oracle.cache_size() == 1

    def test_lru_eviction(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=2)
        oracle.distances_from(0)
        oracle.distances_from(1)
        oracle.distances_from(0)  # refresh 0 -> 1 is now least recent
        oracle.distances_from(2)  # evicts 1
        assert oracle.cache_size() == 2
        misses = oracle.misses
        oracle.distances_from(1)  # must recompute
        assert oracle.misses == misses + 1

    def test_invalid_cap_rejected(self, cycle12):
        with pytest.raises(ValueError):
            DistanceOracle(cycle12, max_entries=0)

    def test_clear(self, cycle12):
        oracle = DistanceOracle(cycle12)
        oracle.distances_from(0)
        oracle.clear()
        assert oracle.cache_size() == 0


class TestPrefetch:
    def test_prefetch_fills_cache_batched(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.prefetch([0, 5, 10, 5, 0])
        assert oracle.cache_size() == 3
        hits = oracle.hits
        for s in (0, 5, 10):
            np.testing.assert_array_equal(
                oracle.distances_from(s), bfs_distances(grid4x4, s)
            )
        assert oracle.hits == hits + 3

    def test_prefetch_skips_cached(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.distances_from(0)
        misses = oracle.misses
        oracle.prefetch([0])
        assert oracle.misses == misses

    def test_prefetch_respects_cap(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=3)
        oracle.prefetch(range(10))
        assert oracle.cache_size() == 3


class TestBallQueries:
    def test_ball_matches_module_function(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        for center in (0, 5, 15):
            for radius in (0, 1, 2, 4):
                np.testing.assert_array_equal(
                    oracle.ball(center, radius), ball(grid4x4, center, radius)
                )

    def test_ball_size(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.ball_size(0, 0) == 1
        assert oracle.ball_size(0, 1) == 3
        assert oracle.ball_size(0, 6) == 12

    def test_negative_radius_rejected(self, cycle12):
        oracle = DistanceOracle(cycle12)
        with pytest.raises(ValueError):
            oracle.ball(0, -1)
        with pytest.raises(ValueError):
            oracle.ball_size(0, -2)


class TestSharedAcrossSubsystems:
    def test_decomposition_import_is_shared_class(self):
        from repro.decomposition.bags import DistanceOracle as BagsOracle

        assert BagsOracle is DistanceOracle

    def test_ball_scheme_uses_injected_oracle(self, cycle12):
        from repro.core.ball_scheme import BallScheme

        oracle = DistanceOracle(cycle12)
        scheme = BallScheme(cycle12, seed=0, oracle=oracle)
        assert scheme.oracle is oracle
        scheme.sample_contact(0)
        assert oracle.cache_size() >= 1
        scheme.reset_cache()
        assert oracle.cache_size() == 0

    def test_ball_scheme_rejects_foreign_oracle(self, cycle12, path8):
        from repro.core.ball_scheme import BallScheme

        with pytest.raises(ValueError):
            BallScheme(cycle12, seed=0, oracle=DistanceOracle(path8))
