"""Unit tests for the shared LRU-capped DistanceOracle."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.distances import UNREACHABLE, bfs_distances
from repro.graphs.oracle import DistanceOracle
from repro.graphs.balls import ball


class TestBasicQueries:
    def test_distances_match_bfs(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        for source in range(grid4x4.num_nodes):
            np.testing.assert_array_equal(
                oracle.distances_from(source), bfs_distances(grid4x4, source)
            )

    def test_distances_to_aliases_from(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.distances_to(3) is oracle.distances_from(3)

    def test_callable_pairwise(self, path8):
        oracle = DistanceOracle(path8)
        assert oracle(0, 7) == 7
        assert oracle(4, 4) == 0

    def test_unreachable_pairs(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        oracle = DistanceOracle(g)
        assert oracle(0, 3) == UNREACHABLE

    def test_cached_arrays_are_read_only(self, cycle12):
        oracle = DistanceOracle(cycle12)
        arr = oracle.distances_from(0)
        with pytest.raises(ValueError):
            arr[0] = 99


class TestCachePolicy:
    def test_repeat_queries_hit_cache(self, cycle12):
        oracle = DistanceOracle(cycle12)
        a = oracle.distances_from(5)
        b = oracle.distances_from(5)
        assert a is b
        assert oracle.hits == 1 and oracle.misses == 1
        assert oracle.cache_size() == 1

    def test_lru_eviction(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=2)
        oracle.distances_from(0)
        oracle.distances_from(1)
        oracle.distances_from(0)  # refresh 0 -> 1 is now least recent
        oracle.distances_from(2)  # evicts 1
        assert oracle.cache_size() == 2
        misses = oracle.misses
        oracle.distances_from(1)  # must recompute
        assert oracle.misses == misses + 1

    def test_invalid_cap_rejected(self, cycle12):
        with pytest.raises(ValueError):
            DistanceOracle(cycle12, max_entries=0)

    def test_clear(self, cycle12):
        oracle = DistanceOracle(cycle12)
        oracle.distances_from(0)
        oracle.clear()
        assert oracle.cache_size() == 0


class TestPrefetch:
    def test_prefetch_fills_cache_batched(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.prefetch([0, 5, 10, 5, 0])
        assert oracle.cache_size() == 3
        hits = oracle.hits
        for s in (0, 5, 10):
            np.testing.assert_array_equal(
                oracle.distances_from(s), bfs_distances(grid4x4, s)
            )
        assert oracle.hits == hits + 3

    def test_prefetch_skips_cached(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.distances_from(0)
        misses = oracle.misses
        oracle.prefetch([0])
        assert oracle.misses == misses

    def test_prefetch_respects_cap(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=3)
        oracle.prefetch(range(10))
        assert oracle.cache_size() == 3


class TestBallQueries:
    def test_ball_matches_module_function(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        for center in (0, 5, 15):
            for radius in (0, 1, 2, 4):
                np.testing.assert_array_equal(
                    oracle.ball(center, radius), ball(grid4x4, center, radius)
                )

    def test_ball_size(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.ball_size(0, 0) == 1
        assert oracle.ball_size(0, 1) == 3
        assert oracle.ball_size(0, 6) == 12

    def test_negative_radius_rejected(self, cycle12):
        oracle = DistanceOracle(cycle12)
        with pytest.raises(ValueError):
            oracle.ball(0, -1)
        with pytest.raises(ValueError):
            oracle.ball_size(0, -2)


class TestSharedAcrossSubsystems:
    def test_decomposition_import_is_shared_class(self):
        from repro.decomposition.bags import DistanceOracle as BagsOracle

        assert BagsOracle is DistanceOracle

    def test_ball_scheme_uses_injected_oracle(self, cycle12):
        from repro.core.ball_scheme import BallScheme

        oracle = DistanceOracle(cycle12)
        scheme = BallScheme(cycle12, seed=0, oracle=oracle)
        assert scheme.oracle is oracle
        scheme.sample_contact(0)
        assert oracle.cache_size() >= 1
        scheme.reset_cache()
        assert oracle.cache_size() == 0

    def test_ball_scheme_rejects_foreign_oracle(self, cycle12, path8):
        from repro.core.ball_scheme import BallScheme

        with pytest.raises(ValueError):
            BallScheme(cycle12, seed=0, oracle=DistanceOracle(path8))


def _brute_force_next_local(graph, dist):
    """Reference: replay greedy_route's strict-< local scan for every node."""
    out = np.full(graph.num_nodes, -1, dtype=np.int64)
    for u in range(graph.num_nodes):
        best_dist = dist[u]
        if best_dist == UNREACHABLE:
            continue
        best = -1
        for v in graph.neighbors(u):
            dv = dist[v]
            if dv != UNREACHABLE and dv < best_dist:
                best_dist = dv
                best = int(v)
        out[u] = best
    return out


class TestNextLocal:
    def _portfolio(self):
        from repro.graphs.graph import Graph

        two_cycles = Graph.from_edges(
            23,
            [(i, (i + 1) % 14) for i in range(14)]
            + [(14 + i, 14 + (i + 1) % 9) for i in range(9)],
            name="two-cycles",
        )
        return [
            generators.grid_graph([6, 7]),
            generators.cycle_graph(24),  # even ring: antipodal tie nodes
            generators.random_tree(40, seed=9),
            generators.lollipop_graph(6, 20),
            two_cycles,
        ]

    def test_matches_greedy_local_scan(self):
        for g in self._portfolio():
            oracle = DistanceOracle(g)
            for target in range(0, g.num_nodes, max(1, g.num_nodes // 5)):
                table = oracle.next_local_to(target)
                expected = _brute_force_next_local(g, oracle.distances_to(target))
                np.testing.assert_array_equal(table, expected)

    def test_tree_fast_path_matches_argmin(self):
        # On a connected tree the table is read off the BFS parent pointers;
        # it must agree with the brute-force scan (the improving neighbour is
        # unique there, so any tie-break coincides).
        g = generators.random_tree(60, seed=3)
        assert g.num_edges == g.num_nodes - 1
        oracle = DistanceOracle(g)
        table = oracle.next_local_to(17)
        np.testing.assert_array_equal(
            table, _brute_force_next_local(g, oracle.distances_to(17))
        )
        # The tree sweep also warmed the distance cache.
        assert oracle.cache_size() == 1

    def test_tree_edge_count_but_disconnected_falls_back(self):
        # n-1 edges without connectivity (triangle + isolated node) must not
        # trust the parent pointers blindly.
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2)], name="triangle+isolated")
        assert g.num_edges == g.num_nodes - 1
        oracle = DistanceOracle(g)
        table = oracle.next_local_to(0)
        np.testing.assert_array_equal(
            table, _brute_force_next_local(g, oracle.distances_to(0))
        )
        assert table[3] == -1  # isolated node has no hop

    def test_cached_and_read_only(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        a = oracle.next_local_to(5)
        b = oracle.next_local_to(5)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 0

    def test_lru_cap_applies(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=2)
        for t in range(5):
            oracle.next_local_to(t)
        assert len(oracle._next_local) <= 2

    def test_clear_drops_tables(self, cycle12):
        oracle = DistanceOracle(cycle12)
        oracle.next_local_to(3)
        oracle.clear()
        assert len(oracle._next_local) == 0


class TestDistancesToMany:
    def test_block_matches_rows(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        targets = [3, 9, 3, 0]
        block = oracle.distances_to_many(targets)
        assert block.shape == (4, grid4x4.num_nodes)
        for row, t in enumerate(targets):
            np.testing.assert_array_equal(block[row], bfs_distances(grid4x4, t))

    def test_block_is_writable_copy(self, cycle12):
        oracle = DistanceOracle(cycle12)
        block = oracle.distances_to_many([4])
        block[0, 0] = -99  # must not corrupt the cached read-only row
        assert oracle.distances_to(4)[0] == bfs_distances(cycle12, 4)[0]

    def test_empty_targets(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.distances_to_many([]).shape == (0, cycle12.num_nodes)

    def test_prefetch_batches_misses(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.distances_to_many([1, 2, 3])
        misses_after = oracle.misses
        oracle.distances_to_many([1, 2, 3])
        assert oracle.misses == misses_after  # second call fully cached


class TestNextLocalMany:
    """The batched multi-target hop-table builder (ISSUE-4 tentpole)."""

    def _portfolio(self):
        from repro.graphs.graph import Graph

        disconnected = Graph.from_edges(
            30,
            [(i, i + 1) for i in range(11)] + [(15 + i, 15 + (i + 1) % 8) for i in range(8)],
            name="path+ring+isolated",
        )
        return [
            generators.grid_graph([6, 7]),
            generators.cycle_graph(24),
            generators.random_tree(40, seed=9),
            disconnected,
        ]

    def test_exact_equality_with_per_target_loop(self):
        # grid / ring / tree / disconnected: every row of the batched block
        # must be bit-for-bit the per-target next_local_to table.
        for g in self._portfolio():
            batched = DistanceOracle(g)
            loop = DistanceOracle(g)
            targets = list(range(0, g.num_nodes, max(1, g.num_nodes // 7)))
            block = batched.next_local_to_many(targets)
            assert block.shape == (len(targets), g.num_nodes)
            for row, t in enumerate(targets):
                np.testing.assert_array_equal(block[row], loop.next_local_to(t))

    def test_pointer_pass_matches_reference(self):
        from repro.graphs.oracle import next_local_pointers, next_local_pointers_many

        for g in self._portfolio():
            oracle = DistanceOracle(g)
            targets = list(range(0, g.num_nodes, max(1, g.num_nodes // 5)))
            dist_block = oracle.distances_to_many(targets)
            many = next_local_pointers_many(g, dist_block)
            for row in range(len(targets)):
                np.testing.assert_array_equal(
                    many[row], next_local_pointers(g, dist_block[row])
                )

    def test_hub_graph_uses_fallback_and_matches(self):
        # A star's padded adjacency would blow up n x (n-1); the builder must
        # reject padding and still produce exact tables via the fallback.
        from repro.graphs.graph import Graph
        from repro.graphs.oracle import padded_adjacency

        star = Graph.from_edges(1200, [(0, i) for i in range(1, 1200)])
        assert padded_adjacency(star) is None
        batched = DistanceOracle(star)
        loop = DistanceOracle(star)
        block = batched.next_local_to_many([0, 5, 11])
        for row, t in enumerate([0, 5, 11]):
            np.testing.assert_array_equal(block[row], loop.next_local_to(t))

    def test_duplicates_and_cached_rows(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.next_local_to(3)  # pre-warm one row through the scalar path
        block = oracle.next_local_to_many([3, 7, 3])
        np.testing.assert_array_equal(block[0], block[2])
        np.testing.assert_array_equal(block[1], DistanceOracle(grid4x4).next_local_to(7))

    def test_warms_distance_cache_and_is_memoised(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.next_local_to_many([1, 5, 9])
        misses = oracle.misses
        oracle.next_local_to_many([1, 5, 9])  # fully cached second time
        assert oracle.misses == misses
        oracle.distances_to_many([1, 5, 9])  # distance rows were cached too
        assert oracle.misses == misses

    def test_lru_cap_respected(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=2)
        block = oracle.next_local_to_many([1, 2, 3, 4])
        reference = DistanceOracle(cycle12)
        for row, t in enumerate([1, 2, 3, 4]):
            np.testing.assert_array_equal(block[row], reference.next_local_to(t))
        assert oracle.next_local_cache_size() <= 2

    def test_empty_targets(self, cycle12):
        oracle = DistanceOracle(cycle12)
        assert oracle.next_local_to_many([]).shape == (0, cycle12.num_nodes)


class TestSpillState:
    """export_state / absorb_state: the GraphStore's oracle round-trip."""

    def test_round_trip_is_bitwise_and_bfs_free(self, grid4x4):
        warm = DistanceOracle(grid4x4)
        warm.prefetch([0, 5, 9])
        warm.next_local_to(5)
        cold = DistanceOracle(grid4x4)
        cold.absorb_state(warm.export_state())
        assert cold.misses == 0 and cold.preloaded == 4
        np.testing.assert_array_equal(cold.distances_from(9), warm.distances_from(9))
        np.testing.assert_array_equal(cold.next_local_to(5), warm.next_local_to(5))
        assert cold.misses == 0  # every query above was absorbed, not recomputed

    def test_absorb_keeps_existing_entries(self, cycle12):
        a = DistanceOracle(cycle12)
        own = a.distances_from(3)
        donor = DistanceOracle(cycle12)
        donor.prefetch([3, 4])
        a.absorb_state(donor.export_state())
        assert a.distances_from(3) is own  # not replaced
        assert a.preloaded == 1  # only the genuinely new row (4)

    def test_absorb_rejects_wrong_shape(self, cycle12, path8):
        donor = DistanceOracle(path8)
        donor.prefetch([0, 1])
        with pytest.raises(ValueError):
            DistanceOracle(cycle12).absorb_state(donor.export_state())

    def test_empty_state_round_trips(self, cycle12):
        cold = DistanceOracle(cycle12)
        cold.absorb_state(DistanceOracle(cycle12).export_state())
        assert cold.preloaded == 0 and cold.cache_size() == 0


class TestNextLocalAccounting:
    """Regression: the hop-table build must use the *accounted* cache lookup.

    ``next_local_to`` used to peek at ``self._cache`` with a bare ``.get``,
    so serving a hop table from a cached distance array neither counted a
    hit (``--stats`` under-reported) nor refreshed the LRU position (the
    eviction order deviated from true LRU).
    """

    def test_cached_distance_row_counts_a_hit(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.distances_from(3)
        assert (oracle.hits, oracle.misses) == (0, 1)
        oracle.next_local_to(3)  # consumes the cached array -> a real hit
        assert (oracle.hits, oracle.misses) == (1, 1)
        oracle.next_local_to(3)  # memoised table: no distance-cache traffic
        assert (oracle.hits, oracle.misses) == (1, 1)

    def test_uncached_target_counts_a_miss_once(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.next_local_to(7)
        assert (oracle.hits, oracle.misses) == (0, 1)

    def test_lookup_refreshes_lru_position(self, cycle12):
        oracle = DistanceOracle(cycle12, max_entries=2)
        oracle.distances_from(0)
        oracle.distances_from(1)  # LRU order: 0 (oldest), 1
        oracle.next_local_to(0)   # must refresh 0 -> 1 is now the oldest
        oracle.distances_from(2)  # evicts 1, keeps 0
        misses = oracle.misses
        oracle.distances_from(0)
        assert oracle.misses == misses  # still cached: the refresh happened
        oracle.distances_from(1)
        assert oracle.misses == misses + 1  # 1 was the eviction victim

    def test_tree_fast_path_still_counts_one_miss(self, tree15):
        oracle = DistanceOracle(tree15)
        oracle.next_local_to(4)  # frontier_bfs_tree sweep: one miss
        assert (oracle.hits, oracle.misses) == (0, 1)
        oracle.next_local_to(4)
        assert (oracle.hits, oracle.misses) == (0, 1)


class TestRoutingBlocksReuse:
    """routing_blocks refills a preallocated buffer pair instead of stacking."""

    def _reference_blocks(self, graph, targets):
        from repro.graphs.oracle import FAR_DISTANCE

        ref = DistanceOracle(graph)
        # int64 like the engine-facing blocks: the FAR_DISTANCE sentinel is
        # deliberately larger than any narrow cached-row dtype can hold.
        dist = np.stack([ref.distances_to(t).copy() for t in targets]).astype(np.int64)
        dist[dist == UNREACHABLE] = FAR_DISTANCE
        nl = np.stack([ref.next_local_to(t) for t in targets])
        return dist, nl

    def test_content_matches_reference(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        targets = (3, 9, 12)
        dist_block, nl_block = oracle.routing_blocks(targets)
        ref_dist, ref_nl = self._reference_blocks(grid4x4, targets)
        np.testing.assert_array_equal(dist_block, ref_dist)
        np.testing.assert_array_equal(nl_block, ref_nl)
        assert not dist_block.flags.writeable and not nl_block.flags.writeable

    def test_same_tuple_returns_same_views(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        a = oracle.routing_blocks((1, 5))
        b = oracle.routing_blocks((1, 5))
        assert a[0] is b[0] and a[1] is b[1]

    def test_new_tuple_reuses_storage_and_refills_changed_rows_only(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        first = oracle.routing_blocks((2, 7))
        base_dist = first[0].base if first[0].base is not None else first[0]
        hits_before, misses_before = oracle.hits, oracle.misses
        second = oracle.routing_blocks((2, 11))  # row 0 unchanged, row 1 new
        base_after = second[0].base if second[0].base is not None else second[0]
        assert base_after is base_dist  # same backing buffer, no re-stack
        # Only the new target cost anything: one BFS, and two accounted
        # reads of its fresh array (hop-table build + row copy).  The
        # unchanged row 0 produced zero cache traffic.
        assert oracle.misses == misses_before + 1
        assert oracle.hits == hits_before + 2
        ref_dist, ref_nl = self._reference_blocks(grid4x4, (2, 11))
        np.testing.assert_array_equal(second[0], ref_dist)
        np.testing.assert_array_equal(second[1], ref_nl)

    def test_rebuild_for_longer_tuple_grows(self, grid4x4):
        oracle = DistanceOracle(grid4x4)
        oracle.routing_blocks((1,))
        dist_block, nl_block = oracle.routing_blocks((1, 2, 3))
        assert dist_block.shape == (3, grid4x4.num_nodes)
        ref_dist, ref_nl = self._reference_blocks(grid4x4, (1, 2, 3))
        np.testing.assert_array_equal(dist_block, ref_dist)
        np.testing.assert_array_equal(nl_block, ref_nl)

    def test_unreachable_masked_with_sentinel(self):
        from repro.graphs.graph import Graph
        from repro.graphs.oracle import FAR_DISTANCE

        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        oracle = DistanceOracle(g)
        dist_block, _ = oracle.routing_blocks((0,))
        assert dist_block[0, 3] == FAR_DISTANCE and dist_block[0, 4] == FAR_DISTANCE
        assert dist_block[0, 2] == 2

    def test_clear_drops_storage(self, cycle12):
        oracle = DistanceOracle(cycle12)
        first = oracle.routing_blocks((1, 2))
        oracle.clear()
        second = oracle.routing_blocks((1, 2))
        ref_dist, _ = self._reference_blocks(cycle12, (1, 2))
        np.testing.assert_array_equal(second[0], ref_dist)
        assert first[0] is not second[0]
